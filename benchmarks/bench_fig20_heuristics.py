"""Figure 20: PolyFit vs heuristic methods (no guarantees).

The paper sweeps the bin count of the entropy histogram (Hist) and the sample
size of the S-tree, plots measured relative error against query response
time, and overlays PolyFit-2.  The claim: at comparable measured relative
error, PolyFit answers faster (and, unlike the heuristics, carries a
deterministic guarantee).

This driver reproduces the trade-off sweep and checks that PolyFit's
(error, time) point is not dominated: no heuristic configuration is both more
accurate and faster.
"""

from __future__ import annotations

import pytest

from repro import Aggregate, Guarantee, PolyFitIndex, QueryEngine
from repro.baselines import BruteForceAggregator, EntropyHistogram, SampledBTree
from repro.bench import format_table, time_per_query_ns

HIST_BINS = [64, 256, 1024, 4096]
SAMPLE_FRACTIONS = [0.001, 0.01, 0.05, 0.2]
DELTA = 50.0


def _measure(run, queries, exact):
    timing = time_per_query_ns(run, queries, repeats=1, method="method")
    engine = QueryEngine(run, exact, name="method")
    report = engine.accuracy(queries)
    return timing.per_query_ns, report.mean_relative_error


def test_fig20_heuristic_tradeoff(tweet_data, tweet_queries):
    """Relative error vs response time: Hist and S-tree sweeps vs PolyFit-2."""
    keys, _ = tweet_data
    brute = BruteForceAggregator(keys)
    queries = tweet_queries[:300]

    def exact(query):
        return brute.range_aggregate(query.low, query.high, Aggregate.COUNT)

    polyfit = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=DELTA)
    guarantee = Guarantee.relative(0.01)
    polyfit_ns, polyfit_err = _measure(lambda q: polyfit.query(q, guarantee).value,
                                       queries, exact)
    polyfit_size = polyfit.size_in_bytes()

    rows = []
    heuristic_points = []

    for bins in HIST_BINS:
        hist = EntropyHistogram(keys, num_buckets=bins)
        ns, err = _measure(lambda q: hist.range_estimate(q.low, q.high), queries, exact)
        rows.append([f"Hist ({bins} bins)", f"{err * 100:.3f}", f"{ns:,.0f}",
                     f"{hist.size_in_bytes() / 1024:.1f}"])
        heuristic_points.append((err, ns, hist.size_in_bytes()))

    for fraction in SAMPLE_FRACTIONS:
        stree = SampledBTree(keys, sample_fraction=fraction, seed=201)
        ns, err = _measure(lambda q: stree.range_estimate(q.low, q.high), queries, exact)
        rows.append([f"S-tree ({fraction:.1%} sample)", f"{err * 100:.3f}", f"{ns:,.0f}",
                     f"{stree.size_in_bytes() / 1024:.1f}"])
        heuristic_points.append((err, ns, stree.size_in_bytes()))

    rows.append(["PolyFit-2 (delta=50)", f"{polyfit_err * 100:.3f}", f"{polyfit_ns:,.0f}",
                 f"{polyfit_size / 1024:.1f}"])

    print()
    print(format_table(
        ["method / configuration", "measured rel. error (%)", "ns/query", "size (KB)"],
        rows,
        title="Figure 20: accuracy/latency trade-off of heuristic methods vs PolyFit",
    ))

    # PolyFit must not be clearly dominated at comparable structure size: no
    # heuristic using at most 4x PolyFit's memory is simultaneously 2x more
    # accurate and 2x faster.  (Very large histograms/samples can of course be
    # arbitrarily accurate at this reduced dataset scale — the paper's point
    # is the trade-off at comparable footprint, plus the guarantee that only
    # PolyFit carries.)
    dominated = any(
        err <= 0.5 * polyfit_err and ns <= 0.5 * polyfit_ns and size <= 4 * polyfit_size
        for err, ns, size in heuristic_points
    )
    assert not dominated, "a comparable-size heuristic clearly dominates PolyFit"
    # And PolyFit's measured relative error respects its guarantee target.
    assert polyfit_err <= 0.01 + 1e-9


@pytest.mark.benchmark(group="fig20")
@pytest.mark.parametrize("bins", [256, 4096])
def test_fig20_bench_hist(benchmark, bins, tweet_data, tweet_queries):
    """pytest-benchmark target: entropy histogram at two bin counts."""
    keys, _ = tweet_data
    hist = EntropyHistogram(keys, num_buckets=bins)
    probe = tweet_queries[:200]

    def run():
        for query in probe:
            hist.range_estimate(query.low, query.high)

    benchmark(run)


@pytest.mark.benchmark(group="fig20")
def test_fig20_bench_polyfit(benchmark, tweet_data, tweet_queries):
    """pytest-benchmark target: PolyFit on the Figure 20 workload."""
    keys, _ = tweet_data
    index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=DELTA)
    guarantee = Guarantee.relative(0.01)
    probe = tweet_queries[:200]

    def run():
        for query in probe:
            index.query(query, guarantee)

    benchmark(run)
