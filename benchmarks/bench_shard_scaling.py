"""Shard-scaling and zero-copy load-time benchmark.

Measures the two halves of the parallel read path landed together:

* **qps vs shards** — 1-D and 2-D COUNT/SUM batch throughput through
  :class:`~repro.queries.sharding.ShardedQueryEngine` at 1, 2 and 4 shards,
  for both the thread pool (shared in-process directory; NumPy releases the
  GIL in the large kernels) and the process pool (workers memory-map the
  same :mod:`repro.index.codec` file, sharing directory pages).  Every
  sharded result is checked *bit-identical* to the serial batch path.
* **load time, JSON vs binary** — wall time of :func:`repro.load_index` on
  the JSON payload vs the binary codec with ``mmap`` and eager reads, and
  an ``allclose`` check that all loaded clones answer the same workload.

Shard speedup is hardware-bound: the artifact records ``cpu_count`` and the
throughput assertions only apply where enough cores exist (a single-core
container can still verify bit-identical merging, but not scaling).

Run directly (``python benchmarks/bench_shard_scaling.py``) for the full
1M-query protocol, or through pytest (the smoke suite) with scaled-down
workloads.  Both emit ``BENCH_shard_scaling.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    Aggregate,
    Guarantee,
    PolyFit2DIndex,
    PolyFitIndex,
    load_index,
    load_index_binary,
    save_index,
    save_index_binary,
)
from repro.bench import format_table, sweep_shard_counts, time_callable_ns
from repro.queries.sharding import ShardedQueryEngine

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_shard_scaling.json"
SHARD_COUNTS = [1, 2, 4]
EXECUTORS = ["thread", "process"]

#: Workload sizes for the standalone (``__main__``) protocol; the pytest
#: smoke entry point scales these down to keep CI fast.
MAIN_SIZES = {"one_key_count": 1_000_000, "one_key_sum": 250_000, "two_key": 150_000}
SMOKE_SIZES = {"one_key_count": 120_000, "one_key_sum": 60_000, "two_key": 40_000}


def _range_bounds(keys: np.ndarray, n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """N uniform range-query bounds over the key span, as flat arrays."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(float(keys[0]), float(keys[-1]), size=(2, n))
    return np.minimum(a[0], a[1]), np.maximum(a[0], a[1])


def _rectangle_bounds(
    xs: np.ndarray, ys: np.ndarray, n: int, seed: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """N uniform rectangle-query bounds over the point bounding box."""
    rng = np.random.default_rng(seed)
    ax = rng.uniform(xs.min(), xs.max(), size=(2, n))
    ay = rng.uniform(ys.min(), ys.max(), size=(2, n))
    return (
        np.minimum(ax[0], ax[1]),
        np.maximum(ax[0], ax[1]),
        np.minimum(ay[0], ay[1]),
        np.maximum(ay[0], ay[1]),
    )


def _shard_section(index, index_path: str, bounds, *, repeats: int) -> dict:
    """Sweep shard counts x executors for one index; verify bit-identical."""
    num_queries = len(bounds[0])
    serial = index.estimate_batch(*bounds)
    serial_ns = time_callable_ns(lambda: index.estimate_batch(*bounds), repeats=repeats)
    serial_qps = round(num_queries / (serial_ns / 1e9))
    section: dict = {
        "num_queries": num_queries,
        "serial_qps": serial_qps,
        "executors": {},
    }
    for executor in EXECUTORS:
        timings = sweep_shard_counts(
            index=index,
            index_path=index_path if executor == "process" else None,
            bounds=bounds,
            shard_counts=SHARD_COUNTS,
            executor=executor,
            repeats=repeats,
        )
        per_count: dict = {}
        for count, timing in timings.items():
            with ShardedQueryEngine(
                index=index,
                index_path=index_path if executor == "process" else None,
                num_shards=count,
                executor=executor,
                min_queries_per_shard=1,
            ) as engine:
                identical = bool(np.array_equal(engine.estimate_batch(*bounds), serial))
            qps = round(1e9 / timing.per_query_ns)
            per_count[str(count)] = {
                "qps": qps,
                "speedup_vs_serial": round(qps / serial_qps, 2),
                "identical_to_serial": identical,
            }
        section["executors"][executor] = per_count
    return section


def run_shard_scaling(sizes: dict, *, repeats: int = 2) -> dict:
    """The qps-vs-shards sections for 1-D COUNT/SUM and 2-D COUNT/SUM."""
    from repro.datasets import osm_points, tweet_latitudes

    keys, measures = tweet_latitudes(60_000, seed=101)
    xs, ys = osm_points(80_000, seed=103)
    weights = np.random.default_rng(104).uniform(0.5, 2.0, xs.size)

    results: dict = {"one_key": {}, "two_key": {}}
    with tempfile.TemporaryDirectory() as tmp:
        one_specs = {
            "COUNT": (
                PolyFitIndex.build(
                    keys, aggregate=Aggregate.COUNT, guarantee=Guarantee.absolute(100.0)
                ),
                sizes["one_key_count"],
            ),
            "SUM": (
                PolyFitIndex.build(
                    keys, measures, aggregate=Aggregate.SUM, delta=100.0
                ),
                sizes["one_key_sum"],
            ),
        }
        for name, (index, num_queries) in one_specs.items():
            path = os.path.join(tmp, f"one_{name}.pfbin")
            save_index_binary(index, path)
            bounds = _range_bounds(keys, num_queries, seed=271)
            results["one_key"][name] = _shard_section(
                index, path, bounds, repeats=repeats
            )

        two_specs = {
            "COUNT": PolyFit2DIndex.build(
                xs, ys, guarantee=Guarantee.absolute(1000.0), grid_resolution=128
            ),
            "SUM": PolyFit2DIndex.build(
                xs,
                ys,
                measures=weights,
                aggregate=Aggregate.SUM,
                delta=250.0,
                grid_resolution=128,
            ),
        }
        for name, index in two_specs.items():
            path = os.path.join(tmp, f"two_{name}.pfbin")
            save_index_binary(index, path)
            bounds = _rectangle_bounds(xs, ys, sizes["two_key"], seed=271)
            results["two_key"][name] = _shard_section(
                index, path, bounds, repeats=repeats
            )
    return results


def run_load_time(*, repeats: int = 3) -> dict:
    """JSON vs binary (mmap and eager) load time for 1-D and 2-D indexes."""
    from repro.datasets import osm_points, tweet_latitudes

    keys, _ = tweet_latitudes(60_000, seed=101)
    xs, ys = osm_points(80_000, seed=103)
    indexes = {
        "one_key": PolyFitIndex.build(
            keys, aggregate=Aggregate.COUNT, guarantee=Guarantee.absolute(100.0)
        ),
        "two_key": PolyFit2DIndex.build(
            xs, ys, guarantee=Guarantee.absolute(1000.0), grid_resolution=128
        ),
    }
    section: dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        for name, index in indexes.items():
            json_path = os.path.join(tmp, f"{name}.json")
            binary_path = os.path.join(tmp, f"{name}.pfbin")
            save_index(index, json_path, format="json")
            save_index_binary(index, binary_path)
            json_ns = time_callable_ns(lambda: load_index(json_path), repeats=repeats)
            mmap_ns = time_callable_ns(
                lambda: load_index_binary(binary_path, mmap=True), repeats=repeats
            )
            eager_ns = time_callable_ns(
                lambda: load_index_binary(binary_path, mmap=False), repeats=repeats
            )
            if name == "one_key":
                bounds = _range_bounds(keys, 5_000, seed=31)
            else:
                bounds = _rectangle_bounds(xs, ys, 5_000, seed=31)
            reference = indexes[name].estimate_batch(*bounds)
            clones = {
                "json": load_index(json_path),
                "binary_mmap": load_index_binary(binary_path, mmap=True),
                "binary_eager": load_index_binary(binary_path, mmap=False),
            }
            allclose = all(
                np.allclose(clone.estimate_batch(*bounds), reference, equal_nan=True)
                for clone in clones.values()
            )
            section[name] = {
                "json_bytes": os.path.getsize(json_path),
                "binary_bytes": os.path.getsize(binary_path),
                "json_load_ms": round(json_ns / 1e6, 3),
                "binary_mmap_load_ms": round(mmap_ns / 1e6, 3),
                "binary_eager_load_ms": round(eager_ns / 1e6, 3),
                "mmap_speedup_vs_json": round(json_ns / mmap_ns, 2),
                "queries_allclose": bool(allclose),
            }
    return section


def run_benchmark(sizes: dict, *, repeats: int = 2) -> dict:
    """Full artifact dict: shard scaling plus load-time comparison."""
    results = {
        "description": (
            "batch qps vs num_shards (thread/process executors) and "
            "JSON vs zero-copy binary index load time"
        ),
        "cpu_count": os.cpu_count(),
        "shard_counts": SHARD_COUNTS,
    }
    results.update(run_shard_scaling(sizes, repeats=repeats))
    results["load_time"] = run_load_time(repeats=max(repeats, 2))
    return results


def _print_results(results: dict) -> None:
    for dims in ("one_key", "two_key"):
        for aggregate, section in results[dims].items():
            rows = []
            for executor, per_count in section["executors"].items():
                for count, entry in per_count.items():
                    rows.append(
                        [
                            executor,
                            count,
                            entry["qps"],
                            f"{entry['speedup_vs_serial']}x",
                            "yes" if entry["identical_to_serial"] else "NO",
                        ]
                    )
            print()
            print(
                format_table(
                    ["executor", "shards", "qps", "vs serial", "identical"],
                    rows,
                    title=(
                        f"{dims} {aggregate}, {section['num_queries']} queries "
                        f"(serial {section['serial_qps']} q/s, "
                        f"{results['cpu_count']} cpus)"
                    ),
                )
            )
    rows = [
        [
            name,
            entry["json_load_ms"],
            entry["binary_mmap_load_ms"],
            entry["binary_eager_load_ms"],
            f"{entry['mmap_speedup_vs_json']}x",
            "yes" if entry["queries_allclose"] else "NO",
        ]
        for name, entry in results["load_time"].items()
    ]
    print()
    print(
        format_table(
            ["index", "json ms", "mmap ms", "eager ms", "mmap speedup", "allclose"],
            rows,
            title="index load time, JSON vs binary codec",
        )
    )


def _write_artifact(results: dict) -> None:
    from repro.kernels import runtime_info

    results = {**results, "kernel_runtime": runtime_info()}
    ARTIFACT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nartifact written to {ARTIFACT_PATH}")


def _check_results(results: dict, *, strict_timing: bool = True) -> None:
    """Invariant checks: bit-identical sharding, faithful codec, scaling.

    Correctness gates (bit-identity, allclose) always apply.  Wall-clock
    gates — the >= 5x mmap-vs-JSON load speedup and the multi-core shard
    speedup — are skipped with ``strict_timing=False`` (the CI smoke run on
    shared noisy runners) and enforced by the standalone protocol.
    """
    for dims in ("one_key", "two_key"):
        for aggregate, section in results[dims].items():
            for executor, per_count in section["executors"].items():
                for count, entry in per_count.items():
                    assert entry["identical_to_serial"], (
                        f"{dims}/{aggregate}: {executor} x{count} shards diverged "
                        "from the serial batch path"
                    )
    for name, entry in results["load_time"].items():
        assert entry["queries_allclose"], f"{name}: loaded clones disagree"
        if strict_timing:
            assert entry["mmap_speedup_vs_json"] >= 5.0, (
                f"{name}: binary mmap load only {entry['mmap_speedup_vs_json']}x "
                "faster than JSON (expected >= 5x)"
            )
    cpus = results["cpu_count"] or 1
    if strict_timing and cpus >= 4:
        count_section = results["one_key"]["COUNT"]
        best = count_section["executors"]["process"]["4"]["speedup_vs_serial"]
        assert best >= 1.5, (
            f"expected >= 1.5x at 4 process shards on {cpus} cpus, got {best}x"
        )
    elif strict_timing:
        print(
            f"\nNOTE: {cpus} cpu(s) available - shard *speedup* cannot "
            "manifest here; bit-identity and load-time gates still apply."
        )


def test_shard_scaling():
    """Smoke protocol: scaled-down workloads, same invariants + artifact."""
    results = run_benchmark(SMOKE_SIZES, repeats=1)
    _print_results(results)
    _write_artifact(results)
    _check_results(results, strict_timing=False)


if __name__ == "__main__":
    bench_results = run_benchmark(MAIN_SIZES, repeats=2)
    _print_results(bench_results)
    _write_artifact(bench_results)
    _check_results(bench_results)
