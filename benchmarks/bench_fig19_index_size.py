"""Figure 19: memory footprint of the index structures.

The paper plots structure size (KB) against the absolute error threshold for
RMI, FITing-tree and PolyFit-2 on the TWEET COUNT workload, and finds PolyFit
smallest because (i) GS produces the minimum number of segments and (ii)
degree-2 polynomials need far fewer segments than linear models for the same
budget.

The checks: PolyFit's payload is never larger than FITing-tree's at equal
budgets, and both learned structures shrink (weakly) as the budget loosens.
RMI's size is fixed by its stage configuration, as in the paper.
"""

from __future__ import annotations

import pytest

from repro import Aggregate, Guarantee, PolyFitIndex
from repro.baselines import FITingTree, KeyCumulativeArray, RecursiveModelIndex
from repro.bench import format_series

ABS_THRESHOLDS = [50, 100, 200, 500, 1000]


def test_fig19_index_sizes(tweet_data):
    """Index payload size (KB) vs eps_abs for RMI / FITing-tree / PolyFit-2."""
    keys, _ = tweet_data
    rmi = RecursiveModelIndex.build(keys, stage_sizes=(1, 10, 100))
    kca = KeyCumulativeArray.build(keys, aggregate=Aggregate.COUNT)

    series = {"RMI": [], "FITing-Tree": [], "PolyFit-2": []}
    segments = {"FITing-Tree": [], "PolyFit-2": []}
    for eps in ABS_THRESHOLDS:
        delta = eps / 2.0
        fiting = FITingTree.build(keys, aggregate=Aggregate.COUNT, error_budget=delta)
        polyfit = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT,
                                     guarantee=Guarantee.absolute(eps))
        series["RMI"].append(round(rmi.size_in_bytes() / 1024, 2))
        series["FITing-Tree"].append(round(fiting.size_in_bytes() / 1024, 2))
        series["PolyFit-2"].append(round(polyfit.size_in_bytes() / 1024, 2))
        segments["FITing-Tree"].append(fiting.num_segments)
        segments["PolyFit-2"].append(polyfit.num_segments)

    print()
    print(format_series("eps_abs", ABS_THRESHOLDS, series,
                        title="Figure 19: structure size (KB) vs eps_abs (TWEET, COUNT)"))
    print(format_series("eps_abs", ABS_THRESHOLDS, segments,
                        title="Figure 19 companion: segment counts"))
    print(f"raw key-cumulative array: {kca.size_in_bytes() / 1024:.1f} KB")

    for index in range(len(ABS_THRESHOLDS)):
        # PolyFit needs no more segments than the linear FITing-tree (same
        # budget, richer per-segment model).  A degree-2 segment stores 7
        # floats against the linear segment's 4, so the byte comparison is
        # asserted with that ratio as headroom.
        assert segments["PolyFit-2"][index] <= segments["FITing-Tree"][index]
        assert series["PolyFit-2"][index] <= 2.0 * series["FITing-Tree"][index] + 0.1
        # All learned structures are far smaller than the raw KCA.
        assert series["PolyFit-2"][index] * 1024 < kca.size_in_bytes()

    # Size shrinks (weakly) as the error budget loosens.
    for tighter, looser in zip(series["PolyFit-2"], series["PolyFit-2"][1:]):
        assert looser <= tighter + 0.1


@pytest.mark.benchmark(group="fig19")
def test_fig19_bench_polyfit_construction(benchmark, tweet_data):
    """pytest-benchmark target: PolyFit construction at eps_abs = 500."""
    keys, _ = tweet_data
    subset = keys[:: max(1, keys.size // 20_000)]

    def build():
        return PolyFitIndex.build(subset, aggregate=Aggregate.COUNT,
                                  guarantee=Guarantee.absolute(500.0))

    index = benchmark(build)
    assert index.num_segments >= 1
