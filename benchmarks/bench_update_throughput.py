"""Streaming-ingestion benchmark: inserts/s, query latency vs buffer fill,
and compaction pause.

Protocol (1-D COUNT, degree 1 — the linear-time construction path):

* **insert throughput** — records/s absorbed by
  :meth:`~repro.stream.updatable.UpdatablePolyFitIndex.insert` in fixed-size
  batches with auto-compaction off (pure buffer path).
* **query latency vs buffer fill** — batch estimate latency at increasing
  buffer occupancy; the delta contribution adds one ``searchsorted`` + one
  prefix gather per side, so the curve should stay nearly flat.
* **compaction pause** — wall time of ``compact()`` for an append-only
  buffer (corridor-scanner tail pass) and for an out-of-order buffer (the
  bounded merge-rebuild), against the wall time of a full from-scratch
  rebuild over the same records.

Correctness gates (always enforced, smoke and standalone):

* append-only post-compaction boundaries identical to a from-scratch
  :class:`~repro.index.polyfit1d.PolyFitIndex` build over all records, and
  bit-identical batch estimates;
* with a non-empty buffer, ``exact_batch`` equals the brute-force oracle
  exactly (COUNT is integer arithmetic end to end).

Run directly (``python benchmarks/bench_update_throughput.py``) for the full
protocol, or through pytest (the smoke suite) with scaled-down sizes.  Both
emit ``BENCH_update_throughput.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import (
    Aggregate,
    CompactionPolicy,
    PolyFitIndex,
    UpdatablePolyFitIndex,
)
from repro.bench import format_table, time_callable_ns
from repro.config import FitConfig, IndexConfig

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_update_throughput.json"

#: Workload sizes for the standalone (``__main__``) protocol; the pytest
#: smoke entry point scales these down to keep CI fast.
MAIN_SIZES = {"base": 500_000, "stream": 500_000, "insert_batch": 4_096,
              "queries": 50_000}
SMOKE_SIZES = {"base": 40_000, "stream": 40_000, "insert_batch": 2_048,
               "queries": 8_000}

DELTA = 100.0
FILL_LEVELS = [0.0, 0.25, 0.5, 1.0]


def _stream(total: int, seed: int) -> np.ndarray:
    """A strictly increasing synthetic key stream (arrival timestamps).

    Heavy-tailed inter-arrival gaps give the cumulative function realistic
    curvature (~170 segments at 10^6 keys with delta 100); perfectly uniform
    gaps would collapse the whole function into a handful of huge segments
    and make every compaction refit degenerate-large slices.
    """
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.lognormal(0.0, 1.5, size=total))


def _query_bounds(span: tuple[float, float], n: int, seed: int):
    rng = np.random.default_rng(seed)
    a = rng.uniform(span[0], span[1], size=(2, n))
    return np.minimum(a[0], a[1]), np.maximum(a[0], a[1])


def _boundaries(segments):
    return [(s.start, s.stop, s.key_low, s.key_high) for s in segments]


def _config() -> IndexConfig:
    return IndexConfig(fit=FitConfig(degree=1))


def run_benchmark(sizes: dict, *, repeats: int = 2) -> dict:
    keys = _stream(sizes["base"] + sizes["stream"], seed=7)
    base_keys = keys[: sizes["base"]]
    stream_keys = keys[sizes["base"]:]
    span = (float(keys[0]), float(keys[-1]))
    lows, highs = _query_bounds(span, sizes["queries"], seed=11)

    build_ns = time_callable_ns(
        lambda: PolyFitIndex.build(
            base_keys, aggregate=Aggregate.COUNT, delta=DELTA, config=_config()
        ),
        repeats=1,
    )
    index = UpdatablePolyFitIndex.build(
        base_keys,
        aggregate=Aggregate.COUNT,
        delta=DELTA,
        config=_config(),
        policy=CompactionPolicy(max_buffer=10 * sizes["stream"], auto=False),
    )

    # ----- insert throughput (buffer path only) ------------------------ #
    batch = sizes["insert_batch"]
    start = time.perf_counter_ns()
    for position in range(0, sizes["stream"], batch):
        index.insert(stream_keys[position: position + batch])
    insert_ns = time.perf_counter_ns() - start
    inserts_per_s = round(sizes["stream"] / (insert_ns / 1e9))

    # Correctness with a full buffer: exact equals the brute-force oracle.
    probe_lows, probe_highs = lows[:2000], highs[:2000]
    oracle = (
        np.searchsorted(keys, probe_highs, side="right")
        - np.searchsorted(keys, probe_lows, side="left")
    ).astype(np.float64)
    buffered_exact_identical = bool(
        np.array_equal(index.exact_batch(probe_lows, probe_highs), oracle)
    )

    # ----- query latency vs buffer fill -------------------------------- #
    index_by_fill = UpdatablePolyFitIndex.build(
        base_keys,
        aggregate=Aggregate.COUNT,
        delta=DELTA,
        config=_config(),
        policy=CompactionPolicy(max_buffer=10 * sizes["stream"], auto=False),
    )
    latency_rows = []
    filled = 0
    for fill in FILL_LEVELS:
        target = int(sizes["stream"] * fill)
        if target > filled:
            index_by_fill.insert(stream_keys[filled:target])
            filled = target
        per_query_ns = time_callable_ns(
            lambda: index_by_fill.estimate_batch(lows, highs), repeats=repeats
        ) / sizes["queries"]
        latency_rows.append(
            {
                "fill_fraction": fill,
                "buffered_records": filled,
                "per_query_ns": round(per_query_ns, 1),
            }
        )

    # Half-the-data compaction (worst-case ratio): correctness gates only —
    # the timed pause below uses a realistic policy-threshold buffer.
    index.compact()
    scratch = PolyFitIndex.build(
        keys, aggregate=Aggregate.COUNT, delta=DELTA, config=_config()
    )
    rebuild_ns = time_callable_ns(
        lambda: PolyFitIndex.build(
            keys, aggregate=Aggregate.COUNT, delta=DELTA, config=_config()
        ),
        repeats=1,
    )
    append_boundaries_identical = _boundaries(index.segments) == _boundaries(
        scratch.segments
    )
    append_estimates_identical = bool(
        np.array_equal(
            index.estimate_batch(probe_lows, probe_highs),
            scratch.estimate_batch(probe_lows, probe_highs),
        )
    )

    # ----- compaction pause at a policy-threshold buffer --------------- #
    # A buffer of ~10% of the stream (the shape an auto policy produces):
    # the pause should be bounded by the tail + open segment, not the base.
    tail = max(2, sizes["stream"] // 10)
    threshold_index = UpdatablePolyFitIndex.build(
        keys[: keys.size - tail],
        aggregate=Aggregate.COUNT,
        delta=DELTA,
        config=_config(),
        policy=CompactionPolicy(max_buffer=10 * sizes["stream"], auto=False),
    )
    half = tail // 2
    # First compaction warms the open segment's corridor scanner (cold);
    # the second resumes it and scans only the appended records — the
    # steady-state pause an auto policy pays per epoch.
    threshold_index.insert(keys[keys.size - tail: keys.size - half])
    start = time.perf_counter_ns()
    threshold_index.compact()
    append_cold_pause_ms = (time.perf_counter_ns() - start) / 1e6
    threshold_index.insert(keys[keys.size - half:])
    start = time.perf_counter_ns()
    threshold_index.compact()
    append_pause_ms = (time.perf_counter_ns() - start) / 1e6
    threshold_boundaries_identical = _boundaries(
        threshold_index.segments
    ) == _boundaries(scratch.segments)

    # Out-of-order buffer of the same size: the bounded merge-rebuild path.
    rng = np.random.default_rng(13)
    scattered = rng.uniform(span[0], span[1], size=tail)
    threshold_index.insert(scattered)
    start = time.perf_counter_ns()
    threshold_index.compact()
    ooo_pause_ms = (time.perf_counter_ns() - start) / 1e6
    all_keys = np.concatenate([keys, scattered])
    scratch_ooo = PolyFitIndex.build(
        all_keys, aggregate=Aggregate.COUNT, delta=DELTA, config=_config()
    )
    ooo_boundaries_identical = _boundaries(threshold_index.segments) == _boundaries(
        scratch_ooo.segments
    )

    return {
        "description": (
            "streaming ingestion: insert throughput, query latency vs delta-"
            "buffer fill, compaction pause vs from-scratch rebuild"
        ),
        "delta": DELTA,
        "degree": 1,
        "base_records": sizes["base"],
        "streamed_records": sizes["stream"],
        "insert_batch": batch,
        "base_build_ms": round(build_ns / 1e6, 2),
        "inserts_per_s": inserts_per_s,
        "query_latency_vs_fill": latency_rows,
        "compaction": {
            "buffered_records": half,
            "append_cold_pause_ms": round(append_cold_pause_ms, 2),
            "append_only_pause_ms": round(append_pause_ms, 2),
            "out_of_order_pause_ms": round(ooo_pause_ms, 2),
            "from_scratch_rebuild_ms": round(rebuild_ns / 1e6, 2),
            "append_speedup_vs_rebuild": round(rebuild_ns / 1e6 / max(append_pause_ms, 1e-9), 2),
        },
        "gates": {
            "buffered_exact_identical_to_oracle": buffered_exact_identical,
            "append_boundaries_identical_to_rebuild": append_boundaries_identical,
            "append_estimates_identical_to_rebuild": append_estimates_identical,
            "threshold_append_boundaries_identical": threshold_boundaries_identical,
            "out_of_order_boundaries_identical_to_rebuild": ooo_boundaries_identical,
        },
    }


def _print_results(results: dict) -> None:
    print(
        f"\nbase {results['base_records']} records built in "
        f"{results['base_build_ms']} ms; streamed {results['streamed_records']} "
        f"records at {results['inserts_per_s']} inserts/s "
        f"(batch {results['insert_batch']})"
    )
    rows = [
        [entry["fill_fraction"], entry["buffered_records"], entry["per_query_ns"]]
        for entry in results["query_latency_vs_fill"]
    ]
    print()
    print(format_table(["buffer fill", "records", "ns/query"], rows,
                       title="batch COUNT estimate latency vs buffer fill"))
    compaction = results["compaction"]
    rows = [
        ["append (cold scanner)", compaction["append_cold_pause_ms"]],
        ["append (resumed)", compaction["append_only_pause_ms"]],
        ["out-of-order", compaction["out_of_order_pause_ms"]],
        ["from-scratch rebuild", compaction["from_scratch_rebuild_ms"]],
    ]
    print()
    print(format_table(["compaction", "ms"], rows,
                       title=(f"compaction pause, {compaction['buffered_records']}-record buffer "
                              f"(append {compaction['append_speedup_vs_rebuild']}x "
                              "faster than rebuild)")))


def _write_artifact(results: dict) -> None:
    from repro.kernels import runtime_info

    results = {**results, "kernel_runtime": runtime_info()}
    ARTIFACT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nartifact written to {ARTIFACT_PATH}")


def _check_results(results: dict, *, strict_timing: bool = True) -> None:
    """Correctness gates always; pause-vs-rebuild speedup only standalone."""
    for gate, passed in results["gates"].items():
        assert passed, f"gate failed: {gate}"
    if strict_timing:
        compaction = results["compaction"]
        assert compaction["append_speedup_vs_rebuild"] >= 2.0, (
            "append-only compaction should beat a from-scratch rebuild by >= 2x, "
            f"got {compaction['append_speedup_vs_rebuild']}x"
        )


def test_update_throughput():
    """Smoke protocol: scaled-down sizes, same gates + artifact."""
    results = run_benchmark(SMOKE_SIZES, repeats=1)
    _print_results(results)
    _write_artifact(results)
    _check_results(results, strict_timing=False)


if __name__ == "__main__":
    bench_results = run_benchmark(MAIN_SIZES, repeats=2)
    _print_results(bench_results)
    _write_artifact(bench_results)
    _check_results(bench_results)
