"""Durability benchmark: WAL'd ingest overhead, recovery time, degraded reads.

Protocol (1-D COUNT, degree 1):

* **WAL'd insert throughput** — records/s absorbed by
  :meth:`~repro.stream.updatable.UpdatablePolyFitIndex.insert` in fixed-size
  batches with no WAL, with a group-commit WAL (``sync_every=64``), and with
  a strict per-record-sync WAL (``sync_every=1``).  The logged path encodes
  each batch into a CRC-framed record and fsyncs at commit barriers, so the
  interesting number is the overhead ratio over the plain buffer path.
* **recovery time vs log length** — wall time of
  :meth:`~repro.stream.updatable.UpdatablePolyFitIndex.recover` (checkpoint
  load + WAL replay) as the suffix beyond the checkpoint grows; replay cost
  should scale with the replayed records, not with the base.
* **degraded-read overhead** — per-query latency of a 4-partition fleet's
  ``query_batch`` when healthy versus when one partition is failed under
  ``failure_policy="degrade"`` (the router widens the certified bounds to
  cover the missing partition instead of erroring).

Correctness gates (always enforced, smoke and standalone):

* **replay bit-identity** — at every measured log length the recovered
  index answers ``estimate_batch`` and ``exact_batch`` bit-identically to
  the live index that wrote the log;
* the WAL'd live index is bit-identical to the un-logged index over the
  same stream (logging must not perturb the data path);
* every degraded answer with a finite bound still contains the monolithic
  oracle's exact answer (``|value - truth| <= error_bound``).

Timing gate (standalone only): group-commit WAL overhead <= 3x the plain
buffer path.

Run directly (``python benchmarks/bench_durability.py``) for the full
protocol, or through pytest (the smoke suite) with scaled-down sizes.  Both
emit ``BENCH_durability.json`` at the repository root.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    Aggregate,
    CompactionPolicy,
    IndexFleet,
    PolyFitIndex,
    UpdatablePolyFitIndex,
)
from repro.bench import format_table
from repro.config import FitConfig, IndexConfig
from repro.testing.faults import FlakyView

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_durability.json"

#: Workload sizes for the standalone (``__main__``) protocol; the pytest
#: smoke entry point scales these down to keep CI fast.
MAIN_SIZES = {"base": 200_000, "stream": 200_000, "insert_batch": 4_096,
              "queries": 20_000}
SMOKE_SIZES = {"base": 20_000, "stream": 20_000, "insert_batch": 2_048,
               "queries": 4_000}

DELTA = 100.0
GROUP_COMMIT = 64
REPLAY_FRACTIONS = [0.25, 0.5, 1.0]
WAL_OVERHEAD_LIMIT = 3.0


def _stream(total: int, seed: int) -> np.ndarray:
    """Strictly increasing synthetic key stream (heavy-tailed gaps)."""
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.lognormal(0.0, 1.5, size=total))


def _query_bounds(span: tuple[float, float], n: int, seed: int):
    rng = np.random.default_rng(seed)
    a = rng.uniform(span[0], span[1], size=(2, n))
    return np.minimum(a[0], a[1]), np.maximum(a[0], a[1])


def _config() -> IndexConfig:
    return IndexConfig(fit=FitConfig(degree=1))


def _policy(sizes: dict) -> CompactionPolicy:
    return CompactionPolicy(max_buffer=10 * sizes["stream"], auto=False)


def _build(base_keys: np.ndarray, sizes: dict, **kwargs) -> UpdatablePolyFitIndex:
    return UpdatablePolyFitIndex.build(
        base_keys, aggregate=Aggregate.COUNT, delta=DELTA, config=_config(),
        policy=_policy(sizes), **kwargs,
    )


def _timed_stream_insert(index, stream_keys: np.ndarray, batch: int) -> float:
    start = time.perf_counter_ns()
    for position in range(0, stream_keys.size, batch):
        index.insert(stream_keys[position: position + batch])
    return (time.perf_counter_ns() - start) / 1e9


def _identical(a, b, lows, highs) -> bool:
    return bool(
        np.array_equal(a.estimate_batch(lows, highs), b.estimate_batch(lows, highs))
        and np.array_equal(a.exact_batch(lows, highs), b.exact_batch(lows, highs))
    )


def run_benchmark(sizes: dict, *, repeats: int = 2) -> dict:
    keys = _stream(sizes["base"] + sizes["stream"], seed=7)
    base_keys = keys[: sizes["base"]]
    stream_keys = keys[sizes["base"]:]
    span = (float(keys[0]), float(keys[-1]))
    lows, highs = _query_bounds(span, sizes["queries"], seed=11)
    probe_lows, probe_highs = lows[:2000], highs[:2000]
    batch = sizes["insert_batch"]

    with tempfile.TemporaryDirectory(prefix="bench-durability-") as scratch:
        scratch = Path(scratch)

        # ----- insert throughput: plain vs WAL'd ----------------------- #
        plain = _build(base_keys, sizes)
        plain_s = _timed_stream_insert(plain, stream_keys, batch)

        group = _build(base_keys, sizes, wal_path=scratch / "group.wal",
                       wal_sync_every=GROUP_COMMIT)
        group_s = _timed_stream_insert(group, stream_keys, batch)

        strict = _build(base_keys, sizes, wal_path=scratch / "strict.wal",
                        wal_sync_every=1)
        strict_s = _timed_stream_insert(strict, stream_keys, batch)

        wal_identical_to_plain = _identical(group, plain, probe_lows, probe_highs)
        wal_bytes = (scratch / "group.wal").stat().st_size
        group_overhead = round(group_s / plain_s, 2)

        # ----- recovery time vs log length ----------------------------- #
        # One checkpoint at the base, then logs holding growing suffixes of
        # the stream: recovery = checkpoint load + replay of that suffix.
        checkpoint_path = scratch / "checkpoint.pfbin"
        _build(base_keys, sizes).checkpoint(checkpoint_path)
        recovery_rows = []
        replay_identical = True
        for fraction in REPLAY_FRACTIONS:
            count = int(sizes["stream"] * fraction)
            wal_path = scratch / f"replay-{fraction}.wal"
            writer = _build(base_keys, sizes, wal_path=wal_path,
                            wal_sync_every=GROUP_COMMIT)
            _timed_stream_insert(writer, stream_keys[:count], batch)
            writer.wal.close()
            best_ns = None
            for _ in range(max(1, repeats)):
                start = time.perf_counter_ns()
                recovered = UpdatablePolyFitIndex.recover(
                    checkpoint_path, wal_path, policy=_policy(sizes)
                )
                elapsed = time.perf_counter_ns() - start
                best_ns = elapsed if best_ns is None else min(best_ns, elapsed)
                recovered.wal.close()
            replay_identical &= _identical(
                recovered, writer, probe_lows, probe_highs
            )
            recovery_rows.append(
                {
                    "replayed_records": count,
                    "log_bytes": wal_path.stat().st_size,
                    "recovery_ms": round(best_ns / 1e6, 2),
                }
            )

        # ----- degraded-read overhead ---------------------------------- #
        fleet = IndexFleet.build(
            keys, None, Aggregate.COUNT, delta=DELTA, config=_config(),
            num_partitions=4, failure_policy="degrade",
        )
        oracle = PolyFitIndex.build(
            keys, aggregate=Aggregate.COUNT, delta=DELTA, config=_config()
        )
        healthy = fleet.snapshot()
        healthy_ns = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter_ns()
            healthy.query_batch(lows, highs)
            elapsed = time.perf_counter_ns() - start
            healthy_ns = elapsed if healthy_ns is None else min(healthy_ns, elapsed)

        router = getattr(healthy, "_router", healthy)
        flaky = FlakyView(router._views[1])
        router._views[1] = flaky
        router._engines[1] = flaky
        degraded_ns = None
        result = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter_ns()
            result = healthy.query_batch(lows, highs)
            elapsed = time.perf_counter_ns() - start
            degraded_ns = elapsed if degraded_ns is None else min(degraded_ns, elapsed)
        truth = oracle.exact_batch(lows, highs)
        finite = np.isfinite(result.error_bounds) & ~np.isnan(truth)
        degraded_contains_truth = bool(
            result.partial
            and np.all(
                np.abs(result.values[finite] - truth[finite])
                <= result.error_bounds[finite] + 1e-9
            )
        )

    return {
        "description": (
            "durability: WAL'd insert throughput vs plain, recovery time vs "
            "log length, degraded fleet-read overhead"
        ),
        "delta": DELTA,
        "degree": 1,
        "base_records": sizes["base"],
        "streamed_records": sizes["stream"],
        "insert_batch": batch,
        "insert_throughput": {
            "plain_inserts_per_s": round(sizes["stream"] / plain_s),
            "wal_group_commit_inserts_per_s": round(sizes["stream"] / group_s),
            "wal_per_record_sync_inserts_per_s": round(sizes["stream"] / strict_s),
            "group_commit_every": GROUP_COMMIT,
            "group_commit_overhead_x": group_overhead,
            "per_record_sync_overhead_x": round(strict_s / plain_s, 2),
            "wal_bytes": wal_bytes,
        },
        "recovery_vs_log_length": recovery_rows,
        "degraded_reads": {
            "partitions": 4,
            "failed_partitions": list(result.failed_partitions),
            "queries": sizes["queries"],
            "healthy_per_query_ns": round(healthy_ns / sizes["queries"], 1),
            "degraded_per_query_ns": round(degraded_ns / sizes["queries"], 1),
            "degraded_overhead_x": round(degraded_ns / healthy_ns, 2),
            "degraded_fraction": round(float(result.degraded.mean()), 4),
        },
        "gates": {
            "replay_bit_identical_at_every_log_length": replay_identical,
            "walled_index_identical_to_plain": wal_identical_to_plain,
            "degraded_bound_contains_truth": degraded_contains_truth,
        },
    }


def _print_results(results: dict) -> None:
    throughput = results["insert_throughput"]
    rows = [
        ["no WAL", throughput["plain_inserts_per_s"], 1.0],
        [f"WAL, sync every {throughput['group_commit_every']}",
         throughput["wal_group_commit_inserts_per_s"],
         throughput["group_commit_overhead_x"]],
        ["WAL, sync every record",
         throughput["wal_per_record_sync_inserts_per_s"],
         throughput["per_record_sync_overhead_x"]],
    ]
    print()
    print(format_table(["ingest path", "inserts/s", "overhead"], rows,
                       title=(f"insert throughput, batch {results['insert_batch']} "
                              f"({throughput['wal_bytes']} WAL bytes)")))
    rows = [
        [entry["replayed_records"], entry["log_bytes"], entry["recovery_ms"]]
        for entry in results["recovery_vs_log_length"]
    ]
    print()
    print(format_table(["replayed records", "log bytes", "recovery ms"], rows,
                       title="recovery time vs log length (checkpoint + replay)"))
    degraded = results["degraded_reads"]
    print(
        f"\ndegraded fleet read ({degraded['partitions']} partitions, "
        f"partition {degraded['failed_partitions']} down): "
        f"{degraded['degraded_per_query_ns']} ns/query vs "
        f"{degraded['healthy_per_query_ns']} healthy "
        f"({degraded['degraded_overhead_x']}x, "
        f"{degraded['degraded_fraction']:.0%} of queries widened)"
    )


def _write_artifact(results: dict) -> None:
    from repro.kernels import runtime_info

    results = {**results, "kernel_runtime": runtime_info()}
    ARTIFACT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nartifact written to {ARTIFACT_PATH}")


def _check_results(results: dict, *, strict_timing: bool = True) -> None:
    """Correctness gates always; the WAL-overhead ceiling only standalone."""
    for gate, passed in results["gates"].items():
        assert passed, f"gate failed: {gate}"
    if strict_timing:
        overhead = results["insert_throughput"]["group_commit_overhead_x"]
        assert overhead <= WAL_OVERHEAD_LIMIT, (
            f"group-commit WAL ingest should stay within {WAL_OVERHEAD_LIMIT}x "
            f"of the plain buffer path, got {overhead}x"
        )


def test_durability():
    """Smoke protocol: scaled-down sizes, same gates + artifact."""
    results = run_benchmark(SMOKE_SIZES, repeats=1)
    _print_results(results)
    _write_artifact(results)
    _check_results(results, strict_timing=False)


if __name__ == "__main__":
    bench_results = run_benchmark(MAIN_SIZES, repeats=2)
    _print_results(bench_results)
    _write_artifact(bench_results)
    _check_results(bench_results)
