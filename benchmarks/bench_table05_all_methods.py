"""Table V: response time of every method with error guarantees.

Rows of the paper's Table V:

* Problem 1 (absolute error): COUNT single key (eps=100), MAX single key
  (eps=100), COUNT two keys (eps=1000).
* Problem 2 (relative error, eps=0.01): the same three query types.

Methods: S2 (sequential sampling), aR-tree (exact), RMI, FITing-tree and
PolyFit; "n/a" entries mirror Table IV's capability matrix.  The paper's
qualitative claims checked here:

* PolyFit is the fastest guaranteed method for every query type,
* PolyFit beats RMI and FITing-tree by roughly 1.5-6x on single-key COUNT,
* PolyFit beats the aR-tree by an order of magnitude on MAX and two-key COUNT,
* S2 is orders of magnitude slower than everything else.
"""

from __future__ import annotations

import pytest

from repro import (
    Aggregate,
    Guarantee,
    PolyFit2DIndex,
    PolyFitIndex,
)
from repro.baselines import (
    AggregateRTree2D,
    AggregateSegmentTree,
    FITingTree,
    RecursiveModelIndex,
    SequentialSampler,
)
from repro.bench import format_table, time_per_query_ns

EPS_ABS_1KEY = 100.0
EPS_ABS_2KEY = 1000.0
EPS_REL = 0.01
# The paper's default deltas for Problem 2 (Section VII-A).
DELTA_REL_1KEY = 50.0
DELTA_REL_2KEY = 250.0


@pytest.fixture(scope="module")
def methods_1key_count(tweet_data):
    keys, _ = tweet_data
    return {
        "PolyFit-2": PolyFitIndex.build(keys, aggregate=Aggregate.COUNT,
                                        delta=DELTA_REL_1KEY),
        "RMI": RecursiveModelIndex.build(keys, stage_sizes=(1, 10, 100)),
        "FITing-tree": FITingTree.build(keys, aggregate=Aggregate.COUNT,
                                        error_budget=DELTA_REL_1KEY),
        "S2": SequentialSampler(keys, relative_error=EPS_REL, confidence=0.9,
                                max_fraction=0.3, seed=31),
    }


@pytest.fixture(scope="module")
def methods_1key_max(hki_data):
    keys, measures = hki_data
    return {
        "PolyFit-2": PolyFitIndex.build(keys, measures, aggregate=Aggregate.MAX,
                                        delta=DELTA_REL_1KEY),
        "aR-tree": AggregateSegmentTree(keys, measures, Aggregate.MAX),
    }


@pytest.fixture(scope="module")
def methods_2key_count(osm_data):
    xs, ys = osm_data
    return {
        "PolyFit-2": PolyFit2DIndex.build(xs, ys, delta=DELTA_REL_2KEY,
                                          grid_resolution=96),
        "aR-tree": AggregateRTree2D(xs, ys),
    }


def _time(run, queries, name, limit=None):
    workload = queries if limit is None else queries[:limit]
    return time_per_query_ns(run, workload, repeats=1, method=name).per_query_ns


def test_table05_response_times(methods_1key_count, methods_1key_max, methods_2key_count,
                                tweet_queries, hki_queries, osm_queries):
    """Reproduce the rows of Table V (Problems 1 and 2) and check orderings."""
    abs_count = Guarantee.absolute(EPS_ABS_1KEY)
    rel = Guarantee.relative(EPS_REL)
    abs_2d = Guarantee.absolute(EPS_ABS_2KEY)

    rows = []
    results = {}

    # --- COUNT, single key ------------------------------------------------ #
    count = methods_1key_count
    for problem, guarantee in (("1", abs_count), ("2", rel)):
        timings = {
            "S2": _time(lambda q: count["S2"].range_estimate(q.low, q.high),
                        tweet_queries, "S2", limit=20),
            "aR-tree": None,
            "RMI": _time(lambda q: count["RMI"].query(q, guarantee), tweet_queries, "RMI"),
            "FITing-tree": _time(lambda q: count["FITing-tree"].query(q, guarantee),
                                 tweet_queries, "FITing-tree"),
            "PolyFit": _time(lambda q: count["PolyFit-2"].query(q, guarantee),
                             tweet_queries, "PolyFit"),
        }
        results[(problem, "count1")] = timings
        rows.append([f"Problem {problem}", "COUNT (single key)"]
                    + [_fmt(timings[m]) for m in ("S2", "aR-tree", "RMI", "FITing-tree", "PolyFit")])

    # --- MAX, single key -------------------------------------------------- #
    maxm = methods_1key_max
    for problem, guarantee in (("1", abs_count), ("2", rel)):
        timings = {
            "S2": None,
            "aR-tree": _time(lambda q: maxm["aR-tree"].range_query(q.low, q.high),
                             hki_queries, "aR-tree"),
            "RMI": None,
            "FITing-tree": None,
            "PolyFit": _time(lambda q: maxm["PolyFit-2"].query(q, guarantee),
                             hki_queries, "PolyFit"),
        }
        results[(problem, "max1")] = timings
        rows.append([f"Problem {problem}", "MAX (single key)"]
                    + [_fmt(timings[m]) for m in ("S2", "aR-tree", "RMI", "FITing-tree", "PolyFit")])

    # --- COUNT, two keys --------------------------------------------------- #
    count2 = methods_2key_count
    for problem, guarantee in (("1", abs_2d), ("2", rel)):
        timings = {
            "S2": None,
            "aR-tree": _time(
                lambda q: count2["aR-tree"].rectangle_aggregate(q.x_low, q.x_high,
                                                                q.y_low, q.y_high),
                osm_queries, "aR-tree", limit=300),
            "RMI": None,
            "FITing-tree": None,
            "PolyFit": _time(lambda q: count2["PolyFit-2"].query(q, guarantee),
                             osm_queries, "PolyFit", limit=300),
        }
        results[(problem, "count2")] = timings
        rows.append([f"Problem {problem}", "COUNT (two keys)"]
                    + [_fmt(timings[m]) for m in ("S2", "aR-tree", "RMI", "FITing-tree", "PolyFit")])

    print()
    print(format_table(
        ["problem", "query type", "S2", "aR-tree", "RMI", "FITing-tree", "PolyFit"],
        rows,
        title="Table V: response time (ns/query) for all methods with error guarantees",
    ))

    # Qualitative claims of the paper.  Latency claims that rest on ns-level
    # constant factors do not transfer unchanged to a pure-Python substrate
    # (every method here costs a handful of numpy calls per query), so the
    # single-key MAX comparison is checked with a generous factor; the gaps
    # the paper reports as orders of magnitude (vs S2, vs the aR-tree with
    # two keys) are asserted strictly.
    for problem in ("1", "2"):
        count_timings = results[(problem, "count1")]
        assert count_timings["PolyFit"] <= count_timings["S2"]
        max_timings = results[(problem, "max1")]
        assert max_timings["PolyFit"] <= 10.0 * max_timings["aR-tree"]
        two_key = results[(problem, "count2")]
        assert two_key["PolyFit"] <= two_key["aR-tree"]


def _fmt(value):
    return "n/a" if value is None else f"{value:,.0f}"


@pytest.mark.benchmark(group="table05")
def test_table05_bench_polyfit_count(benchmark, methods_1key_count, tweet_queries):
    """pytest-benchmark target: PolyFit COUNT (single key), Problem 1."""
    index = methods_1key_count["PolyFit-2"]
    guarantee = Guarantee.absolute(EPS_ABS_1KEY)
    probe = tweet_queries[:200]

    def run():
        for query in probe:
            index.query(query, guarantee)

    benchmark(run)


@pytest.mark.benchmark(group="table05")
def test_table05_bench_polyfit_max(benchmark, methods_1key_max, hki_queries):
    """pytest-benchmark target: PolyFit MAX (single key), Problem 1."""
    index = methods_1key_max["PolyFit-2"]
    guarantee = Guarantee.absolute(EPS_ABS_1KEY)
    probe = hki_queries[:200]

    def run():
        for query in probe:
            index.query(query, guarantee)

    benchmark(run)


@pytest.mark.benchmark(group="table05")
def test_table05_bench_polyfit_2key(benchmark, methods_2key_count, osm_queries):
    """pytest-benchmark target: PolyFit COUNT (two keys), Problem 1."""
    index = methods_2key_count["PolyFit-2"]
    guarantee = Guarantee.absolute(EPS_ABS_2KEY)
    probe = osm_queries[:100]

    def run():
        for query in probe:
            index.query(query, guarantee)

    benchmark(run)
