"""Shared fixtures and helpers for the benchmark drivers.

Benchmark sizing: the paper runs on 0.9M-100M-record datasets in C++.  These
drivers use scaled-down synthetic datasets (controlled by the environment
variable ``REPRO_BENCH_SCALE``, default 1.0 = the sizes below) so the full
suite finishes in minutes in pure Python while preserving the comparisons the
paper reports: which method wins, by roughly what factor, and how the curves
move with the error thresholds.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import Aggregate, generate_range_queries, generate_rectangle_queries
from repro.datasets import osm_points, stock_index_walk, tweet_latitudes

#: Base dataset sizes used by the benches (scaled-down stand-ins).
BASE_SIZES = {
    "tweet": 60_000,
    "hki": 60_000,
    "osm": 80_000,
}


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


def sized(name: str) -> int:
    """Number of records to generate for the named dataset."""
    return max(2_000, int(BASE_SIZES[name] * _scale()))


@pytest.fixture(scope="session")
def tweet_data() -> tuple[np.ndarray, np.ndarray]:
    """Synthetic TWEET dataset (single key; COUNT experiments)."""
    return tweet_latitudes(sized("tweet"), seed=101)


@pytest.fixture(scope="session")
def hki_data() -> tuple[np.ndarray, np.ndarray]:
    """Synthetic HKI dataset (single key; MAX experiments)."""
    return stock_index_walk(sized("hki"), seed=102)


@pytest.fixture(scope="session")
def osm_data() -> tuple[np.ndarray, np.ndarray]:
    """Synthetic OSM dataset (two keys; COUNT experiments)."""
    return osm_points(sized("osm"), seed=103)


@pytest.fixture(scope="session")
def tweet_queries(tweet_data) -> list:
    """1000 random COUNT range queries over the TWEET keys (paper protocol)."""
    keys, _ = tweet_data
    return generate_range_queries(keys, 1000, Aggregate.COUNT, seed=201)


@pytest.fixture(scope="session")
def hki_queries(hki_data) -> list:
    """1000 random MAX range queries over the HKI keys."""
    keys, _ = hki_data
    return generate_range_queries(keys, 1000, Aggregate.MAX, seed=202)


@pytest.fixture(scope="session")
def osm_queries(osm_data) -> list:
    """1000 random rectangle COUNT queries over the OSM points."""
    xs, ys = osm_data
    return generate_rectangle_queries(xs, ys, 1000, seed=203)
