"""Ablation A1: segmentation algorithm — GS vs DP vs exponential search.

Table II of the paper gives worst-case complexities: DP is O(n^2 * l^2.5)
while GS is O(n * l^2.5); Theorem 1 shows GS is nevertheless optimal in the
number of segments.  This ablation verifies both claims empirically on a
small input (where DP is feasible) and measures the speedup of the
exponential-search variant of GS on a larger input.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import format_table, time_callable_ns
from repro.fitting import dp_segmentation, greedy_segmentation


def _cumulative_curve(n: int, seed: int = 71) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.uniform(0, 1000, size=n))
    keys = keys + np.arange(n) * 1e-9
    values = np.cumsum(rng.uniform(0, 5, size=n))
    return keys, values


def test_ablation_gs_matches_dp_optimum():
    """GS produces exactly as many segments as the DP optimum (Theorem 1)."""
    keys, values = _cumulative_curve(60)
    rows = []
    for delta in (2.0, 5.0, 20.0):
        gs_start = time.perf_counter()
        gs = greedy_segmentation(keys, values, delta=delta, degree=2)
        gs_time = time.perf_counter() - gs_start
        dp_start = time.perf_counter()
        dp = dp_segmentation(keys, values, delta=delta, degree=2)
        dp_time = time.perf_counter() - dp_start
        rows.append([delta, len(gs), len(dp), f"{gs_time:.2f}", f"{dp_time:.2f}"])
        assert len(gs) == len(dp)

    print()
    print(format_table(
        ["delta", "GS segments", "DP segments", "GS time (s)", "DP time (s)"],
        rows,
        title="Ablation A1: GS vs DP on 60 points (Theorem 1 / Table II)",
    ))


def test_ablation_exponential_search_speedup():
    """Exponential-search GS produces the same segmentation, faster on long segments."""
    keys, values = _cumulative_curve(600, seed=72)
    delta = 50.0

    linear_ns = time_callable_ns(
        lambda: greedy_segmentation(keys, values, delta=delta, degree=2,
                                    use_exponential_search=False)
    )
    exponential_ns = time_callable_ns(
        lambda: greedy_segmentation(keys, values, delta=delta, degree=2,
                                    use_exponential_search=True)
    )
    linear = greedy_segmentation(keys, values, delta=delta, degree=2,
                                 use_exponential_search=False)
    exponential = greedy_segmentation(keys, values, delta=delta, degree=2,
                                      use_exponential_search=True)

    print()
    print(format_table(
        ["variant", "segments", "construction time (ms)"],
        [
            ["GS (one point at a time)", len(linear), f"{linear_ns / 1e6:.1f}"],
            ["GS + exponential search", len(exponential), f"{exponential_ns / 1e6:.1f}"],
        ],
        title="Ablation A1: exponential-search acceleration of GS",
    ))

    assert [s.stop for s in linear] == [s.stop for s in exponential]
    # The exponential-search variant must solve far fewer LPs, hence be faster.
    assert exponential_ns < linear_ns


@pytest.mark.benchmark(group="ablation-segmentation")
@pytest.mark.parametrize("use_exponential", [False, True],
                         ids=["linear-growth", "exponential-search"])
def test_ablation_bench_gs_variants(benchmark, use_exponential):
    """pytest-benchmark target: GS construction time, both growth strategies."""
    keys, values = _cumulative_curve(300, seed=73)

    def run():
        return greedy_segmentation(keys, values, delta=25.0, degree=2,
                                   use_exponential_search=use_exponential)

    segments = benchmark(run)
    assert len(segments) >= 1
