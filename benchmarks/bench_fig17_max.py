"""Figure 17: MAX query response time on HKI.

(a) varying the absolute error threshold eps_abs in {50, 100, ..., 1000},
(b) varying the relative error threshold eps_rel in {0.005 ... 0.2},

comparing the exact aR-tree (aggregate max tree) against PolyFit-2.  Paper
claim: PolyFit significantly outperforms the aR-tree even at small error
thresholds (roughly an order of magnitude in the paper's setup).
"""

from __future__ import annotations

import pytest

from repro import Aggregate, Guarantee, PolyFitIndex
from repro.baselines import AggregateSegmentTree
from repro.bench import format_series, time_per_query_ns

ABS_THRESHOLDS = [50, 100, 200, 500, 1000]
REL_THRESHOLDS = [0.005, 0.01, 0.05, 0.1, 0.2]
DELTA_REL = 50.0


def test_fig17a_max_vs_abs_threshold(hki_data, hki_queries):
    """MAX latency vs eps_abs: aR-tree (exact) vs PolyFit-2."""
    keys, measures = hki_data
    artree = AggregateSegmentTree(keys, measures, Aggregate.MAX)
    workload = hki_queries[:400]
    artree_ns = round(time_per_query_ns(
        lambda q: artree.range_query(q.low, q.high), workload, repeats=1, method="aR-tree"
    ).per_query_ns)

    series = {"aR-tree": [], "PolyFit-2": []}
    for eps in ABS_THRESHOLDS:
        guarantee = Guarantee.absolute(eps)
        polyfit = PolyFitIndex.build(keys, measures, aggregate=Aggregate.MAX,
                                     guarantee=guarantee)
        series["aR-tree"].append(artree_ns)
        series["PolyFit-2"].append(round(time_per_query_ns(
            lambda q: polyfit.query(q, guarantee), workload, repeats=1, method="PolyFit"
        ).per_query_ns))

    print()
    print(format_series("eps_abs", ABS_THRESHOLDS, series,
                        title="Figure 17(a): MAX time (ns) vs eps_abs (HKI)"))
    # The paper's order-of-magnitude latency win over the aR-tree rests on
    # ns-level constant factors that a pure-Python substrate flattens, so the
    # comparison is asserted only up to a generous factor; the structural
    # advantage (far fewer stored entries) is checked in the Figure 19 bench.
    # Note that this implementation evaluates boundary segments at their
    # sampled keys (DESIGN.md section 8), so its MAX latency grows mildly with
    # looser budgets (longer segments) instead of staying flat.
    for artree_ns, polyfit_ns in zip(series["aR-tree"], series["PolyFit-2"]):
        assert polyfit_ns <= 10.0 * artree_ns


def test_fig17b_max_vs_rel_threshold(hki_data, hki_queries):
    """MAX latency vs eps_rel: aR-tree vs PolyFit-2 with delta = 50."""
    keys, measures = hki_data
    artree = AggregateSegmentTree(keys, measures, Aggregate.MAX)
    polyfit = PolyFitIndex.build(keys, measures, aggregate=Aggregate.MAX, delta=DELTA_REL)
    workload = hki_queries[:400]
    artree_ns = round(time_per_query_ns(
        lambda q: artree.range_query(q.low, q.high), workload, repeats=1, method="aR-tree"
    ).per_query_ns)

    series = {"aR-tree": [], "PolyFit-2": []}
    for eps in REL_THRESHOLDS:
        guarantee = Guarantee.relative(eps)
        series["aR-tree"].append(artree_ns)
        series["PolyFit-2"].append(round(time_per_query_ns(
            lambda q: polyfit.query(q, guarantee), workload, repeats=1, method="PolyFit"
        ).per_query_ns))

    print()
    print(format_series("eps_rel", REL_THRESHOLDS, series,
                        title="Figure 17(b): MAX time (ns) vs eps_rel (HKI)"))
    assert series["PolyFit-2"][-1] <= 10.0 * series["aR-tree"][-1]


@pytest.mark.benchmark(group="fig17")
def test_fig17_bench_polyfit_max(benchmark, hki_data, hki_queries):
    """pytest-benchmark target: PolyFit MAX at eps_abs = 100."""
    keys, measures = hki_data
    guarantee = Guarantee.absolute(100.0)
    index = PolyFitIndex.build(keys, measures, aggregate=Aggregate.MAX, guarantee=guarantee)
    probe = hki_queries[:200]

    def run():
        for query in probe:
            index.query(query, guarantee)

    benchmark(run)


@pytest.mark.benchmark(group="fig17")
def test_fig17_bench_artree_max(benchmark, hki_data, hki_queries):
    """pytest-benchmark target: the exact aggregate tree on the same workload."""
    keys, measures = hki_data
    artree = AggregateSegmentTree(keys, measures, Aggregate.MAX)
    probe = hki_queries[:200]

    def run():
        for query in probe:
            artree.range_query(query.low, query.high)

    benchmark(run)
