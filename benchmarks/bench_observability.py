"""Observability-overhead benchmark: telemetry must be within 5% of free.

Protocol (1-D COUNT, degree 1, in-process asyncio — no sockets, so the
numbers isolate instrument cost from kernel TCP noise):

* **serve p50 A/B** — median sequential single-request round trip through
  the :class:`~repro.serve.coalescer.Coalescer`, instrumented
  (``instrument=True``, the default) vs uninstrumented
  (``instrument=False`` on both host and coalescer).  Best-of-``repeats``
  so a stray scheduler hiccup cannot fail the gate.
* **batch throughput A/B** — repeated whole-workload ``host.execute``
  calls (the ``/query_batch`` path: cache probe + engine call + per-batch
  histogram observes), instrumented vs uninstrumented, queries/second.
* **trace overhead** — the same serve p50 with a 100%-sampling, 1%-sampling
  and 0%-sampling tracer attached, quantifying what the sampling knob
  costs at each setting.
* **exposition** — after the instrumented runs, the registry assembled
  from the instrumented host must render valid Prometheus text (checked
  with the library's own ``validate_exposition``) covering the host and
  cache families the runs populated.  Full cross-layer coverage is
  checked by ``tools/metrics_smoke.py`` against a live server.

Correctness gates (always enforced, smoke and standalone):

* instrumented, uninstrumented and 100%-traced answers are **bit-identical**
  to one direct ``query_batch`` call — telemetry observes, never perturbs;
* the exposition is grammatically valid and non-trivial.

Timing gates (standalone only): instrumented serve p50 and instrumented
batch throughput within 5% of the uninstrumented baseline.

Run directly (``python benchmarks/bench_observability.py``) for the full
protocol, or through pytest (the smoke suite) with scaled-down sizes.  Both
emit ``BENCH_observability.json`` at the repository root.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro import Aggregate, PolyFitIndex
from repro.bench import format_table
from repro.config import FitConfig, IndexConfig
from repro.obs.metrics import MetricsRegistry, validate_exposition
from repro.obs.tracing import Tracer
from repro.serve import Coalescer, EngineHost

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_observability.json"

#: Workload sizes for the standalone (``__main__``) protocol; the pytest
#: smoke entry point scales these down to keep CI fast.
MAIN_SIZES = {
    "records": 500_000,
    "serve_requests": 800,
    "batch_queries": 100_000,
    "batch_rounds": 5,
    "repeats": 3,
}
SMOKE_SIZES = {
    "records": 40_000,
    "serve_requests": 120,
    "batch_queries": 10_000,
    "batch_rounds": 3,
    "repeats": 2,
}

DELTA = 100.0
MAX_WAIT_MS = 1.0
OVERHEAD_BUDGET_PCT = 5.0


def _workload(records: int, queries: int, seed: int):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.uniform(0.0, 1e6, size=records))
    draws = rng.uniform(0.0, 1e6, size=(2, queries))
    lows = np.minimum(draws[0], draws[1])
    highs = np.maximum(draws[0], draws[1])
    return keys, lows, highs


def _build_host(keys: np.ndarray, *, instrument: bool) -> EngineHost:
    index = PolyFitIndex.build(
        keys,
        aggregate=Aggregate.COUNT,
        delta=DELTA,
        config=IndexConfig(fit=FitConfig(degree=1)),
    )
    return EngineHost(index, cache_size=8, instrument=instrument)


async def _serve_p50_ms(
    host: EngineHost,
    lows: np.ndarray,
    highs: np.ndarray,
    *,
    instrument: bool,
    tracer: Tracer | None = None,
) -> float:
    """Median sequential round trip through a fresh coalescer."""
    coalescer = Coalescer(
        host, max_wait_ms=MAX_WAIT_MS, instrument=instrument, tracer=tracer
    )
    loop = asyncio.get_running_loop()
    samples = []
    for low, high in zip(lows, highs):
        start = loop.time()
        await coalescer.submit((float(low), float(high)))
        samples.append(loop.time() - start)
    await coalescer.stop()
    return float(np.median(samples)) * 1e3


def _best_serve_p50_ms(host, lows, highs, *, repeats, instrument, tracer=None):
    return min(
        asyncio.run(
            _serve_p50_ms(host, lows, highs, instrument=instrument, tracer=tracer)
        )
        for _ in range(repeats)
    )


def _batch_qps(host: EngineHost, lows, highs, *, rounds: int, repeats: int) -> float:
    """Best-of-``repeats`` throughput of repeated whole-workload executes.

    Bounds are jittered per round so the version-keyed cache cannot short
    circuit the engine call — this measures the instrumented engine path,
    not cache replay.
    """
    best = 0.0
    for repeat in range(repeats):
        start = time.perf_counter()
        total = 0
        for round_i in range(rounds):
            jitter = 1e-7 * (1 + repeat * rounds + round_i)
            view = host.pin()
            host.execute(view, (lows + jitter, highs + jitter))
            total += lows.size
        elapsed = time.perf_counter() - start
        best = max(best, total / elapsed)
    return best


def _bit_identity(host_a: EngineHost, host_b: EngineHost, lows, highs, trace=None):
    """Answers from two hosts (and optionally a traced run) are identical."""
    view_a, view_b = host_a.pin(), host_b.pin()
    answer_a = host_a.execute(view_a, (lows, highs))
    answer_b = host_b.execute(view_b, (lows, highs), None, trace)
    direct = host_a.index.query_batch(lows, highs)
    columns = ("values", "guaranteed", "exact_fallback", "error_bounds")

    def same(x, y):
        return all(
            np.array_equal(getattr(x, c), getattr(y, c), equal_nan=(c == "error_bounds"))
            for c in columns
        )

    return same(answer_a, direct) and same(answer_b, direct)


def _overhead_pct(instrumented: float, baseline: float) -> float:
    """Positive = instrumented is worse; latency and 1/throughput alike."""
    if baseline <= 0:
        return 0.0
    return (instrumented / baseline - 1.0) * 100.0


def run_benchmark(sizes: dict) -> dict:
    keys, lows, highs = _workload(sizes["records"], sizes["batch_queries"], seed=23)
    serve_lows = lows[: sizes["serve_requests"]]
    serve_highs = highs[: sizes["serve_requests"]]
    repeats = sizes["repeats"]

    host_on = _build_host(keys, instrument=True)
    host_off = _build_host(keys, instrument=False)

    # --- serve p50 A/B ---------------------------------------------------
    p50_off = _best_serve_p50_ms(
        host_off, serve_lows, serve_highs, repeats=repeats, instrument=False
    )
    p50_on = _best_serve_p50_ms(
        host_on, serve_lows, serve_highs, repeats=repeats, instrument=True
    )

    # --- trace overhead at 0% / 1% / 100% sampling -----------------------
    trace_rows = []
    for rate in (0.0, 0.01, 1.0):
        tracer = Tracer(sample_rate=rate, capacity=64, seed=5)
        p50 = _best_serve_p50_ms(
            host_on, serve_lows, serve_highs,
            repeats=repeats, instrument=True, tracer=tracer,
        )
        trace_rows.append(
            {
                "sample_rate": rate,
                "p50_ms": round(p50, 4),
                "overhead_vs_untraced_pct": round(_overhead_pct(p50, p50_on), 2),
                "sampled": tracer.sampled_total,
            }
        )

    # --- batch throughput A/B --------------------------------------------
    qps_off = _batch_qps(
        host_off, lows, highs, rounds=sizes["batch_rounds"], repeats=repeats
    )
    qps_on = _batch_qps(
        host_on, lows, highs, rounds=sizes["batch_rounds"], repeats=repeats
    )

    # --- bit identity (instrumented, uninstrumented, traced) -------------
    tracer = Tracer(sample_rate=1.0, seed=1)
    trace = tracer.start("bench")
    identical = _bit_identity(host_off, host_on, lows, highs, trace)
    tracer.finish(trace)

    # --- exposition validity over everything the runs recorded -----------
    registry = MetricsRegistry()
    registry.register_all(host_on.metrics_families(), {"index": "default"})
    exposition = registry.exposition()
    problems = validate_exposition(exposition)
    families = len(registry.names())

    return {
        "description": (
            "telemetry overhead: instrumented vs uninstrumented serve p50 "
            "and batch throughput, trace-sampling cost, exposition validity"
        ),
        "records": sizes["records"],
        "delta": DELTA,
        "max_wait_ms": MAX_WAIT_MS,
        "repeats": repeats,
        "serve": {
            "requests": int(serve_lows.size),
            "uninstrumented_p50_ms": round(p50_off, 4),
            "instrumented_p50_ms": round(p50_on, 4),
            "overhead_pct": round(_overhead_pct(p50_on, p50_off), 2),
        },
        "batch": {
            "queries": int(lows.size),
            "rounds": sizes["batch_rounds"],
            "uninstrumented_qps": round(qps_off),
            "instrumented_qps": round(qps_on),
            # Positive = instrumented is slower, mirroring the latency row.
            "overhead_pct": round(_overhead_pct(qps_off, qps_on), 2),
        },
        "tracing": trace_rows,
        "exposition": {
            "families": families,
            "problems": problems,
        },
        "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
        "gates": {
            "bit_identical_instrumented_vs_direct": identical,
            "exposition_valid": not problems and families > 0,
        },
    }


def _print_results(results: dict) -> None:
    serve = results["serve"]
    batch = results["batch"]
    print(
        f"\n{results['records']} records, tick {results['max_wait_ms']} ms, "
        f"best of {results['repeats']}"
    )
    print()
    print(format_table(
        ["path", "uninstrumented", "instrumented", "overhead %"],
        [
            ["serve p50 (ms)", serve["uninstrumented_p50_ms"],
             serve["instrumented_p50_ms"], serve["overhead_pct"]],
            ["batch (qps)", batch["uninstrumented_qps"],
             batch["instrumented_qps"], batch["overhead_pct"]],
        ],
        title=f"instrumentation overhead (budget {results['overhead_budget_pct']}%)",
    ))
    print()
    print(format_table(
        ["sample rate", "p50 ms", "overhead vs untraced %"],
        [[row["sample_rate"], row["p50_ms"], row["overhead_vs_untraced_pct"]]
         for row in results["tracing"]],
        title="trace-sampling cost",
    ))
    exposition = results["exposition"]
    print(
        f"\nexposition: {exposition['families']} families, "
        f"{len(exposition['problems'])} problems"
    )


def _write_artifact(results: dict) -> None:
    from repro.kernels import runtime_info

    results = {**results, "kernel_runtime": runtime_info()}
    ARTIFACT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nartifact written to {ARTIFACT_PATH}")


def _check_results(results: dict, *, strict_timing: bool = True) -> None:
    """Correctness gates always; overhead gates standalone only."""
    for gate, passed in results["gates"].items():
        assert passed, f"gate failed: {gate}"
    if strict_timing:
        budget = results["overhead_budget_pct"]
        serve_overhead = results["serve"]["overhead_pct"]
        assert serve_overhead <= budget, (
            f"instrumented serve p50 is {serve_overhead}% over the "
            f"uninstrumented baseline (budget {budget}%)"
        )
        batch = results["batch"]
        qps_ratio = batch["instrumented_qps"] / max(batch["uninstrumented_qps"], 1)
        assert qps_ratio >= 1.0 - budget / 100.0, (
            f"instrumented batch throughput is {batch['instrumented_qps']} qps "
            f"vs {batch['uninstrumented_qps']} uninstrumented "
            f"(> {budget}% regression)"
        )


def test_observability_overhead():
    """Smoke protocol: scaled-down sizes, same gates + artifact."""
    results = run_benchmark(SMOKE_SIZES)
    _print_results(results)
    _write_artifact(results)
    _check_results(results, strict_timing=False)


if __name__ == "__main__":
    bench_results = run_benchmark(MAIN_SIZES)
    _print_results(bench_results)
    _write_artifact(bench_results)
    _check_results(bench_results)
