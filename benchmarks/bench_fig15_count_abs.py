"""Figure 15: COUNT response time vs absolute error threshold.

(a) Single key (TWEET): RMI vs FITing-tree vs PolyFit-2, eps_abs in
    {50, 100, 200, 500, 1000}.  Paper claim: PolyFit is about 1.5-6x faster
    than the learned-index baselines.
(b) Two keys (OSM): aR-tree vs PolyFit-2, eps_abs in {500, 1000, 2000}.
    Paper claim: PolyFit is at least an order of magnitude faster.
"""

from __future__ import annotations

import pytest

from repro import Aggregate, Guarantee, PolyFit2DIndex, PolyFitIndex
from repro.baselines import AggregateRTree2D, FITingTree, RecursiveModelIndex
from repro.bench import format_series, time_per_query_ns

ABS_1KEY = [50, 100, 200, 500, 1000]
ABS_2KEY = [500, 1000, 2000]


def test_fig15a_single_key_count(tweet_data, tweet_queries):
    """Single-key COUNT latency vs eps_abs for RMI / FITing-tree / PolyFit-2."""
    keys, _ = tweet_data
    rmi = RecursiveModelIndex.build(keys, stage_sizes=(1, 10, 100))
    series = {"RMI": [], "FITing-Tree": [], "PolyFit-2": []}
    for eps in ABS_1KEY:
        guarantee = Guarantee.absolute(eps)
        fiting = FITingTree.build(keys, aggregate=Aggregate.COUNT, error_budget=eps / 2)
        polyfit = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, guarantee=guarantee)
        series["RMI"].append(round(time_per_query_ns(
            lambda q: rmi.query(q, guarantee), tweet_queries, repeats=1, method="RMI"
        ).per_query_ns))
        series["FITing-Tree"].append(round(time_per_query_ns(
            lambda q: fiting.query(q, guarantee), tweet_queries, repeats=1, method="FIT"
        ).per_query_ns))
        series["PolyFit-2"].append(round(time_per_query_ns(
            lambda q: polyfit.query(q, guarantee), tweet_queries, repeats=1, method="PolyFit"
        ).per_query_ns))

    print()
    print(format_series("eps_abs", ABS_1KEY, series,
                        title="Figure 15(a): COUNT (single key) time (ns) vs eps_abs"))

    # Shape check: PolyFit never slower than both learned baselines at once.
    for index in range(len(ABS_1KEY)):
        assert series["PolyFit-2"][index] <= max(series["RMI"][index],
                                                 series["FITing-Tree"][index]) * 1.25


def test_fig15b_two_key_count(osm_data, osm_queries):
    """Two-key COUNT latency vs eps_abs for aR-tree / PolyFit-2."""
    xs, ys = osm_data
    artree = AggregateRTree2D(xs, ys)
    workload = osm_queries[:300]
    series = {"aR-tree": [], "PolyFit-2": []}
    for eps in ABS_2KEY:
        guarantee = Guarantee.absolute(eps)
        polyfit = PolyFit2DIndex.build(xs, ys, guarantee=guarantee, grid_resolution=96)
        series["aR-tree"].append(round(time_per_query_ns(
            lambda q: artree.rectangle_aggregate(q.x_low, q.x_high, q.y_low, q.y_high),
            workload, repeats=1, method="aR-tree"
        ).per_query_ns))
        series["PolyFit-2"].append(round(time_per_query_ns(
            lambda q: polyfit.query(q, guarantee), workload, repeats=1, method="PolyFit"
        ).per_query_ns))

    print()
    print(format_series("eps_abs", ABS_2KEY, series,
                        title="Figure 15(b): COUNT (two keys) time (ns) vs eps_abs"))

    # Paper shape: PolyFit wins at every threshold.
    for index in range(len(ABS_2KEY)):
        assert series["PolyFit-2"][index] <= series["aR-tree"][index]


@pytest.mark.benchmark(group="fig15")
@pytest.mark.parametrize("eps", [50, 1000])
def test_fig15_bench_polyfit_count(benchmark, eps, tweet_data, tweet_queries):
    """pytest-benchmark target: PolyFit single-key COUNT at the sweep extremes."""
    keys, _ = tweet_data
    guarantee = Guarantee.absolute(eps)
    index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, guarantee=guarantee)
    probe = tweet_queries[:200]

    def run():
        for query in probe:
            index.query(query, guarantee)

    benchmark(run)
