"""Index-construction benchmark: the fast build layer vs the LP-per-probe
baseline.

Measures the three construction accelerations landed together:

* **1-D Greedy Segmentation** — build time for degree 1/2/3 across dataset
  sizes, new path (``solver="auto"``: exact incremental scanner for degree
  <= 1, Remez exchange + early-accept certificate for degree >= 2) vs the
  old path (``solver="lp"``, no certificate, an LP per probe).  For degree
  <= 1 the segment *boundaries* must be identical (both evaluate the same
  exact feasibility predicate); for degree >= 2 the segment count must match
  and every per-segment error must stay within delta.
* **2-D quadtree build** — serial vs frontier-parallel (thread executor)
  build of the surface quadtree, which must be *bit-identical* (leaf Morton
  codes, rectangles, surface coefficients, exact payloads).
* The old-vs-new ratio and segment/leaf counts are recorded for every cell
  of the grid; the LP baseline is skipped (with a note) where its projected
  cost would dominate the whole protocol — the new path is still measured.

Run directly (``python benchmarks/bench_build_time.py``) for the full
protocol (n up to 10^6, where the degree-1 speedup gate of >= 10x applies),
or through pytest (the smoke suite) with scaled-down sizes.  Both emit
``BENCH_build_time.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bench import format_table
from repro.config import QuadTreeConfig
from repro.datasets import osm_points, tweet_latitudes
from repro.fitting.quadtree import build_quadtree_surface, quadtree_build_signature
from repro.fitting.segmentation import greedy_segmentation
from repro.functions.cumulative2d import build_cumulative_2d

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_build_time.json"

DEGREES = [1, 2, 3]

#: Full protocol: sizes per degree for the new path, and the subset of sizes
#: on which the LP baseline is also timed.  The baseline's cost per size
#: grows superlinearly (its LPs have O(segment length) rows), so the
#: largest baseline runs are limited to the degree-1 gate size.
#: The 1-D budget sits deliberately off round float thresholds (same trick
#: as the equivalence tests): the exact scanner and the LP baseline must
#: land on the same side of every feasibility comparison, and HiGHS reports
#: max_error with ~1e-9-relative noise that could flip a tie at exactly
#: 100.0 under a future scipy upgrade.
BUILD_DELTA = 100.0171

MAIN_PROTOCOL = {
    "one_key_sizes": [10_000, 100_000, 1_000_000],
    "one_key_baseline_sizes": {
        1: [10_000, 100_000, 1_000_000],
        2: [10_000, 100_000],
        3: [10_000, 100_000],
    },
    "delta": BUILD_DELTA,
    "two_key_points": 80_000,
    "two_key_resolution": 128,
    "speedup_gate_size": 1_000_000,
}

#: Smoke protocol (pytest/CI): small enough for the shared runners while
#: still exercising every code path and every invariant gate.
SMOKE_PROTOCOL = {
    "one_key_sizes": [5_000, 20_000],
    "one_key_baseline_sizes": {1: [5_000, 20_000], 2: [5_000], 3: [5_000]},
    "delta": BUILD_DELTA,
    "two_key_points": 20_000,
    "two_key_resolution": 64,
    "speedup_gate_size": None,
}


def _target_function(n: int) -> tuple[np.ndarray, np.ndarray]:
    """The COUNT cumulative function over n synthetic TWEET latitudes."""
    keys, _ = tweet_latitudes(n, seed=101)
    return keys, np.arange(1, n + 1, dtype=np.float64)


def _time_build(keys, values, delta, degree, **kwargs) -> tuple[float, list]:
    start = time.perf_counter()
    segments = greedy_segmentation(keys, values, delta=delta, degree=degree, **kwargs)
    return time.perf_counter() - start, segments


def run_one_key(protocol: dict) -> dict:
    """Build-time grid: degree x size, new vs LP baseline."""
    delta = protocol["delta"]
    section: dict = {"delta": delta, "grid": []}
    for n in protocol["one_key_sizes"]:
        keys, values = _target_function(n)
        for degree in DEGREES:
            new_seconds, new_segments = _time_build(keys, values, delta, degree)
            entry = {
                "n": n,
                "degree": degree,
                "new_seconds": round(new_seconds, 4),
                "new_segments": len(new_segments),
                "new_errors_within_delta": bool(
                    all(s.max_error <= delta + 1e-9 for s in new_segments)
                ),
            }
            if n in protocol["one_key_baseline_sizes"].get(degree, []):
                old_seconds, old_segments = _time_build(
                    keys, values, delta, degree, solver="lp", early_accept=False
                )
                entry.update(
                    {
                        "old_seconds": round(old_seconds, 4),
                        "old_segments": len(old_segments),
                        "speedup": round(old_seconds / new_seconds, 2),
                        "equal_segment_count": len(new_segments) == len(old_segments),
                        "identical_boundaries": (
                            [s.stop for s in new_segments]
                            == [s.stop for s in old_segments]
                        ),
                    }
                )
            else:
                entry["old_skipped"] = "LP baseline too slow at this size"
            section["grid"].append(entry)
    return section


def run_two_key(protocol: dict) -> dict:
    """Serial vs frontier-parallel quadtree build, with bit-identity check."""
    xs, ys = osm_points(protocol["two_key_points"], seed=103)
    exact = build_cumulative_2d(xs, ys)
    grid_x, grid_y, grid_cf = exact.sample_grid(
        resolution=protocol["two_key_resolution"]
    )
    section: dict = {
        "points": protocol["two_key_points"],
        "grid_resolution": protocol["two_key_resolution"],
        "delta": 250.0,
        "executors": {},
    }
    signatures = {}
    for executor in ("serial", "thread"):
        config = QuadTreeConfig(delta=250.0, build_executor=executor)
        start = time.perf_counter()
        root = build_quadtree_surface(grid_x, grid_y, grid_cf, config)
        elapsed = time.perf_counter() - start
        signatures[executor] = quadtree_build_signature(root)
        section["executors"][executor] = {
            "seconds": round(elapsed, 4),
            "leaves": len(root.leaves()),
        }
    serial_seconds = section["executors"]["serial"]["seconds"]
    thread = section["executors"]["thread"]
    thread["speedup_vs_serial"] = round(serial_seconds / thread["seconds"], 2)
    section["thread_identical_to_serial"] = signatures["serial"] == signatures["thread"]
    return section


def run_benchmark(protocol: dict) -> dict:
    results = {
        "description": (
            "index construction time: incremental/remez/early-accept GS vs the "
            "LP-per-probe baseline (1-D) and serial vs frontier-parallel "
            "quadtree build (2-D)"
        ),
        "cpu_count": os.cpu_count(),
        "one_key": run_one_key(protocol),
        "two_key": run_two_key(protocol),
    }
    return results


def _print_results(results: dict) -> None:
    rows = []
    for entry in results["one_key"]["grid"]:
        rows.append(
            [
                entry["n"],
                entry["degree"],
                f"{entry['new_seconds']:.3f}",
                f"{entry.get('old_seconds', float('nan')):.3f}"
                if "old_seconds" in entry
                else "(skipped)",
                f"{entry['speedup']}x" if "speedup" in entry else "-",
                entry["new_segments"],
                "yes"
                if entry.get("identical_boundaries")
                else ("n/a" if "identical_boundaries" not in entry else "NO"),
            ]
        )
    print()
    print(
        format_table(
            ["n", "deg", "new s", "old s", "speedup", "segments", "same bounds"],
            rows,
            title=f"1-D GS build time (delta={results['one_key']['delta']})",
        )
    )
    two = results["two_key"]
    rows = [
        [
            executor,
            f"{entry['seconds']:.3f}",
            entry["leaves"],
            f"{entry.get('speedup_vs_serial', 1.0)}x",
        ]
        for executor, entry in two["executors"].items()
    ]
    print()
    print(
        format_table(
            ["executor", "seconds", "leaves", "vs serial"],
            rows,
            title=(
                f"2-D quadtree build ({two['points']} pts, res {two['grid_resolution']}, "
                f"{results['cpu_count']} cpus, bit-identical: "
                f"{'yes' if two['thread_identical_to_serial'] else 'NO'})"
            ),
        )
    )


def _check_results(results: dict, *, strict_timing: bool = True) -> None:
    """Invariant gates (always) and the wall-clock gate (full protocol only).

    Correctness: identical boundaries wherever the degree-1 baseline ran,
    equal segment counts and in-budget errors for degree >= 2, bit-identical
    parallel quadtree.  Timing: >= 10x degree-1 speedup at the gate size.
    """
    gate_size = None
    if strict_timing:
        gate_size = MAIN_PROTOCOL["speedup_gate_size"]
    for entry in results["one_key"]["grid"]:
        label = f"n={entry['n']} degree={entry['degree']}"
        assert entry["new_errors_within_delta"], f"{label}: per-segment error > delta"
        if "old_seconds" not in entry:
            continue
        if entry["degree"] <= 1:
            assert entry["identical_boundaries"], f"{label}: boundaries diverged"
        assert entry["equal_segment_count"], f"{label}: segment count diverged"
        if gate_size and entry["n"] == gate_size and entry["degree"] == 1:
            assert entry["speedup"] >= 10.0, (
                f"{label}: expected >= 10x build speedup, got {entry['speedup']}x"
            )
    assert results["two_key"]["thread_identical_to_serial"], (
        "parallel quadtree build diverged from the serial build"
    )


def _write_artifact(results: dict) -> None:
    from repro.kernels import runtime_info

    results = {**results, "kernel_runtime": runtime_info()}
    ARTIFACT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nartifact written to {ARTIFACT_PATH}")


def test_build_time_smoke():
    """Smoke protocol: scaled-down grid, same invariant gates + artifact."""
    results = run_benchmark(SMOKE_PROTOCOL)
    _print_results(results)
    _write_artifact(results)
    _check_results(results, strict_timing=False)


if __name__ == "__main__":
    bench_results = run_benchmark(MAIN_PROTOCOL)
    _print_results(bench_results)
    _write_artifact(bench_results)
    _check_results(bench_results)
