"""Fleet benchmark: scatter-gather routing vs the monolithic index.

Protocol (1-D, degree 1, uniform keys, mixed-width range workload):

* **bit-identity gate** (always enforced, smoke and standalone) — for every
  partition count and every aggregate, fleet ``exact_batch`` answers are
  bit-identical to one monolithic :class:`~repro.index.polyfit1d.
  PolyFitIndex` over the same records (COUNT/MAX/MIN everywhere; SUM uses
  integer measures so partial sums re-associate losslessly), and certified
  relative-guarantee answers agree query-for-query on the guarantee flag.
* **throughput vs partition count** — batch queries/second through the
  fleet router at 1 (monolithic baseline), 2, 4, 8 and 16 partitions,
  serial router; the scan/merge overhead of scatter-gather is the cost
  being measured, partition-local index size is the win.
* **straddle profile** — mean number of partitions a query straddles and
  the mean merged certified bound per partition count: the bound grows
  with straddle width (bounds ADD across cut points), which is the
  accuracy price of partitioning the paper's Lemma-2/4 budgets.
* **routed writes** — inserts/second through :meth:`~repro.fleet.fleet.
  IndexFleet.insert` (route + buffer append) at each partition count.

Timing gate (standalone only): the 4-partition fleet keeps >= 25% of
monolithic batch throughput on this workload — scatter-gather overhead is
bounded, not free.

Run directly (``python benchmarks/bench_fleet_scaling.py``) for the full
protocol, or through pytest (the smoke suite) with scaled-down sizes.
Both emit ``BENCH_fleet_scaling.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import Aggregate, Guarantee, IndexFleet, PolyFitIndex
from repro.bench import format_table
from repro.config import FitConfig, IndexConfig

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_fleet_scaling.json"

#: Workload sizes for the standalone (``__main__``) protocol; the pytest
#: smoke entry point scales these down to keep CI fast.
MAIN_SIZES = {
    "records": 500_000,
    "queries": 20_000,
    "inserts": 100_000,
    "partition_counts": [1, 2, 4, 8, 16],
    "repeats": 3,
}
SMOKE_SIZES = {
    "records": 60_000,
    "queries": 3_000,
    "inserts": 5_000,
    "partition_counts": [1, 2, 4],
    "repeats": 1,
}

DELTA = 100.0
KEY_RANGE = (0.0, 1e6)
CONFIG = IndexConfig(fit=FitConfig(degree=1))
AGGREGATES = [Aggregate.COUNT, Aggregate.SUM, Aggregate.MAX, Aggregate.MIN]


def _workload(records: int, queries: int, seed: int):
    rng = np.random.default_rng(seed)
    keys = rng.uniform(*KEY_RANGE, size=records)
    # integer measures keep SUM partials bit-identical under re-association
    measures = rng.integers(1, 1000, size=records).astype(np.float64)
    span = KEY_RANGE[1] - KEY_RANGE[0]
    lows = rng.uniform(KEY_RANGE[0] - 0.05 * span, KEY_RANGE[1], size=queries)
    widths = rng.uniform(0.0, 0.5 * span, size=queries)
    return keys, measures, lows, np.minimum(lows + widths, KEY_RANGE[1] * 1.05)


def _build_fleet(keys, measures, aggregate, num_partitions):
    m = None if aggregate is Aggregate.COUNT else measures
    return IndexFleet.build(
        keys, m, aggregate, delta=DELTA, config=CONFIG,
        num_partitions=num_partitions,
    )


def _best_qps(fn, batch_size: int, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return batch_size / best


def _bit_identity(fleet, mono, lows, highs, aggregate) -> bool:
    """Fleet answers == monolithic answers, bit for bit (see module doc)."""
    if not np.array_equal(
        fleet.exact_batch(lows, highs), mono.exact_batch(lows, highs),
        equal_nan=True,
    ):
        return False
    guarantee = Guarantee.relative(0.05)
    ours = fleet.query_batch(lows, highs, guarantee)
    theirs = mono.query_batch(lows, highs, guarantee)
    if not (bool(ours.guaranteed.all()) and bool(theirs.guaranteed.all())):
        return False
    # certified answers need not be bit-equal (different estimates under
    # the same guarantee) — but both must satisfy the guarantee, which the
    # all-true flags above assert against each implementation's own bound
    truth = mono.exact_batch(lows, highs)
    for answers in (ours.values, theirs.values):
        nan = np.isnan(truth)
        if not np.all(np.isnan(answers[nan])):
            return False
        nonzero = ~nan & (truth != 0)
        rel = np.abs(answers[nonzero] - truth[nonzero]) / np.abs(truth[nonzero])
        if not np.all(rel <= 0.05 + 1e-9):
            return False
    return True


def _straddle_stats(fleet, lows, highs) -> tuple[float, float]:
    pmap = fleet.partition_map
    straddled = pmap.locate(highs) - pmap.locate(lows) + 1
    bounds = fleet.snapshot().error_bounds_batch(lows, highs)
    return float(straddled.mean()), float(bounds.mean())


def run_benchmark(sizes: dict) -> dict:
    keys, measures, lows, highs = _workload(
        sizes["records"], sizes["queries"], seed=23
    )
    repeats = sizes["repeats"]
    rng = np.random.default_rng(29)
    insert_keys = rng.uniform(*KEY_RANGE, size=sizes["inserts"])

    mono = {
        aggregate: PolyFitIndex.build(
            keys,
            None if aggregate is Aggregate.COUNT else measures,
            aggregate,
            delta=DELTA,
            config=CONFIG,
        )
        for aggregate in AGGREGATES
    }
    baseline_qps = _best_qps(
        lambda: mono[Aggregate.COUNT].estimate_batch(lows, highs),
        lows.size,
        repeats,
    )

    scaling = []
    identical = True
    for count in sizes["partition_counts"]:
        fleet = _build_fleet(keys, measures, Aggregate.COUNT, count)
        for aggregate in AGGREGATES:
            agg_fleet = (
                fleet
                if aggregate is Aggregate.COUNT
                else _build_fleet(keys, measures, aggregate, count)
            )
            identical = identical and _bit_identity(
                agg_fleet, mono[aggregate], lows, highs, aggregate
            )
            if agg_fleet is not fleet:
                agg_fleet.close()
        snapshot = fleet.snapshot()  # build once, outside the timed region
        estimate_qps = _best_qps(
            lambda s=snapshot: s.estimate_batch(lows, highs), lows.size, repeats
        )
        exact_qps = _best_qps(
            lambda s=snapshot: s.exact_batch(lows, highs), lows.size, repeats
        )
        mean_straddle, mean_bound = _straddle_stats(fleet, lows, highs)
        start = time.perf_counter()
        fleet.insert(insert_keys)
        insert_qps = insert_keys.size / (time.perf_counter() - start)
        scaling.append(
            {
                "num_partitions": fleet.num_partitions,
                "estimate_qps": round(estimate_qps),
                "exact_qps": round(exact_qps),
                "vs_monolithic": round(estimate_qps / baseline_qps, 2),
                "mean_straddle": round(mean_straddle, 2),
                "mean_merged_bound": round(mean_bound, 1),
                "insert_qps": round(insert_qps),
            }
        )
        fleet.close()

    four = next(
        (row for row in scaling if row["num_partitions"] == 4), scaling[-1]
    )
    return {
        "description": (
            "partitioned fleet scatter-gather vs monolithic index: "
            "bit-identity, batch throughput, straddle/bound profile, "
            "routed insert throughput"
        ),
        "records": sizes["records"],
        "queries": sizes["queries"],
        "delta": DELTA,
        "degree": 1,
        "monolithic_estimate_qps": round(baseline_qps),
        "scaling": scaling,
        "four_partition_relative_throughput": four["vs_monolithic"],
        "gates": {
            "fleet_bit_identical_to_monolithic": identical,
        },
    }


def _print_results(results: dict) -> None:
    print(
        f"\n{results['records']} records, {results['queries']} queries/batch, "
        f"monolithic baseline {results['monolithic_estimate_qps']} q/s"
    )
    rows = [
        [row["num_partitions"], row["estimate_qps"], row["exact_qps"],
         row["vs_monolithic"], row["mean_straddle"],
         row["mean_merged_bound"], row["insert_qps"]]
        for row in results["scaling"]
    ]
    print()
    print(format_table(
        ["partitions", "estimate q/s", "exact q/s", "vs mono",
         "straddle", "merged bound", "insert/s"],
        rows,
        title="fleet scaling by partition count",
    ))
    gate = results["gates"]["fleet_bit_identical_to_monolithic"]
    print(f"\nbit-identity vs monolithic (all aggregates): {gate}")


def _write_artifact(results: dict) -> None:
    from repro.kernels import runtime_info

    results = {**results, "kernel_runtime": runtime_info()}
    ARTIFACT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nartifact written to {ARTIFACT_PATH}")


def _check_results(results: dict, *, strict_timing: bool = True) -> None:
    """Correctness gates always; throughput gates standalone only."""
    for gate, passed in results["gates"].items():
        assert passed, f"gate failed: {gate}"
    for row in results["scaling"]:
        assert row["mean_straddle"] >= 1.0
        assert row["mean_merged_bound"] >= DELTA - 1e-9
    if strict_timing:
        relative = results["four_partition_relative_throughput"]
        assert relative >= 0.25, (
            "4-partition fleet should keep >= 25% of monolithic batch "
            f"throughput, got {relative}"
        )


def test_fleet_scaling():
    """Smoke protocol: scaled-down sizes, same gates + artifact."""
    results = run_benchmark(SMOKE_SIZES)
    _print_results(results)
    _write_artifact(results)
    _check_results(results, strict_timing=False)


if __name__ == "__main__":
    bench_results = run_benchmark(MAIN_SIZES)
    _print_results(bench_results)
    _write_artifact(bench_results)
    _check_results(bench_results)
