"""Serving-layer benchmark: coalesced vs naive request handling.

Protocol (1-D COUNT, degree 1, in-process asyncio — no sockets, so the
numbers isolate the coalescer + engine path from kernel TCP noise):

* **idle round-trip** — median latency of sequential single requests
  through the :class:`~repro.serve.coalescer.Coalescer` (one tick wait +
  a batch of one); the floor every loaded percentile is compared against.
* **open-loop load** — arrivals scheduled at several offered QPS
  (independent of completions, so backlog shows up as latency, not as a
  slower generator); per-request latency is completion minus *scheduled*
  arrival.  Run in two modes: **coalesced** (through the coalescer) and
  **naive** (one size-1 ``host.execute`` per request on the executor —
  the server-without-a-coalescer strawman).
* **saturation throughput** — the whole workload submitted at once;
  achieved QPS in both modes is the capacity ratio the coalescer buys.
* **result cache** — a repeated batch workload against a
  ``cache_size > 0`` host; the artifact records the
  :meth:`~repro.queries.cache.ResultCache.info` counters the server
  surfaces through ``/stats``.

Correctness gate (always enforced, smoke and standalone): every coalesced
answer is bit-identical to one direct ``query_batch`` call over the same
workload — values, guarantee flags, fallback flags and error bounds.

Timing gates (standalone only): saturation throughput >= 10x naive, and
loaded p99 at the lightest offered level within 5x the idle round-trip.

Run directly (``python benchmarks/bench_serve_latency.py``) for the full
protocol, or through pytest (the smoke suite) with scaled-down sizes.  Both
emit ``BENCH_serve_latency.json`` at the repository root.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import numpy as np

from repro import Aggregate, PolyFitIndex
from repro.bench import format_table
from repro.config import FitConfig, IndexConfig
from repro.serve import Coalescer, EngineHost

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve_latency.json"

#: Workload sizes for the standalone (``__main__``) protocol; the pytest
#: smoke entry point scales these down to keep CI fast.
MAIN_SIZES = {"records": 500_000, "requests": 2_000, "naive_requests": 400,
              "idle_probes": 50, "offered_qps": [500, 2_000, 8_000]}
SMOKE_SIZES = {"records": 40_000, "requests": 300, "naive_requests": 60,
               "idle_probes": 15, "offered_qps": [200, 1_000]}

DELTA = 100.0
MAX_WAIT_MS = 1.0


def _workload(records: int, requests: int, seed: int):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.uniform(0.0, 1e6, size=records))
    draws = rng.uniform(0.0, 1e6, size=(2, requests))
    lows = np.minimum(draws[0], draws[1])
    highs = np.maximum(draws[0], draws[1])
    return keys, lows, highs


def _build_host(keys: np.ndarray, **host_kwargs) -> EngineHost:
    index = PolyFitIndex.build(
        keys,
        aggregate=Aggregate.COUNT,
        delta=DELTA,
        config=IndexConfig(fit=FitConfig(degree=1)),
    )
    return EngineHost(index, **host_kwargs)


def _percentiles_ms(latencies: list[float]) -> dict:
    array = np.array(latencies, dtype=np.float64) * 1e3
    return {
        "p50_ms": round(float(np.percentile(array, 50)), 3),
        "p95_ms": round(float(np.percentile(array, 95)), 3),
        "p99_ms": round(float(np.percentile(array, 99)), 3),
    }


async def _idle_rtt_ms(host: EngineHost, probes: int) -> float:
    """Median sequential single-request round trip (tick + batch of one)."""
    coalescer = Coalescer(host, max_wait_ms=MAX_WAIT_MS)
    loop = asyncio.get_running_loop()
    samples = []
    for i in range(probes):
        start = loop.time()
        await coalescer.submit((float(i), float(i) + 1e5))
        samples.append(loop.time() - start)
    await coalescer.stop()
    return round(float(np.median(samples)) * 1e3, 3)


def _naive_call(host: EngineHost, view, low: float, high: float):
    """The no-coalescing strawman: one size-1 engine call per request."""
    return host.execute(view, (np.array([low]), np.array([high])))


async def _open_loop(
    host: EngineHost,
    lows: np.ndarray,
    highs: np.ndarray,
    offered_qps: float,
    mode: str,
) -> dict:
    """Schedule arrivals at ``offered_qps``; latency is vs scheduled time."""
    loop = asyncio.get_running_loop()
    interval = 1.0 / offered_qps
    coalescer = Coalescer(host, max_wait_ms=MAX_WAIT_MS) if mode == "coalesced" else None
    latencies: list[float] = []
    tasks = []
    start = loop.time()

    async def one(i: int, scheduled: float) -> None:
        if mode == "coalesced":
            future = coalescer.submit((float(lows[i]), float(highs[i])))
        else:
            view = host.pin()
            future = loop.run_in_executor(
                None, _naive_call, host, view, float(lows[i]), float(highs[i])
            )
        await future
        latencies.append(loop.time() - scheduled)

    for i in range(lows.size):
        scheduled = start + i * interval
        delay = scheduled - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(one(i, scheduled)))
    await asyncio.gather(*tasks)
    elapsed = loop.time() - start
    if coalescer is not None:
        await coalescer.stop()
    row = {
        "mode": mode,
        "offered_qps": offered_qps,
        "requests": int(lows.size),
        "achieved_qps": round(lows.size / elapsed),
        **_percentiles_ms(latencies),
    }
    if coalescer is not None:
        row["mean_batch_size"] = round(coalescer.stats.mean_batch_size, 1)
    return row


async def _saturation(
    host: EngineHost, lows: np.ndarray, highs: np.ndarray, mode: str
) -> tuple[float, list]:
    """Submit the whole workload at once; return achieved QPS (+ answers)."""
    loop = asyncio.get_running_loop()
    start = loop.time()
    if mode == "coalesced":
        coalescer = Coalescer(host, max_wait_ms=MAX_WAIT_MS)
        futures = [
            coalescer.submit((float(low), float(high)))
            for low, high in zip(lows, highs)
        ]
        answers = await asyncio.gather(*futures)
        elapsed = loop.time() - start
        await coalescer.stop()
    else:
        # Pin per request, as a coalescer-free server would have to (on an
        # updatable index each request must see the current epoch).
        futures = [
            loop.run_in_executor(
                None, _naive_call, host, host.pin(), float(low), float(high)
            )
            for low, high in zip(lows, highs)
        ]
        answers = await asyncio.gather(*futures)
        elapsed = loop.time() - start
    return lows.size / elapsed, answers


def _bit_identity_gate(host: EngineHost, answers, lows, highs) -> bool:
    """Coalesced answers == one direct query_batch call, bit for bit."""
    direct = host.index.query_batch(lows, highs)
    values = np.array([a.value for a in answers], dtype=np.float64)
    guaranteed = np.array([a.guaranteed for a in answers], dtype=bool)
    fallback = np.array([a.exact_fallback for a in answers], dtype=bool)
    bounds = np.array(
        [np.nan if a.error_bound is None else a.error_bound for a in answers],
        dtype=np.float64,
    )
    return (
        np.array_equal(values, direct.values)
        and np.array_equal(guaranteed, direct.guaranteed)
        and np.array_equal(fallback, direct.exact_fallback)
        and np.array_equal(bounds, direct.error_bounds, equal_nan=True)
    )


def _cache_section(keys: np.ndarray, lows: np.ndarray, highs: np.ndarray) -> dict:
    """Repeat one batch workload against a caching host; report counters."""
    host = _build_host(keys, cache_size=8)
    view = host.pin()
    rounds = 5
    for _ in range(rounds):
        host.execute(view, (lows, highs))
    info = host.cache_info()
    return {"rounds": rounds, **info.as_dict()}


def run_benchmark(sizes: dict) -> dict:
    keys, lows, highs = _workload(sizes["records"], sizes["requests"], seed=17)
    host = _build_host(keys)

    async def protocol():
        idle = await _idle_rtt_ms(host, sizes["idle_probes"])
        levels = []
        naive_n = min(sizes["naive_requests"], sizes["requests"])
        for offered in sizes["offered_qps"]:
            levels.append(
                await _open_loop(host, lows, highs, offered, "coalesced")
            )
            levels.append(
                await _open_loop(
                    host, lows[:naive_n], highs[:naive_n], offered, "naive"
                )
            )
        coalesced_qps, answers = await _saturation(host, lows, highs, "coalesced")
        naive_qps, _ = await _saturation(
            host, lows[:naive_n], highs[:naive_n], "naive"
        )
        identical = _bit_identity_gate(host, answers, lows, highs)
        return idle, levels, coalesced_qps, naive_qps, identical

    idle_rtt_ms, levels, coalesced_qps, naive_qps, identical = asyncio.run(
        protocol()
    )
    lightest = min(sizes["offered_qps"])
    lightest_p99 = next(
        level["p99_ms"]
        for level in levels
        if level["mode"] == "coalesced" and level["offered_qps"] == lightest
    )
    return {
        "description": (
            "serving latency/throughput: request coalescing vs one engine "
            "call per request, open-loop arrivals, in-process asyncio"
        ),
        "records": sizes["records"],
        "delta": DELTA,
        "degree": 1,
        "max_wait_ms": MAX_WAIT_MS,
        "idle_rtt_ms": idle_rtt_ms,
        "open_loop": levels,
        "saturation": {
            "coalesced_qps": round(coalesced_qps),
            "naive_qps": round(naive_qps),
            "speedup": round(coalesced_qps / naive_qps, 1),
        },
        "lightest_load_p99_ms": lightest_p99,
        "cache": _cache_section(keys, lows, highs),
        "gates": {
            "coalesced_bit_identical_to_direct_batch": identical,
        },
    }


def _print_results(results: dict) -> None:
    print(
        f"\n{results['records']} records, tick {results['max_wait_ms']} ms, "
        f"idle round-trip {results['idle_rtt_ms']} ms"
    )
    rows = [
        [level["mode"], level["offered_qps"], level["achieved_qps"],
         level["p50_ms"], level["p95_ms"], level["p99_ms"],
         level.get("mean_batch_size", "-")]
        for level in results["open_loop"]
    ]
    print()
    print(format_table(
        ["mode", "offered qps", "achieved", "p50 ms", "p95 ms", "p99 ms",
         "mean batch"],
        rows,
        title="open-loop latency by offered load",
    ))
    saturation = results["saturation"]
    print()
    print(format_table(
        ["mode", "qps"],
        [["coalesced", saturation["coalesced_qps"]],
         ["naive", saturation["naive_qps"]]],
        title=f"saturation throughput ({saturation['speedup']}x coalescing win)",
    ))
    cache = results["cache"]
    print(
        f"\ncache: {cache['rounds']} identical rounds -> "
        f"{cache['hits']} hits / {cache['misses']} misses "
        f"(hit rate {cache['hit_rate']})"
    )


def _write_artifact(results: dict) -> None:
    from repro.kernels import runtime_info

    results = {**results, "kernel_runtime": runtime_info()}
    ARTIFACT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nartifact written to {ARTIFACT_PATH}")


def _check_results(results: dict, *, strict_timing: bool = True) -> None:
    """Correctness gates always; throughput/latency gates standalone only."""
    for gate, passed in results["gates"].items():
        assert passed, f"gate failed: {gate}"
    cache = results["cache"]
    assert cache["hits"] == cache["rounds"] - 1, (
        f"repeated workload should hit the cache, got {cache}"
    )
    if strict_timing:
        saturation = results["saturation"]
        assert saturation["speedup"] >= 10.0, (
            "coalescing should buy >= 10x saturation throughput, "
            f"got {saturation['speedup']}x"
        )
        budget = 5.0 * results["idle_rtt_ms"]
        assert results["lightest_load_p99_ms"] <= budget, (
            f"p99 at the lightest load ({results['lightest_load_p99_ms']} ms) "
            f"exceeds 5x the idle round-trip ({budget} ms)"
        )


def test_serve_latency():
    """Smoke protocol: scaled-down sizes, same gates + artifact."""
    results = run_benchmark(SMOKE_SIZES)
    _print_results(results)
    _write_artifact(results)
    _check_results(results, strict_timing=False)


if __name__ == "__main__":
    bench_results = run_benchmark(MAIN_SIZES)
    _print_results(bench_results)
    _write_artifact(bench_results)
    _check_results(bench_results)
