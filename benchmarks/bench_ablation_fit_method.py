"""Ablation A2: minimax (LP) fitting vs least-squares fitting.

PolyFit's segments are fitted under the L-infinity norm (Equation 9) because
the bounded delta-error constraint is a max-norm constraint: minimizing the
maximum deviation directly lets each segment stretch as far as possible
before violating the budget.  This ablation quantifies that choice by
segmenting the same curve with (a) the LP minimax fit and (b) a plain
least-squares fit, under the same budget, and comparing segment counts and
index sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Aggregate, Guarantee, IndexConfig, PolyFitIndex
from repro.config import FitConfig, SegmentationConfig
from repro.bench import format_table
from repro.fitting import fit_lstsq_polynomial, fit_minimax_polynomial


def test_ablation_minimax_needs_fewer_segments(tweet_data):
    """Under the same budget, minimax fitting yields no more segments than least squares."""
    keys, _ = tweet_data
    subset = keys[:: max(1, keys.size // 15_000)]
    eps = 100.0
    rows = []
    counts = {}
    for solver in ("auto", "lstsq"):
        config = IndexConfig(
            fit=FitConfig(degree=2, solver=solver),
            segmentation=SegmentationConfig(delta=eps / 2),
        )
        index = PolyFitIndex.build(subset, aggregate=Aggregate.COUNT,
                                   guarantee=Guarantee.absolute(eps), config=config)
        counts[solver] = index.num_segments
        rows.append([
            "minimax (remez/auto)" if solver == "auto" else "least squares",
            index.num_segments,
            f"{index.size_in_bytes() / 1024:.2f}",
        ])

    print()
    print(format_table(
        ["fitting method", "segments", "index size (KB)"],
        rows,
        title="Ablation A2: fitting objective vs segment count (TWEET COUNT, eps_abs=100)",
    ))
    assert counts["auto"] <= counts["lstsq"]


def test_ablation_per_segment_error_comparison():
    """On a fixed window, the minimax fit has lower max error than least squares."""
    rng = np.random.default_rng(81)
    keys = np.sort(rng.uniform(0, 100, size=200))
    values = np.cumsum(rng.uniform(0, 3, size=200)) + 20 * np.sin(keys / 5.0)
    rows = []
    for degree in (1, 2, 3):
        minimax = fit_minimax_polynomial(keys, values, degree, solver="lp").max_error
        lstsq = fit_lstsq_polynomial(keys, values, degree).max_error
        rows.append([degree, f"{minimax:.2f}", f"{lstsq:.2f}",
                     f"{lstsq / minimax:.2f}x" if minimax > 0 else "n/a"])
        assert minimax <= lstsq + 1e-9

    print()
    print(format_table(
        ["degree", "minimax max-error", "lstsq max-error", "ratio"],
        rows,
        title="Ablation A2: max-norm error of the two fitting objectives",
    ))


@pytest.mark.benchmark(group="ablation-fit")
@pytest.mark.parametrize("solver", ["lp", "lstsq"])
def test_ablation_bench_fit_methods(benchmark, solver):
    """pytest-benchmark target: one 200-point degree-2 fit, LP vs least squares."""
    rng = np.random.default_rng(82)
    keys = np.sort(rng.uniform(0, 100, size=200))
    values = np.cumsum(rng.uniform(0, 3, size=200))

    def run():
        return fit_minimax_polynomial(keys, values, 2, solver=solver)

    fit = benchmark(run)
    assert fit.max_error >= 0.0
