"""Figure 5: fitting quality of linear vs polynomial models on an HKI slice.

The paper shows the Hong Kong 40-Index DFmax curve for 2018 (about 90 points)
together with three fits: linear regression (RMI's model), a linear segment
(FITing-tree's model) and a degree-4 minimax polynomial (PolyFit's model).
The claim is that the polynomial achieves a much lower fitting error.

This bench fits all three models to the same slice of the synthetic HKI curve
and reports their maximum absolute errors; the benchmark target times the
degree-4 minimax fit itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LinearModel
from repro.baselines.fiting_tree import shrinking_cone_segmentation
from repro.bench import format_table
from repro.fitting import fit_minimax_polynomial


def _hki_2018_slice(hki_data, points: int = 90):
    keys, values = hki_data
    step = max(1, keys.size // points)
    return keys[::step][:points], values[::step][:points]


def _linear_regression_error(keys, values) -> float:
    model = LinearModel().fit(keys, values)
    return float(np.max(np.abs(model.predict(keys) - values)))


def _single_linear_segment_error(keys, values) -> float:
    # FITing-tree style: one shrinking-cone segment forced over all points by
    # using an infinite budget, then measure its achieved error.
    segments = shrinking_cone_segmentation(keys, values, error_budget=np.inf)
    assert len(segments) == 1
    segment = segments[0]
    return float(np.max(np.abs([segment.predict(k) for k in keys] - values)))


def test_fig05_polynomial_beats_linear_fits(hki_data):
    """Degree-4 minimax polynomial error is well below both linear fits."""
    keys, values = _hki_2018_slice(hki_data)
    lr_error = _linear_regression_error(keys, values)
    fit_error = _single_linear_segment_error(keys, values)
    poly_error = fit_minimax_polynomial(keys, values, degree=4, solver="lp").max_error

    print()
    print(format_table(
        ["model", "max abs fitting error"],
        [
            ["LR(k) linear regression", f"{lr_error:.1f}"],
            ["FIT(k) linear segment", f"{fit_error:.1f}"],
            ["P(k) degree-4 minimax polynomial", f"{poly_error:.1f}"],
        ],
        title="Figure 5: fitting DFmax(k) on a ~90-point HKI slice",
    ))

    assert poly_error <= lr_error
    assert poly_error <= fit_error
    # Paper claim: the polynomial is a clearly better approximation.
    assert poly_error <= 0.9 * min(lr_error, fit_error)


def test_fig05_degree_sweep_monotone(hki_data):
    """Higher polynomial degree never increases the minimax fitting error."""
    keys, values = _hki_2018_slice(hki_data)
    errors = [
        fit_minimax_polynomial(keys, values, degree=deg, solver="lp").max_error
        for deg in range(1, 5)
    ]
    print()
    print(format_table(
        ["degree", "max abs fitting error"],
        [[deg, f"{err:.1f}"] for deg, err in zip(range(1, 5), errors)],
        title="Figure 5 (companion): minimax error vs polynomial degree",
    ))
    for lower, higher in zip(errors, errors[1:]):
        assert higher <= lower + 1e-6


@pytest.mark.benchmark(group="fig05-fitting")
def test_fig05_bench_degree4_fit(benchmark, hki_data):
    """Time the degree-4 minimax LP fit on the 90-point slice."""
    keys, values = _hki_2018_slice(hki_data)
    result = benchmark(lambda: fit_minimax_polynomial(keys, values, degree=4, solver="lp"))
    assert result.max_error >= 0.0
