"""Figure 14: effect of the polynomial degree on PolyFit performance.

(a) COUNT query response time vs absolute error threshold for PolyFit-1/2/3
    on TWEET,
(b) MAX query response time vs absolute error threshold for PolyFit-1/2 on
    HKI,
(c) index construction time vs absolute error threshold for PolyFit-1/2/3 on
    TWEET.

The paper's findings: degree 2 improves on degree 1 (fewer segments), the
marginal gain from degree 3 is small, and construction time grows with both
the degree and the error threshold.  The benchmark targets time the query
stage for each degree at eps_abs = 100.
"""

from __future__ import annotations

import time

import pytest

from repro import Aggregate, Guarantee, IndexConfig, PolyFitIndex
from repro.config import FitConfig, SegmentationConfig
from repro.bench import format_series, time_per_query_ns

ABS_THRESHOLDS = [100, 200, 500, 1000]
DEGREES_COUNT = [1, 2, 3]
DEGREES_MAX = [1, 2]


def _build(keys, measures, aggregate, eps_abs, degree):
    config = IndexConfig(
        fit=FitConfig(degree=degree),
        segmentation=SegmentationConfig(delta=1.0),  # placeholder, build() derives delta
    )
    return PolyFitIndex.build(
        keys,
        measures,
        aggregate=aggregate,
        guarantee=Guarantee.absolute(eps_abs),
        config=config,
    )


def test_fig14a_count_query_time_by_degree(tweet_data, tweet_queries):
    """COUNT response time vs eps_abs for PolyFit-1/2/3 (TWEET)."""
    keys, _ = tweet_data
    series = {f"PolyFit-{deg}": [] for deg in DEGREES_COUNT}
    segment_counts = {f"PolyFit-{deg}": [] for deg in DEGREES_COUNT}
    for eps in ABS_THRESHOLDS:
        for degree in DEGREES_COUNT:
            index = _build(keys, None, Aggregate.COUNT, eps, degree)
            timing = time_per_query_ns(
                lambda q, ix=index: ix.estimate(q), tweet_queries, repeats=1,
                method=f"PolyFit-{degree}",
            )
            series[f"PolyFit-{degree}"].append(round(timing.per_query_ns))
            segment_counts[f"PolyFit-{degree}"].append(index.num_segments)

    print()
    print(format_series("eps_abs", ABS_THRESHOLDS, series,
                        title="Figure 14(a): COUNT query time (ns) vs eps_abs, by degree"))
    print(format_series("eps_abs", ABS_THRESHOLDS, segment_counts,
                        title="Figure 14(a) companion: segment counts"))

    # Paper shape: degree 2 yields no more segments than degree 1 everywhere.
    for d1, d2 in zip(segment_counts["PolyFit-1"], segment_counts["PolyFit-2"]):
        assert d2 <= d1


def test_fig14b_max_query_time_by_degree(hki_data, hki_queries):
    """MAX response time vs eps_abs for PolyFit-1/2 (HKI)."""
    keys, measures = hki_data
    series = {f"PolyFit-{deg}": [] for deg in DEGREES_MAX}
    segment_counts = {f"PolyFit-{deg}": [] for deg in DEGREES_MAX}
    for eps in ABS_THRESHOLDS:
        for degree in DEGREES_MAX:
            index = _build(keys, measures, Aggregate.MAX, eps, degree)
            timing = time_per_query_ns(
                lambda q, ix=index: ix.estimate(q), hki_queries[:300], repeats=1,
                method=f"PolyFit-{degree}",
            )
            series[f"PolyFit-{degree}"].append(round(timing.per_query_ns))
            segment_counts[f"PolyFit-{degree}"].append(index.num_segments)

    print()
    print(format_series("eps_abs", ABS_THRESHOLDS, series,
                        title="Figure 14(b): MAX query time (ns) vs eps_abs, by degree"))
    print(format_series("eps_abs", ABS_THRESHOLDS, segment_counts,
                        title="Figure 14(b) companion: segment counts"))
    for d1, d2 in zip(segment_counts["PolyFit-1"], segment_counts["PolyFit-2"]):
        assert d2 <= d1


def test_fig14c_construction_time_by_degree(tweet_data):
    """Construction time vs eps_abs for PolyFit-1/2/3 (TWEET subset)."""
    keys, _ = tweet_data
    subset = keys[:: max(1, keys.size // 20_000)]
    series = {f"PolyFit-{deg}": [] for deg in DEGREES_COUNT}
    for eps in ABS_THRESHOLDS:
        for degree in DEGREES_COUNT:
            start = time.perf_counter()
            _build(subset, None, Aggregate.COUNT, eps, degree)
            series[f"PolyFit-{degree}"].append(round(time.perf_counter() - start, 2))
    print()
    print(format_series("eps_abs", ABS_THRESHOLDS, series,
                        title="Figure 14(c): construction time (s) vs eps_abs, by degree"))
    # Shape check only: all builds completed.
    assert all(all(v >= 0 for v in values) for values in series.values())


@pytest.mark.benchmark(group="fig14-query")
@pytest.mark.parametrize("degree", DEGREES_COUNT)
def test_fig14_bench_count_query(benchmark, degree, tweet_data, tweet_queries):
    """pytest-benchmark target: COUNT query latency per degree at eps_abs=100."""
    keys, _ = tweet_data
    index = _build(keys, None, Aggregate.COUNT, 100, degree)
    probe = tweet_queries[:100]

    def run():
        for query in probe:
            index.estimate(query)

    benchmark(run)
