"""Table VI (appendix): RMI model selection — linear regression vs tiny NNs.

The paper's appendix fits a single model to the TWEET CFsum curve and
compares prediction time and measured relative error for linear regression
and several small neural-network architectures (1:4:1 ... 1:16:16:1).  The
conclusion — NN models are far slower per prediction without a decisive
accuracy win, so RMI is configured with linear models — is what this driver
reproduces with the numpy :class:`TinyMLP`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Aggregate, generate_range_queries
from repro.baselines import LinearModel, TinyMLP
from repro.bench import format_table, time_per_query_ns
from repro.functions import build_cumulative_function

ARCHITECTURES = [(4,), (8,), (16,), (4, 4), (8, 8)]


def _fit_models(keys):
    cf = build_cumulative_function(keys, aggregate=Aggregate.COUNT)
    models = {"LR": LinearModel().fit(cf.keys, cf.values)}
    for hidden in ARCHITECTURES:
        mlp = TinyMLP(hidden_layers=hidden, epochs=250, learning_rate=0.05, seed=61)
        models[f"NN {mlp.architecture}"] = mlp.fit(cf.keys, cf.values)
    return cf, models


def test_table06_model_selection(tweet_data):
    """Prediction time and measured relative error for LR vs NN models."""
    keys, _ = tweet_data
    subset = keys[:: max(1, keys.size // 20_000)]
    cf, models = _fit_models(subset)
    queries = generate_range_queries(subset, 300, Aggregate.COUNT, seed=62)

    rows = []
    timings = {}
    errors = {}
    for name, model in models.items():
        def run(query, model=model):
            low = model.predict(query.low)
            high = model.predict(query.high)
            return float(high - low)

        timing = time_per_query_ns(run, queries, repeats=1, method=name)
        relative_errors = []
        for query in queries:
            exact = cf.range_sum(query.low, query.high)
            if exact > 0:
                relative_errors.append(abs(run(query) - exact) / exact)
        timings[name] = timing.per_query_ns
        errors[name] = float(np.mean(relative_errors)) if relative_errors else 0.0
        rows.append([name, f"{timings[name]:,.0f}", f"{errors[name] * 100:.1f}"])

    print()
    print(format_table(
        ["model", "prediction time (ns)", "measured relative error (%)"],
        rows,
        title="Table VI: single-model fits of CFsum on TWEET",
    ))

    # Paper conclusion: every NN architecture is slower per prediction than LR.
    for name, per_query in timings.items():
        if name != "LR":
            assert per_query > timings["LR"], f"{name} unexpectedly faster than LR"

    # Deeper/wider NNs cost more time than the smallest one.
    assert timings["NN 1:16:1"] >= timings["NN 1:4:1"] * 0.8


@pytest.mark.benchmark(group="table06")
def test_table06_bench_lr_prediction(benchmark, tweet_data):
    """pytest-benchmark target: LR single-model range estimate."""
    keys, _ = tweet_data
    cf = build_cumulative_function(keys, aggregate=Aggregate.COUNT)
    model = LinearModel().fit(cf.keys, cf.values)
    queries = generate_range_queries(keys, 200, Aggregate.COUNT, seed=63)

    def run():
        for query in queries:
            model.predict(query.high)
            model.predict(query.low)

    benchmark(run)


@pytest.mark.benchmark(group="table06")
def test_table06_bench_mlp_prediction(benchmark, tweet_data):
    """pytest-benchmark target: NN 1:8:1 single-model range estimate."""
    keys, _ = tweet_data
    subset = keys[:: max(1, keys.size // 20_000)]
    cf = build_cumulative_function(subset, aggregate=Aggregate.COUNT)
    model = TinyMLP(hidden_layers=(8,), epochs=150, seed=64).fit(cf.keys, cf.values)
    queries = generate_range_queries(subset, 200, Aggregate.COUNT, seed=65)

    def run():
        for query in queries:
            model.predict(query.high)
            model.predict(query.low)

    benchmark(run)
