"""Scalar vs batch throughput across methods and workload sizes.

The batch query subsystem answers a whole workload through flat-array
evaluation (one ``searchsorted`` over all bounds, gathered coefficient rows,
one vectorized Horner pass) instead of a per-query Python loop.  This driver
measures queries/sec of both paths for PolyFit and the baselines, checks that
the two paths agree to ``np.allclose``, and emits a structured
``BENCH_batch_throughput.json`` artifact at the repository root.

Methods whose structure has no flat layout (B+tree over a sample, S2
sequential sampling) answer batches with a per-query loop; they are included
so the comparison stays apples-to-apples, with their scalar pass measured on
a capped subset to keep the driver fast.

Run directly (``python benchmarks/bench_batch_throughput.py``) or through
pytest (``pytest benchmarks/bench_batch_throughput.py -s``).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro import (
    Aggregate,
    Guarantee,
    PolyFit2DIndex,
    PolyFitIndex,
    generate_range_queries,
    generate_rectangle_queries,
)
from repro.baselines import (
    EquiWidthHistogram,
    FITingTree,
    KeyCumulativeArray,
    RecursiveModelIndex,
    SampledBTree,
)
from repro.bench import format_table, time_batch_per_query_ns, time_per_query_ns
from repro.kernels import NUMBA_AVAILABLE, runtime_info
from repro.queries import queries_to_bounds

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_batch_throughput.json"
WORKLOAD_SIZES = [10_000, 100_000]
#: Scalar passes of loop-batch (or per-query-descent) methods are measured on
#: at most this many queries (their per-query cost is workload-size
#: independent).
SCALAR_CAPS = {"S-tree": 2_000, "PolyFit-2D-COUNT": 4_000}
#: The 2-D extreme scalar oracle intersects every leaf per query; cap it the
#: same way.
EXTREME_SCALAR_CAP = 2_000


def _measure(
    name: str,
    scalar_fn,
    batch_fn,
    queries,
    bounds: tuple[np.ndarray, ...],
) -> dict:
    """Time one method's scalar loop and batch call on one workload."""
    cap = SCALAR_CAPS.get(name, len(queries))
    scalar_queries = queries[:cap]
    scalar = time_per_query_ns(
        scalar_fn, scalar_queries, repeats=1, method=name, warmup=False
    )
    batch = time_batch_per_query_ns(
        lambda: batch_fn(*bounds), len(queries), repeats=2, method=name
    )
    scalar_values = np.array([scalar_fn(query) for query in scalar_queries], dtype=np.float64)
    batch_values = np.asarray(batch_fn(*bounds), dtype=np.float64)
    allclose = bool(np.allclose(scalar_values, batch_values[:cap], equal_nan=True))
    scalar_qps = 1e9 / scalar.per_query_ns
    batch_qps = 1e9 / batch.per_query_ns
    return {
        "scalar_qps": round(scalar_qps),
        "batch_qps": round(batch_qps),
        "speedup": round(batch_qps / scalar_qps, 2),
        "allclose": allclose,
        "scalar_measured_on": cap,
    }


def run_benchmark(keys: np.ndarray, workload_sizes=WORKLOAD_SIZES) -> dict:
    """Measure every method on every workload size; return the artifact dict."""
    polyfit = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, guarantee=Guarantee.absolute(100.0))
    kca = KeyCumulativeArray.build(keys, aggregate=Aggregate.COUNT)
    fiting = FITingTree.build(keys, aggregate=Aggregate.COUNT, error_budget=50.0)
    rmi = RecursiveModelIndex.build(keys, stage_sizes=(1, 10, 100))
    histogram = EquiWidthHistogram(keys, num_buckets=256)
    stree = SampledBTree(keys, sample_fraction=0.01)

    methods = {
        "PolyFit-1D-COUNT": (
            lambda q: polyfit.query(q).value,
            lambda lo, hi: polyfit.query_batch(lo, hi).values,
        ),
        "Exact-KCA": (
            lambda q: kca.range_aggregate(q.low, q.high),
            kca.range_aggregate_batch,
        ),
        "FITing-Tree": (
            lambda q: fiting.query(q).value,
            lambda lo, hi: fiting.query_batch(lo, hi).values,
        ),
        "RMI": (
            lambda q: rmi.query(q).value,
            lambda lo, hi: rmi.query_batch(lo, hi).values,
        ),
        "Histogram": (
            lambda q: histogram.range_estimate(q.low, q.high),
            histogram.range_estimate_batch,
        ),
        "S-tree": (
            lambda q: stree.range_estimate(q.low, q.high),
            lambda lo, hi: stree.range_estimate_batch(lo, hi),
        ),
    }

    results: dict = {
        "description": "scalar vs batch queries/sec (COUNT, single key)",
        "dataset_size": int(keys.size),
        "workload_sizes": list(workload_sizes),
        "methods": {name: {} for name in methods},
    }
    for num_queries in workload_sizes:
        queries = generate_range_queries(keys, num_queries, Aggregate.COUNT, seed=271)
        bounds = queries_to_bounds(queries)
        for name, (scalar_fn, batch_fn) in methods.items():
            results["methods"][name][str(num_queries)] = _measure(
                name, scalar_fn, batch_fn, queries, bounds
            )
    return results


def run_benchmark_2d(
    xs: np.ndarray, ys: np.ndarray, workload_sizes=WORKLOAD_SIZES
) -> dict:
    """Two-key section: rectangle COUNT through the linearized leaf directory.

    The scalar loop descends the pointer quadtree four times per query; the
    batch path is the flat directory (Morton locate + gathered nested-Horner
    pass), so the speedup column is exactly the leaf-location loop the
    linear quadtree eliminated.
    """
    index = PolyFit2DIndex.build(
        xs, ys, guarantee=Guarantee.absolute(1000.0), grid_resolution=128
    )
    methods = {
        "PolyFit-2D-COUNT": (
            lambda q: index.query(q).value,
            lambda *bounds: index.query_batch(*bounds).values,
        ),
    }
    results: dict = {
        "description": "scalar vs batch queries/sec (COUNT, two keys)",
        "dataset_size": int(xs.size),
        "num_leaves": int(index.num_leaves),
        "directory_depth": int(index.directory.depth),
        "index_bytes": int(index.size_in_bytes()),
        "workload_sizes": list(workload_sizes),
        "methods": {name: {} for name in methods},
    }
    for num_queries in workload_sizes:
        queries = generate_rectangle_queries(xs, ys, num_queries, seed=271)
        bounds = queries_to_bounds(queries)
        for name, (scalar_fn, batch_fn) in methods.items():
            results["methods"][name][str(num_queries)] = _measure(
                name, scalar_fn, batch_fn, queries, bounds
            )
    return results


def run_benchmark_2d_extreme(
    xs: np.ndarray, ys: np.ndarray, workload_sizes=WORKLOAD_SIZES
) -> dict:
    """Rectangle MAX: pinned scalar oracle vs the vectorized extreme tree.

    The scalar oracle intersects every leaf per query; the vectorized path
    answers the whole batch through the dyadic x-rank decomposition in
    O(log^2 n) NumPy passes.  MAX over a point subset is the same float
    whatever the evaluation order, so the paths must agree *exactly*
    (``array_equal`` with ``equal_nan`` — no tolerance).  When numba is
    importable the compiled x-window scan kernel is measured as a third
    column under the same exact-equality gate.
    """
    rng = np.random.default_rng(271)
    measures = rng.uniform(0.0, 100.0, xs.size)
    index = PolyFit2DIndex.build(
        xs, ys, guarantee=Guarantee.absolute(1000.0), grid_resolution=128
    )
    directory = index.directory
    directory.attach_extremes(xs, ys, measures, Aggregate.MAX)
    results: dict = {
        "description": "scalar vs vectorized rectangle MAX (two keys, exact)",
        "dataset_size": int(xs.size),
        "workloads": {},
    }
    for num_queries in workload_sizes:
        queries = generate_rectangle_queries(xs, ys, num_queries, seed=137)
        bounds = queries_to_bounds(queries)
        cap = min(EXTREME_SCALAR_CAP, num_queries)
        capped = tuple(bound[:cap] for bound in bounds)
        # Both sides are best-of-repeats with a warmup pass: the scalar
        # oracle's cold-cache first pass otherwise swings the measured ratio
        # by 2x run to run, which is noise, not speedup.
        scalar = time_batch_per_query_ns(
            lambda: directory.range_extreme_batch(*capped, force_scalar=True),
            cap, repeats=2, method="extreme-scalar",
        )
        vector = time_batch_per_query_ns(
            lambda: directory.range_extreme_batch(*bounds),
            num_queries, repeats=3, method="extreme-vectorized",
        )
        scalar_values = directory.range_extreme_batch(*capped, force_scalar=True)
        vector_values = directory.range_extreme_batch(*bounds)
        scalar_qps = 1e9 / scalar.per_query_ns
        vector_qps = 1e9 / vector.per_query_ns
        entry = {
            "scalar_qps": round(scalar_qps),
            "vectorized_qps": round(vector_qps),
            "speedup": round(vector_qps / scalar_qps, 2),
            "identical": bool(
                np.array_equal(scalar_values, vector_values[:cap], equal_nan=True)
            ),
            "scalar_measured_on": cap,
        }
        if NUMBA_AVAILABLE:
            compiled = time_batch_per_query_ns(
                lambda: directory.range_extreme_batch(*bounds, kernel="numba"),
                num_queries, repeats=2, method="extreme-numba",
            )
            compiled_values = directory.range_extreme_batch(*bounds, kernel="numba")
            compiled_qps = 1e9 / compiled.per_query_ns
            entry["numba_qps"] = round(compiled_qps)
            entry["numba_speedup"] = round(compiled_qps / scalar_qps, 2)
            entry["numba_identical"] = bool(
                np.array_equal(vector_values, compiled_values, equal_nan=True)
            )
        results["workloads"][str(num_queries)] = entry
    return results


def run_benchmark_fused(keys: np.ndarray, workload_sizes=WORKLOAD_SIZES) -> dict:
    """Fused-kernel section: the 1-D NumPy multi-pass path vs the compiled pass.

    Without numba the section still records the NumPy-path throughput (and
    the runtime flags say why the numba columns are absent), so artifacts
    from numba-less environments remain comparable.
    """
    index = PolyFitIndex.build(
        keys, aggregate=Aggregate.COUNT, guarantee=Guarantee.absolute(100.0)
    )
    guarantee = Guarantee.relative(0.05)
    results: dict = {
        "description": "1-D query_batch: numpy multi-pass vs fused numba kernel",
        "dataset_size": int(keys.size),
        "workloads": {},
    }
    for num_queries in workload_sizes:
        queries = generate_range_queries(keys, num_queries, Aggregate.COUNT, seed=271)
        bounds = queries_to_bounds(queries)
        index.set_kernel("numpy")
        numpy_timing = time_batch_per_query_ns(
            lambda: index.query_batch(*bounds, guarantee),
            num_queries, repeats=2, method="fused-numpy",
        )
        numpy_values = index.query_batch(*bounds, guarantee).values
        numpy_qps = 1e9 / numpy_timing.per_query_ns
        entry = {"numpy_qps": round(numpy_qps)}
        if NUMBA_AVAILABLE:
            index.set_kernel("numba")
            numba_timing = time_batch_per_query_ns(
                lambda: index.query_batch(*bounds, guarantee),
                num_queries, repeats=2, method="fused-numba",
            )
            numba_values = index.query_batch(*bounds, guarantee).values
            numba_qps = 1e9 / numba_timing.per_query_ns
            entry["numba_qps"] = round(numba_qps)
            entry["speedup"] = round(numba_qps / numpy_qps, 2)
            entry["identical"] = bool(
                np.array_equal(numpy_values, numba_values, equal_nan=True)
            )
            index.set_kernel("auto")
        results["workloads"][str(num_queries)] = entry
    return results


def check_gates(extreme: dict, fused: dict) -> list[str]:
    """Acceptance gates over the kernel sections; returns failure messages.

    * vectorized 2-D extremes: >= 20x over the scalar oracle at the largest
      workload, exactly equal on the oracle subsample;
    * every numba column (enforced only where numba is importable): exactly
      equal to its NumPy counterpart.
    """
    failures = []
    largest = str(WORKLOAD_SIZES[-1])
    entry = extreme["workloads"][largest]
    if not entry["identical"]:
        failures.append("2-D extreme vectorized path diverges from the scalar oracle")
    if entry["speedup"] < 20.0:
        failures.append(
            f"2-D extreme speedup {entry['speedup']}x below the 20x gate"
        )
    for section in (extreme, fused):
        for size, values in section["workloads"].items():
            if "numba_identical" in values and not values["numba_identical"]:
                failures.append(f"numba extreme kernel diverges at {size} queries")
            if "identical" in values and section is fused and not values["identical"]:
                failures.append(f"fused numba kernel diverges at {size} queries")
    return failures


def _print_results(results: dict, label: str = "Batch throughput") -> None:
    for num_queries in results["workload_sizes"]:
        rows = []
        for name, sizes in results["methods"].items():
            entry = sizes[str(num_queries)]
            rows.append(
                [
                    name,
                    entry["scalar_qps"],
                    entry["batch_qps"],
                    f"{entry['speedup']}x",
                    "yes" if entry["allclose"] else "NO",
                ]
            )
        print()
        print(
            format_table(
                ["method", "scalar q/s", "batch q/s", "speedup", "allclose"],
                rows,
                title=f"{label}, {num_queries} queries",
            )
        )


def _print_extreme_results(extreme: dict) -> None:
    rows = []
    for size, entry in extreme["workloads"].items():
        rows.append(
            [
                size,
                entry["scalar_qps"],
                entry["vectorized_qps"],
                f"{entry['speedup']}x",
                entry.get("numba_qps", "-"),
                "yes" if entry["identical"] else "NO",
            ]
        )
    print()
    print(
        format_table(
            ["queries", "scalar q/s", "vectorized q/s", "speedup", "numba q/s", "identical"],
            rows,
            title="Rectangle MAX: scalar oracle vs vectorized extreme tree",
        )
    )


def _print_fused_results(fused: dict) -> None:
    rows = []
    for size, entry in fused["workloads"].items():
        rows.append(
            [
                size,
                entry["numpy_qps"],
                entry.get("numba_qps", "-"),
                f"{entry['speedup']}x" if "speedup" in entry else "-",
                "yes" if entry.get("identical") else ("NO" if "identical" in entry else "-"),
            ]
        )
    print()
    print(
        format_table(
            ["queries", "numpy q/s", "numba q/s", "speedup", "identical"],
            rows,
            title="Fused 1-D kernel: numpy multi-pass vs compiled pass",
        )
    )


def _write_artifact(
    one_key: dict, two_key: dict, two_key_extreme: dict, fused: dict
) -> None:
    ARTIFACT_PATH.write_text(
        json.dumps(
            {
                **one_key,
                "two_key": two_key,
                "two_key_extreme": two_key_extreme,
                "fused_kernel": fused,
                "kernel_runtime": runtime_info(),
            },
            indent=2,
        )
        + "\n"
    )
    print(f"\nartifact written to {ARTIFACT_PATH}")


def test_batch_throughput(tweet_data, osm_data):
    """Batch is >= 10x scalar for PolyFit COUNT (1-D and 2-D) on 100k queries."""
    keys, _ = tweet_data
    results = run_benchmark(keys)
    _print_results(results)
    xs, ys = osm_data
    results_2d = run_benchmark_2d(xs, ys)
    _print_results(results_2d, label="Batch throughput (two keys)")
    results_extreme = run_benchmark_2d_extreme(xs, ys)
    _print_extreme_results(results_extreme)
    results_fused = run_benchmark_fused(keys)
    _print_fused_results(results_fused)
    _write_artifact(results, results_2d, results_extreme, results_fused)

    for section in (results, results_2d):
        for name, sizes in section["methods"].items():
            for entry in sizes.values():
                assert entry["allclose"], f"{name}: batch answers diverge from scalar"
    polyfit_100k = results["methods"]["PolyFit-1D-COUNT"][str(WORKLOAD_SIZES[-1])]
    assert polyfit_100k["speedup"] >= 10.0, (
        f"expected >= 10x batch speedup for PolyFit, got {polyfit_100k['speedup']}x"
    )
    polyfit2d_100k = results_2d["methods"]["PolyFit-2D-COUNT"][str(WORKLOAD_SIZES[-1])]
    assert polyfit2d_100k["speedup"] >= 10.0, (
        f"expected >= 10x 2-D batch speedup over the per-corner descent, "
        f"got {polyfit2d_100k['speedup']}x"
    )
    failures = check_gates(results_extreme, results_fused)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    import sys

    from repro.datasets import osm_points, tweet_latitudes

    dataset_keys, _ = tweet_latitudes(60_000, seed=101)
    bench_results = run_benchmark(dataset_keys)
    _print_results(bench_results)
    points_x, points_y = osm_points(80_000, seed=103)
    bench_results_2d = run_benchmark_2d(points_x, points_y)
    _print_results(bench_results_2d, label="Batch throughput (two keys)")
    bench_results_extreme = run_benchmark_2d_extreme(points_x, points_y)
    _print_extreme_results(bench_results_extreme)
    bench_results_fused = run_benchmark_fused(dataset_keys)
    _print_fused_results(bench_results_fused)
    _write_artifact(
        bench_results, bench_results_2d, bench_results_extreme, bench_results_fused
    )
    gate_failures = check_gates(bench_results_extreme, bench_results_fused)
    if gate_failures:
        for failure in gate_failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        sys.exit(1)
    print("all kernel gates passed")
