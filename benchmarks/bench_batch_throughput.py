"""Scalar vs batch throughput across methods and workload sizes.

The batch query subsystem answers a whole workload through flat-array
evaluation (one ``searchsorted`` over all bounds, gathered coefficient rows,
one vectorized Horner pass) instead of a per-query Python loop.  This driver
measures queries/sec of both paths for PolyFit and the baselines, checks that
the two paths agree to ``np.allclose``, and emits a structured
``BENCH_batch_throughput.json`` artifact at the repository root.

Methods whose structure has no flat layout (B+tree over a sample, S2
sequential sampling) answer batches with a per-query loop; they are included
so the comparison stays apples-to-apples, with their scalar pass measured on
a capped subset to keep the driver fast.

Run directly (``python benchmarks/bench_batch_throughput.py``) or through
pytest (``pytest benchmarks/bench_batch_throughput.py -s``).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro import Aggregate, Guarantee, PolyFitIndex, generate_range_queries
from repro.baselines import (
    EquiWidthHistogram,
    FITingTree,
    KeyCumulativeArray,
    RecursiveModelIndex,
    SampledBTree,
)
from repro.bench import format_table, time_batch_per_query_ns, time_per_query_ns

ARTIFACT_PATH = Path(__file__).resolve().parents[1] / "BENCH_batch_throughput.json"
WORKLOAD_SIZES = [10_000, 100_000]
#: Scalar passes of loop-batch methods are measured on at most this many
#: queries (their per-query cost is workload-size independent).
SCALAR_CAPS = {"S-tree": 2_000}


def _measure(
    name: str,
    scalar_fn,
    batch_fn,
    queries,
    lows: np.ndarray,
    highs: np.ndarray,
) -> dict:
    """Time one method's scalar loop and batch call on one workload."""
    cap = SCALAR_CAPS.get(name, len(queries))
    scalar_queries = queries[:cap]
    scalar = time_per_query_ns(
        scalar_fn, scalar_queries, repeats=1, method=name, warmup=False
    )
    batch = time_batch_per_query_ns(
        lambda: batch_fn(lows, highs), len(queries), repeats=2, method=name
    )
    scalar_values = np.array([scalar_fn(query) for query in scalar_queries], dtype=np.float64)
    batch_values = np.asarray(batch_fn(lows, highs), dtype=np.float64)
    allclose = bool(np.allclose(scalar_values, batch_values[:cap], equal_nan=True))
    scalar_qps = 1e9 / scalar.per_query_ns
    batch_qps = 1e9 / batch.per_query_ns
    return {
        "scalar_qps": round(scalar_qps),
        "batch_qps": round(batch_qps),
        "speedup": round(batch_qps / scalar_qps, 2),
        "allclose": allclose,
        "scalar_measured_on": cap,
    }


def run_benchmark(keys: np.ndarray, workload_sizes=WORKLOAD_SIZES) -> dict:
    """Measure every method on every workload size; return the artifact dict."""
    polyfit = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, guarantee=Guarantee.absolute(100.0))
    kca = KeyCumulativeArray.build(keys, aggregate=Aggregate.COUNT)
    fiting = FITingTree.build(keys, aggregate=Aggregate.COUNT, error_budget=50.0)
    rmi = RecursiveModelIndex.build(keys, stage_sizes=(1, 10, 100))
    histogram = EquiWidthHistogram(keys, num_buckets=256)
    stree = SampledBTree(keys, sample_fraction=0.01)

    methods = {
        "PolyFit-1D-COUNT": (
            lambda q: polyfit.query(q).value,
            lambda lo, hi: polyfit.query_batch(lo, hi).values,
        ),
        "Exact-KCA": (
            lambda q: kca.range_aggregate(q.low, q.high),
            kca.range_aggregate_batch,
        ),
        "FITing-Tree": (
            lambda q: fiting.query(q).value,
            lambda lo, hi: fiting.query_batch(lo, hi).values,
        ),
        "RMI": (
            lambda q: rmi.query(q).value,
            lambda lo, hi: rmi.query_batch(lo, hi).values,
        ),
        "Histogram": (
            lambda q: histogram.range_estimate(q.low, q.high),
            histogram.range_estimate_batch,
        ),
        "S-tree": (
            lambda q: stree.range_estimate(q.low, q.high),
            lambda lo, hi: stree.range_estimate_batch(lo, hi),
        ),
    }

    results: dict = {
        "description": "scalar vs batch queries/sec (COUNT, single key)",
        "dataset_size": int(keys.size),
        "workload_sizes": list(workload_sizes),
        "methods": {name: {} for name in methods},
    }
    for num_queries in workload_sizes:
        queries = generate_range_queries(keys, num_queries, Aggregate.COUNT, seed=271)
        lows = np.fromiter((q.low for q in queries), dtype=np.float64, count=num_queries)
        highs = np.fromiter((q.high for q in queries), dtype=np.float64, count=num_queries)
        for name, (scalar_fn, batch_fn) in methods.items():
            results["methods"][name][str(num_queries)] = _measure(
                name, scalar_fn, batch_fn, queries, lows, highs
            )
    return results


def _print_results(results: dict) -> None:
    for num_queries in results["workload_sizes"]:
        rows = []
        for name, sizes in results["methods"].items():
            entry = sizes[str(num_queries)]
            rows.append(
                [
                    name,
                    entry["scalar_qps"],
                    entry["batch_qps"],
                    f"{entry['speedup']}x",
                    "yes" if entry["allclose"] else "NO",
                ]
            )
        print()
        print(
            format_table(
                ["method", "scalar q/s", "batch q/s", "speedup", "allclose"],
                rows,
                title=f"Batch throughput, {num_queries} queries",
            )
        )


def test_batch_throughput(tweet_data):
    """Batch path is >= 10x scalar for PolyFit 1D COUNT on 100k queries."""
    keys, _ = tweet_data
    results = run_benchmark(keys)
    _print_results(results)
    ARTIFACT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nartifact written to {ARTIFACT_PATH}")

    for name, sizes in results["methods"].items():
        for entry in sizes.values():
            assert entry["allclose"], f"{name}: batch answers diverge from scalar"
    polyfit_100k = results["methods"]["PolyFit-1D-COUNT"][str(WORKLOAD_SIZES[-1])]
    assert polyfit_100k["speedup"] >= 10.0, (
        f"expected >= 10x batch speedup for PolyFit, got {polyfit_100k['speedup']}x"
    )


if __name__ == "__main__":
    from repro.datasets import tweet_latitudes

    dataset_keys, _ = tweet_latitudes(60_000, seed=101)
    bench_results = run_benchmark(dataset_keys)
    _print_results(bench_results)
    ARTIFACT_PATH.write_text(json.dumps(bench_results, indent=2) + "\n")
    print(f"\nartifact written to {ARTIFACT_PATH}")
