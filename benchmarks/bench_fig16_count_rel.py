"""Figure 16: COUNT response time vs relative error threshold.

(a) Single key (TWEET): RMI vs FITing-tree vs PolyFit-2,
    eps_rel in {0.005, 0.01, 0.05, 0.1, 0.2}; all methods built with the
    paper's default delta = 50 and falling back to the exact method when the
    Lemma 3 certificate fails.
(b) Two keys (OSM): aR-tree vs PolyFit-2 (delta = 250).

Paper claims: PolyFit is the fastest at every threshold; the two-key gap is
at least an order of magnitude.
"""

from __future__ import annotations

import pytest

from repro import Aggregate, Guarantee, PolyFit2DIndex, PolyFitIndex
from repro.baselines import AggregateRTree2D, FITingTree, RecursiveModelIndex
from repro.bench import format_series, time_per_query_ns

REL_THRESHOLDS = [0.005, 0.01, 0.05, 0.1, 0.2]
DELTA_1KEY = 50.0
DELTA_2KEY = 250.0


def test_fig16a_single_key_count_relative(tweet_data, tweet_queries):
    """Single-key COUNT latency vs eps_rel (Problem 2)."""
    keys, _ = tweet_data
    rmi = RecursiveModelIndex.build(keys, stage_sizes=(1, 10, 100))
    fiting = FITingTree.build(keys, aggregate=Aggregate.COUNT, error_budget=DELTA_1KEY)
    polyfit = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=DELTA_1KEY)

    series = {"RMI": [], "FITing-Tree": [], "PolyFit-2": []}
    fallback_rates = []
    for eps in REL_THRESHOLDS:
        guarantee = Guarantee.relative(eps)
        series["RMI"].append(round(time_per_query_ns(
            lambda q: rmi.query(q, guarantee), tweet_queries, repeats=1, method="RMI"
        ).per_query_ns))
        series["FITing-Tree"].append(round(time_per_query_ns(
            lambda q: fiting.query(q, guarantee), tweet_queries, repeats=1, method="FIT"
        ).per_query_ns))
        series["PolyFit-2"].append(round(time_per_query_ns(
            lambda q: polyfit.query(q, guarantee), tweet_queries, repeats=1, method="PolyFit"
        ).per_query_ns))
        fallbacks = sum(
            polyfit.query(query, guarantee).exact_fallback for query in tweet_queries[:200]
        )
        fallback_rates.append(fallbacks / 200)

    print()
    print(format_series("eps_rel", REL_THRESHOLDS, series,
                        title="Figure 16(a): COUNT (single key) time (ns) vs eps_rel"))
    print(format_series("eps_rel", REL_THRESHOLDS, {"PolyFit fallback rate": fallback_rates},
                        title="Figure 16(a) companion: exact-fallback rate"))

    # Looser thresholds certify more queries, so the fallback rate must not grow.
    for tighter, looser in zip(fallback_rates, fallback_rates[1:]):
        assert looser <= tighter + 1e-9
    for index in range(len(REL_THRESHOLDS)):
        assert series["PolyFit-2"][index] <= max(series["RMI"][index],
                                                 series["FITing-Tree"][index]) * 1.25


def test_fig16b_two_key_count_relative(osm_data, osm_queries):
    """Two-key COUNT latency vs eps_rel for aR-tree / PolyFit-2."""
    xs, ys = osm_data
    artree = AggregateRTree2D(xs, ys)
    polyfit = PolyFit2DIndex.build(xs, ys, delta=DELTA_2KEY, grid_resolution=96)
    workload = osm_queries[:300]

    series = {"aR-tree": [], "PolyFit-2": []}
    for eps in REL_THRESHOLDS:
        guarantee = Guarantee.relative(eps)
        series["aR-tree"].append(round(time_per_query_ns(
            lambda q: artree.rectangle_aggregate(q.x_low, q.x_high, q.y_low, q.y_high),
            workload, repeats=1, method="aR-tree"
        ).per_query_ns))
        series["PolyFit-2"].append(round(time_per_query_ns(
            lambda q: polyfit.query(q, guarantee), workload, repeats=1, method="PolyFit"
        ).per_query_ns))

    print()
    print(format_series("eps_rel", REL_THRESHOLDS, series,
                        title="Figure 16(b): COUNT (two keys) time (ns) vs eps_rel"))
    for index in range(len(REL_THRESHOLDS)):
        assert series["PolyFit-2"][index] <= series["aR-tree"][index]


@pytest.mark.benchmark(group="fig16")
@pytest.mark.parametrize("eps_rel", [0.01, 0.2])
def test_fig16_bench_polyfit_relative(benchmark, eps_rel, tweet_data, tweet_queries):
    """pytest-benchmark target: PolyFit single-key COUNT under Problem 2."""
    keys, _ = tweet_data
    index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=DELTA_1KEY)
    guarantee = Guarantee.relative(eps_rel)
    probe = tweet_queries[:200]

    def run():
        for query in probe:
            index.query(query, guarantee)

    benchmark(run)
