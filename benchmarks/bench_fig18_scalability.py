"""Figure 18: scalability with the dataset size.

The paper runs the single-key COUNT query (latitude attribute of OSM) under
the relative-error guarantee eps_rel = 0.01 on 1M / 10M / 30M / 100M records
and finds that the response time of RMI, FITing-tree and PolyFit is
essentially insensitive to the dataset size (the learned structures' depth
does not grow with n for a fixed error budget).

Here the sweep uses proportionally scaled synthetic sizes; the claim checked
is the *flatness* of each curve (largest size at most ~2x slower than the
smallest) and that PolyFit stays competitive throughout.
"""

from __future__ import annotations

import pytest

from repro import Aggregate, Guarantee, PolyFitIndex, generate_range_queries
from repro.baselines import FITingTree, RecursiveModelIndex
from repro.bench import format_series, time_per_query_ns
from repro.datasets import osm_points

SIZES = [20_000, 60_000, 120_000, 200_000]
EPS_REL = 0.01
DELTA = 50.0


def _latitude_keys(n: int):
    _, ys = osm_points(n, seed=181)
    import numpy as np

    keys = np.sort(ys)
    return keys + np.arange(keys.size) * 1e-9


def test_fig18_scalability_in_dataset_size():
    """Response time vs n for RMI / FITing-tree / PolyFit-2 (COUNT, eps_rel=0.01)."""
    guarantee = Guarantee.relative(EPS_REL)
    series = {"RMI": [], "FITing-Tree": [], "PolyFit-2": []}
    for n in SIZES:
        keys = _latitude_keys(n)
        queries = generate_range_queries(keys, 400, Aggregate.COUNT, seed=182)
        rmi = RecursiveModelIndex.build(keys, stage_sizes=(1, 10, 100))
        fiting = FITingTree.build(keys, aggregate=Aggregate.COUNT, error_budget=DELTA)
        polyfit = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=DELTA)
        series["RMI"].append(round(time_per_query_ns(
            lambda q: rmi.query(q, guarantee), queries, repeats=1, method="RMI"
        ).per_query_ns))
        series["FITing-Tree"].append(round(time_per_query_ns(
            lambda q: fiting.query(q, guarantee), queries, repeats=1, method="FIT"
        ).per_query_ns))
        series["PolyFit-2"].append(round(time_per_query_ns(
            lambda q: polyfit.query(q, guarantee), queries, repeats=1, method="PolyFit"
        ).per_query_ns))

    print()
    print(format_series("records", SIZES, series,
                        title="Figure 18: COUNT (single key) time (ns) vs dataset size, eps_rel=0.01"))

    # Paper claim: all methods are insensitive to the dataset size.  Allow a
    # generous 3x window to absorb Python/cache noise at these small scales.
    for method, timings in series.items():
        assert max(timings) <= 3.0 * min(timings) + 200, f"{method} not flat: {timings}"


@pytest.mark.benchmark(group="fig18")
@pytest.mark.parametrize("n", [SIZES[0], SIZES[-1]])
def test_fig18_bench_polyfit_at_size(benchmark, n):
    """pytest-benchmark target: PolyFit COUNT latency at the two size extremes."""
    keys = _latitude_keys(n)
    queries = generate_range_queries(keys, 200, Aggregate.COUNT, seed=183)
    index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=DELTA)
    guarantee = Guarantee.relative(EPS_REL)

    def run():
        for query in queries:
            index.query(query, guarantee)

    benchmark(run)
