# Developer / CI entry points.
#
#   make tier1        - full test suite (the CI gate)
#   make lint         - ruff check with the repo config (skips gracefully
#                       when ruff is not installed; CI always installs it)
#   make smoke-batch  - fast perf gate: batch/scalar equivalence (1-D and
#                       2-D, including the flat cell-directory property
#                       tests), sharding/codec round-trips, the durability
#                       fault tests (WAL crash-point sweep, degraded fleet
#                       reads, fsck, serve resilience) and the scaled-down
#                       shard-scaling bench (which emits
#                       BENCH_shard_scaling.json); run before merging
#                       changes that touch the query hot path
#   make bench-batch  - full scalar-vs-batch throughput sweep (1-D methods
#                       and the 2-D linearized-directory section), writes
#                       BENCH_batch_throughput.json
#   make bench-shards - full shard-scaling + load-time protocol (1M-query
#                       COUNT workload), writes BENCH_shard_scaling.json
#   make bench-build  - full construction-time protocol (incremental/remez/
#                       early-accept GS vs the LP-per-probe baseline up to
#                       10^6 keys, serial vs parallel quadtree build), writes
#                       BENCH_build_time.json
#   make bench-update - full streaming-ingestion protocol (inserts/s, query
#                       latency vs delta-buffer fill, compaction pause vs a
#                       from-scratch rebuild), writes
#                       BENCH_update_throughput.json
#   make bench-serve  - full serving protocol (request coalescing vs one
#                       engine call per request: idle round-trip, open-loop
#                       latency percentiles by offered QPS, saturation
#                       throughput), writes BENCH_serve_latency.json
#   make bench-fleet  - full fleet-scaling protocol (scatter-gather vs the
#                       monolithic index: bit-identity across aggregates,
#                       throughput vs partition count, straddle/bound
#                       profile, routed inserts), writes
#                       BENCH_fleet_scaling.json
#   make bench-durability - full durability protocol (WAL'd vs plain insert
#                       throughput, recovery time vs log length, degraded
#                       fleet-read overhead), writes BENCH_durability.json
#   make bench-obs    - full observability-overhead protocol (instrumented
#                       vs uninstrumented serve p50 and batch throughput,
#                       trace-sampling cost at 0%/1%/100%, exposition
#                       validity, bit-identity), writes
#                       BENCH_observability.json
#   make fsck-smoke   - the `repro fsck` CLI against a freshly corrupted
#                       fixture: clean artifacts must exit 0, a bit-flipped
#                       codec file must exit 1 with a typed report
#   make metrics-smoke - stand up a live server over a WAL-backed updatable
#                       index, drive traffic through every layer, and
#                       require GET /metrics to be valid Prometheus text
#                       covering serve, cache, shard, WAL and compaction
#   make docs-lint    - README/docs link + anchor checker, every
#                       BENCH_*.json named in the docs must be emitted by a
#                       benchmark (and vice versa), and every metric name
#                       documented in docs/OBSERVABILITY.md must be
#                       registered in the code (and vice versa)

PYTHON ?= python
export PYTHONPATH := src

.PHONY: tier1 lint docs-lint smoke-batch fsck-smoke metrics-smoke bench-batch bench-shards bench-build bench-update bench-serve bench-fleet bench-durability bench-obs

tier1:
	$(PYTHON) -m pytest -x -q

lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check .; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

smoke-batch:
	$(PYTHON) -m pytest -x -q tests/test_batch_equivalence.py tests/test_batch_smoke.py \
		tests/test_directory.py tests/test_sharding.py tests/test_codec.py \
		tests/test_codec_compat.py tests/test_fitting_incremental.py \
		tests/test_stream_updatable.py tests/test_stream_2d.py \
		tests/test_serve_coalescer.py tests/test_serve_http.py \
		tests/test_fleet.py \
		tests/test_wal.py tests/test_degrade.py tests/test_fsck.py \
		tests/test_serve_resilience.py \
		tests/test_obs_metrics.py tests/test_obs_tracing.py tests/test_obs_serve.py \
		benchmarks/bench_shard_scaling.py benchmarks/bench_build_time.py \
		benchmarks/bench_update_throughput.py benchmarks/bench_serve_latency.py \
		benchmarks/bench_fleet_scaling.py benchmarks/bench_durability.py \
		benchmarks/bench_observability.py

fsck-smoke:
	@$(PYTHON) tools/fsck_smoke.py

metrics-smoke:
	@$(PYTHON) tools/metrics_smoke.py

bench-batch:
	$(PYTHON) benchmarks/bench_batch_throughput.py

bench-shards:
	$(PYTHON) benchmarks/bench_shard_scaling.py

bench-build:
	$(PYTHON) benchmarks/bench_build_time.py

bench-update:
	$(PYTHON) benchmarks/bench_update_throughput.py

bench-serve:
	$(PYTHON) benchmarks/bench_serve_latency.py

bench-fleet:
	$(PYTHON) benchmarks/bench_fleet_scaling.py

bench-durability:
	$(PYTHON) benchmarks/bench_durability.py

bench-obs:
	$(PYTHON) benchmarks/bench_observability.py

docs-lint:
	$(PYTHON) tools/check_docs.py
