# Developer / CI entry points.
#
#   make tier1        - full test suite (the CI gate)
#   make smoke-batch  - fast perf gate: batch/scalar equivalence (1-D and
#                       2-D, including the flat cell-directory property
#                       tests) plus throughput sanity checks (~10 s); run
#                       before merging changes that touch the query hot path
#   make bench-batch  - full scalar-vs-batch throughput sweep (1-D methods
#                       and the 2-D linearized-directory section), writes
#                       BENCH_batch_throughput.json

PYTHON ?= python
export PYTHONPATH := src

.PHONY: tier1 smoke-batch bench-batch

tier1:
	$(PYTHON) -m pytest -x -q

smoke-batch:
	$(PYTHON) -m pytest -x -q tests/test_batch_equivalence.py tests/test_batch_smoke.py tests/test_directory.py

bench-batch:
	$(PYTHON) benchmarks/bench_batch_throughput.py
