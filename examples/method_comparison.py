#!/usr/bin/env python
"""Compare PolyFit against every implemented method on one workload.

A miniature version of the paper's Table V: build every method that supports
single-key COUNT queries, run the same 1000-query workload with the same
guarantee, and print per-query latency, measured error, and structure size.

Run with:  python examples/method_comparison.py
"""

from __future__ import annotations


from repro import (
    Aggregate,
    Guarantee,
    PolyFitIndex,
    QueryEngine,
    generate_range_queries,
)
from repro.baselines import (
    BruteForceAggregator,
    EntropyHistogram,
    FITingTree,
    KeyCumulativeArray,
    RecursiveModelIndex,
    SampledBTree,
    SequentialSampler,
)
from repro.bench import format_table, time_per_query_ns
from repro.datasets import tweet_latitudes


def main() -> None:
    keys, _ = tweet_latitudes(n=100_000, seed=17)
    queries = generate_range_queries(keys, 1000, Aggregate.COUNT, seed=18)
    guarantee = Guarantee.absolute(100.0)
    brute = BruteForceAggregator(keys)

    def exact(query):
        return brute.range_aggregate(query.low, query.high, Aggregate.COUNT)

    # ------------------------------------------------------------------ #
    # Build all methods.
    # ------------------------------------------------------------------ #
    polyfit = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, guarantee=guarantee)
    rmi = RecursiveModelIndex.build(keys, stage_sizes=(1, 10, 100))
    fiting = FITingTree.build(keys, aggregate=Aggregate.COUNT, error_budget=50.0)
    kca = KeyCumulativeArray.build(keys, aggregate=Aggregate.COUNT)
    hist = EntropyHistogram(keys, num_buckets=512)
    stree = SampledBTree(keys, sample_fraction=0.01, seed=19)
    s2 = SequentialSampler(keys, relative_error=0.01, confidence=0.9,
                           max_fraction=0.2, seed=20)

    methods = [
        ("PolyFit-2", lambda q: polyfit.query(q, guarantee).value, polyfit.size_in_bytes()),
        ("RMI", lambda q: rmi.query(q, guarantee).value, rmi.size_in_bytes()),
        ("FITing-tree", lambda q: fiting.query(q, guarantee).value, fiting.size_in_bytes()),
        ("KCA (exact)", lambda q: kca.range_aggregate(q.low, q.high), kca.size_in_bytes()),
        ("Hist", lambda q: hist.range_estimate(q.low, q.high), hist.size_in_bytes()),
        ("S-tree", lambda q: stree.range_estimate(q.low, q.high), stree.size_in_bytes()),
        ("S2", lambda q: s2.range_estimate(q.low, q.high), 0),
    ]

    # ------------------------------------------------------------------ #
    # Run the workload through each method.
    # ------------------------------------------------------------------ #
    rows = []
    for name, run, size_bytes in methods:
        # S2 resamples per query, so time a reduced workload for it.
        workload = queries if name != "S2" else queries[:50]
        timing = time_per_query_ns(run, workload, repeats=1, method=name)
        engine = QueryEngine(run, exact, name=name)
        report = engine.accuracy(workload)
        rows.append(
            [
                name,
                f"{timing.per_query_ns:,.0f}",
                f"{report.mean_relative_error * 100:.3f}%",
                f"{report.max_absolute_error:,.1f}",
                f"{size_bytes / 1024:.1f}" if size_bytes else "n/a",
            ]
        )

    print(format_table(
        ["method", "ns/query", "mean rel err", "max abs err", "size (KB)"],
        rows,
        title=f"single-key COUNT, {keys.size} keys, 1000 queries, eps_abs=100",
    ))
    print("\nGuaranteed methods (PolyFit, RMI, FITing-tree, KCA) must show "
          "max abs err <= 100; heuristic methods (Hist, S-tree, S2) have no bound.")


if __name__ == "__main__":
    main()
