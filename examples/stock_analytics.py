#!/usr/bin/env python
"""Stock-tick analytics: range MAX/MIN/SUM queries over an index time series.

This mirrors the paper's motivating example (Figure 1): a stock market index
sampled at many timestamps, where an analyst wants

* the maximum / minimum index level within a time window, and
* the average level within a window (a range SUM divided by a range COUNT),

all in microseconds with a hard error guarantee instead of scanning ticks.

Run with:  python examples/stock_analytics.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import Aggregate, Guarantee, PolyFitIndex, RangeQuery
from repro.baselines import AggregateSegmentTree
from repro.datasets import stock_index_walk


def build_indexes(keys: np.ndarray, values: np.ndarray):
    """Build MAX, MIN, SUM and COUNT PolyFit indexes over the tick series."""
    eps_level = 100.0     # index points of tolerated error for MAX/MIN
    eps_sum = 20_000.0    # tolerated error on sums of index levels
    return {
        "max": PolyFitIndex.build(keys, values, aggregate=Aggregate.MAX,
                                  guarantee=Guarantee.absolute(eps_level)),
        "min": PolyFitIndex.build(keys, values, aggregate=Aggregate.MIN,
                                  guarantee=Guarantee.absolute(eps_level)),
        "sum": PolyFitIndex.build(keys, values, aggregate=Aggregate.SUM,
                                  guarantee=Guarantee.absolute(eps_sum)),
        "count": PolyFitIndex.build(keys, aggregate=Aggregate.COUNT,
                                    guarantee=Guarantee.absolute(100.0)),
    }


def main() -> None:
    keys, values = stock_index_walk(n=80_000, seed=3)
    print(f"tick series: {keys.size} ticks, level range "
          f"[{values.min():.0f}, {values.max():.0f}]")

    start = time.perf_counter()
    indexes = build_indexes(keys, values)
    print(f"built 4 PolyFit indexes in {time.perf_counter() - start:.1f}s "
          f"({sum(ix.num_segments for ix in indexes.values())} segments total)")

    exact_max_tree = AggregateSegmentTree(keys, values, Aggregate.MAX)

    # Analyst windows: a short window, a trading day, and a long sweep.
    windows = [
        (10_000.0, 13_600.0, "one hour"),
        (50_000.0, 53_600.0 + 18_000.0, "one session"),
        (0.0, float(keys[-1]), "full history"),
    ]

    print("\nwindowed analytics (approximate, guaranteed):")
    for low, high, label in windows:
        maximum = indexes["max"].query(RangeQuery(low, high, Aggregate.MAX)).value
        minimum = indexes["min"].query(RangeQuery(low, high, Aggregate.MIN)).value
        total = indexes["sum"].query(RangeQuery(low, high, Aggregate.SUM)).value
        count = indexes["count"].query(RangeQuery(low, high, Aggregate.COUNT)).value
        average = total / max(count, 1.0)
        exact_max = exact_max_tree.range_query(low, high)
        print(
            f"  {label:13s} max~{maximum:9.1f} (exact {exact_max:9.1f})  "
            f"min~{minimum:9.1f}  avg~{average:9.1f}"
        )

    # Latency comparison: PolyFit MAX vs the exact aggregate tree.
    probes = [RangeQuery(low, high, Aggregate.MAX) for low, high, _ in windows] * 300
    start = time.perf_counter_ns()
    for probe in probes:
        indexes["max"].estimate(probe)
    polyfit_ns = (time.perf_counter_ns() - start) / len(probes)
    start = time.perf_counter_ns()
    for probe in probes:
        exact_max_tree.range_query(probe.low, probe.high)
    tree_ns = (time.perf_counter_ns() - start) / len(probes)
    print(
        f"\nper-query latency (pure-Python substrate): PolyFit MAX {polyfit_ns:,.0f} ns, "
        f"exact aggregate tree {tree_ns:,.0f} ns"
    )
    size_ratio = exact_max_tree.size_in_bytes() / max(indexes["max"].size_in_bytes(), 1)
    print(f"index sizes: PolyFit MAX {indexes['max'].size_in_bytes() / 1024:.1f} KiB vs "
          f"aggregate tree {exact_max_tree.size_in_bytes() / 1024:.0f} KiB "
          f"({size_ratio:.0f}x smaller)")


if __name__ == "__main__":
    main()
