#!/usr/bin/env python
"""Geospatial analytics: two-key COUNT queries over tweet-like points.

Reproduces the paper's second motivating scenario (Figure 2): counting tweets
inside geographic rectangles.  We build the two-key PolyFit index over a
clustered 2-D point set, answer region counts with guarantees, compare against
the exact aggregate R-tree, push a 100k-rectangle workload through the batch
path (the Morton-linearized leaf directory — one vectorized locate plus one
gathered Horner pass for the whole workload), and render a coarse text
"heatmap" answered by a single ``estimate_batch`` call.

Run with:  python examples/tweet_heatmap.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import Guarantee, PolyFit2DIndex, RangeQuery2D, generate_rectangle_queries
from repro.baselines import AggregateRTree2D
from repro.datasets import osm_points
from repro.queries import queries_to_bounds


REGIONS = {
    "north-east": (10.0, 170.0, 10.0, 80.0),
    "north-west": (-170.0, -10.0, 10.0, 80.0),
    "south-east": (10.0, 170.0, -80.0, -10.0),
    "south-west": (-170.0, -10.0, -80.0, -10.0),
    "equator band": (-180.0, 180.0, -10.0, 10.0),
}


def main() -> None:
    xs, ys = osm_points(n=300_000, seed=21)
    print(f"point set: {xs.size} points")

    # The quadtree surfaces are fitted on a sampled cumulative grid, so the
    # grid must be fine enough that single-cell point mass is small relative
    # to the error budget (DESIGN.md section 8); 256 x 256 keeps the average
    # cell at ~5 points for 300k records.
    eps_abs = 1000.0
    start = time.perf_counter()
    index = PolyFit2DIndex.build(xs, ys, guarantee=Guarantee.absolute(eps_abs),
                                 grid_resolution=256)
    print(f"PolyFit2D built in {time.perf_counter() - start:.1f}s: "
          f"{index.num_leaves} quadtree leaves "
          f"({index.num_fitted_leaves} fitted surfaces), "
          f"{index.size_in_bytes() / 1024:.1f} KiB")

    artree = AggregateRTree2D(xs, ys)

    print(f"\nregion counts (absolute-error budget +/-{eps_abs:.0f}, enforced on the "
          "sampled grid — see DESIGN.md section 8):")
    for name, (x1, x2, y1, y2) in REGIONS.items():
        query = RangeQuery2D(x1, x2, y1, y2)
        approx = index.query(query, Guarantee.absolute(eps_abs)).value
        exact = artree.rectangle_aggregate(x1, x2, y1, y2)
        print(f"  {name:13s} approx={approx:10.0f}  exact={exact:10.0f}  "
              f"|err|={abs(approx - exact):7.1f}")

    # Latency comparison on a random rectangle workload.
    workload = generate_rectangle_queries(xs, ys, 500, seed=22)
    start = time.perf_counter_ns()
    for query in workload:
        index.estimate(query)
    polyfit_ns = (time.perf_counter_ns() - start) / len(workload)
    start = time.perf_counter_ns()
    for query in workload:
        artree.rectangle_aggregate(query.x_low, query.x_high, query.y_low, query.y_high)
    artree_ns = (time.perf_counter_ns() - start) / len(workload)
    print(f"\nper-query latency: PolyFit2D {polyfit_ns:,.0f} ns vs "
          f"aR-tree {artree_ns:,.0f} ns ({artree_ns / polyfit_ns:.1f}x)")

    # The batch path: the same index answers a 100k-rectangle workload
    # through the flat leaf directory (linear quadtree) — one vectorized
    # Morton locate and one gathered surface evaluation for all corners.
    batch_workload = generate_rectangle_queries(xs, ys, 100_000, seed=23)
    bounds = queries_to_bounds(batch_workload)
    index.estimate_batch(*bounds)  # warm up
    start = time.perf_counter_ns()
    batch_values = index.estimate_batch(*bounds)
    batch_ns = (time.perf_counter_ns() - start) / len(batch_workload)
    sample = np.array([index.estimate(q) for q in batch_workload[:200]])
    agree = "yes" if np.allclose(sample, batch_values[:200]) else "NO"
    print(f"batch path ({len(batch_workload):,} rectangles through the "
          f"linearized directory): {batch_ns:,.0f} ns/query "
          f"({1e9 / batch_ns:,.0f} q/s, {polyfit_ns / batch_ns:.0f}x over the "
          f"scalar loop; matches scalar: {agree})")

    # Text heatmap of approximate densities on a 12x24 grid, answered by a
    # single estimate_batch call over all cells.
    print("\napproximate density heatmap (one batch call over all cells):")
    rows, cols = 12, 24
    x_edges = np.linspace(xs.min(), xs.max(), cols + 1)
    y_edges = np.linspace(ys.min(), ys.max(), rows + 1)
    cell_j, cell_i = np.meshgrid(np.arange(cols), np.arange(rows))
    counts = np.maximum(
        index.estimate_batch(
            x_edges[cell_j.ravel()], x_edges[cell_j.ravel() + 1],
            y_edges[cell_i.ravel()], y_edges[cell_i.ravel() + 1],
        ),
        0.0,
    ).reshape(rows, cols)
    shades = " .:-=+*#%@"
    peak = counts.max() or 1.0
    for i in range(rows - 1, -1, -1):
        line = "".join(shades[int(min(c / peak, 1.0) * (len(shades) - 1))] for c in counts[i])
        print("  " + line)


if __name__ == "__main__":
    main()
