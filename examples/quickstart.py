#!/usr/bin/env python
"""Quickstart: build a PolyFit index and answer guaranteed approximate queries.

This example walks through the core workflow of the library:

1. generate (or load) a one-key dataset,
2. build a PolyFit index for COUNT queries with an absolute error guarantee,
3. run a few queries and compare against the exact answer,
4. do the same for a relative-error guarantee (with automatic exact fallback),
5. answer the whole workload at once through the vectorized batch API,
6. persist the index to disk and load it back.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    Aggregate,
    Guarantee,
    PolyFitIndex,
    RangeQuery,
    generate_range_queries,
    load_index,
    save_index,
)
from repro.datasets import tweet_latitudes


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Data: 50k latitude-like keys (a scaled-down TWEET dataset).
    # ------------------------------------------------------------------ #
    keys, _ = tweet_latitudes(n=50_000, seed=7)
    print(f"dataset: {keys.size} keys in [{keys.min():.2f}, {keys.max():.2f}]")

    # ------------------------------------------------------------------ #
    # 2. Build a COUNT index with |error| <= 100 guaranteed (Problem 1).
    #    Lemma 2 sets the per-segment budget delta = eps / 2 internally.
    # ------------------------------------------------------------------ #
    eps_abs = 100.0
    index = PolyFitIndex.build(
        keys,
        aggregate=Aggregate.COUNT,
        guarantee=Guarantee.absolute(eps_abs),
    )
    print(
        f"PolyFit index: {index.num_segments} degree-{index.degree} segments, "
        f"{index.size_in_bytes() / 1024:.1f} KiB "
        f"(raw key array would be {keys.nbytes / 1024:.0f} KiB)"
    )

    # ------------------------------------------------------------------ #
    # 3. Absolute-error queries.
    # ------------------------------------------------------------------ #
    print("\nabsolute guarantee (eps_abs = 100):")
    for low, high in [(-60.0, 60.0), (10.0, 45.0), (40.0, 41.0)]:
        query = RangeQuery(low, high, Aggregate.COUNT)
        result = index.query(query, Guarantee.absolute(eps_abs))
        exact = index.exact(query)
        print(
            f"  COUNT[{low:7.1f}, {high:7.1f}]  approx={result.value:10.1f}  "
            f"exact={exact:10.0f}  |err|={abs(result.value - exact):6.1f}  "
            f"certified +/-{result.error_bound:.0f}"
        )

    # ------------------------------------------------------------------ #
    # 4. Relative-error queries (Problem 2). Small answers automatically
    #    fall back to the exact method when the Lemma 3 certificate fails.
    # ------------------------------------------------------------------ #
    eps_rel = 0.01
    print(f"\nrelative guarantee (eps_rel = {eps_rel}):")
    workload = generate_range_queries(keys, 1000, Aggregate.COUNT, seed=11)
    fallbacks = 0
    worst = 0.0
    for query in workload:
        result = index.query(query, Guarantee.relative(eps_rel))
        exact = index.exact(query)
        fallbacks += result.exact_fallback
        if exact > 0:
            worst = max(worst, abs(result.value - exact) / exact)
    print(
        f"  1000 random queries: worst relative error = {worst:.4f}, "
        f"exact fallback used for {fallbacks} queries"
    )

    # ------------------------------------------------------------------ #
    # 5. Batch queries: answer the whole workload with O(1) NumPy calls
    #    over the index's flat coefficient-matrix layout.  Same answers,
    #    50-100x the throughput of the per-query loop above.
    # ------------------------------------------------------------------ #
    import time

    lows = np.array([q.low for q in workload])
    highs = np.array([q.high for q in workload])
    start = time.perf_counter()
    batch = index.query_batch(lows, highs, Guarantee.relative(eps_rel))
    elapsed = time.perf_counter() - start
    print(
        f"\nbatch API: {len(batch)} queries in {elapsed * 1e3:.1f} ms "
        f"({len(batch) / elapsed:,.0f} queries/sec), "
        f"fallback rate {batch.fallback_rate:.1%}"
    )

    # ------------------------------------------------------------------ #
    # 6. Persist and reload.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "tweet_count_index.json"
        save_index(index, path)
        restored = load_index(path)
        probe = RangeQuery(-30.0, 30.0, Aggregate.COUNT)
        assert np.isclose(restored.query_value(probe.low, probe.high),
                          index.query_value(probe.low, probe.high))
        print(f"\nindex serialized to JSON ({path.stat().st_size / 1024:.1f} KiB) and reloaded OK")


if __name__ == "__main__":
    main()
