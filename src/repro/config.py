"""Configuration dataclasses shared across the library.

The paper exposes a small number of knobs: the polynomial degree ``deg``, the
per-segment error budget ``delta`` (derived from the requested guarantee via
Lemmas 2-7), the index fan-out, and — for the two-key case — the quadtree
split limits.  We group them in frozen dataclasses so constructed indexes can
record exactly how they were built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .errors import QueryError

__all__ = [
    "Aggregate",
    "GuaranteeKind",
    "FitConfig",
    "SegmentationConfig",
    "IndexConfig",
    "QuadTreeConfig",
    "DEFAULT_DEGREE",
    "DEFAULT_FANOUT",
]

#: Default polynomial degree used throughout the paper's evaluation
#: (Section VII-B selects degree 2 for both COUNT and MAX).
DEFAULT_DEGREE = 2

#: Default fan-out of the search tree built over segments.
DEFAULT_FANOUT = 16


class Aggregate(str, Enum):
    """Aggregate functions supported by range aggregate queries."""

    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"

    @property
    def is_cumulative(self) -> bool:
        """True for aggregates answered through a cumulative function."""
        return self in (Aggregate.COUNT, Aggregate.SUM)

    @property
    def is_extremum(self) -> bool:
        """True for aggregates answered through the key-measure function."""
        return self in (Aggregate.MIN, Aggregate.MAX)


class GuaranteeKind(str, Enum):
    """The two guarantee flavours studied by the paper.

    ``ABSOLUTE`` corresponds to Problem 1 (``|A - R| <= eps_abs``) and
    ``RELATIVE`` to Problem 2 (``|A - R| / R <= eps_rel``).
    """

    ABSOLUTE = "absolute"
    RELATIVE = "relative"


@dataclass(frozen=True)
class FitConfig:
    """Configuration of a single minimax polynomial fit.

    Parameters
    ----------
    degree:
        Degree of the fitted polynomial (``deg`` in the paper).
    solver:
        ``"auto"`` picks the exact incremental (convex-hull) fitter for
        degree <= 1 and the Remez exchange for degree >= 2, with the HiGHS LP
        as the automatic fallback and correctness oracle; ``"incremental"``
        forces the hull fitter (degree <= 1 only); ``"remez"`` forces the
        exchange; ``"lp"`` forces the linear program of Eq. 9; ``"lstsq"``
        uses least squares (no minimax optimality — used only for ablation
        benchmarks).
    rescale:
        Whether keys are affinely mapped to ``[-1, 1]`` before fitting for
        numerical stability.  Coefficients are stored in the scaled basis.
    """

    degree: int = DEFAULT_DEGREE
    solver: str = "auto"
    rescale: bool = True

    def __post_init__(self) -> None:
        if self.degree < 0:
            raise QueryError(f"polynomial degree must be >= 0, got {self.degree}")
        if self.solver not in ("auto", "incremental", "remez", "lp", "lstsq"):
            raise QueryError(f"unknown solver {self.solver!r}")
        if self.solver == "incremental" and self.degree > 1:
            raise QueryError(
                "the incremental solver is exact only for degree <= 1; "
                "use 'auto' or 'remez' for higher degrees"
            )


@dataclass(frozen=True)
class SegmentationConfig:
    """Configuration of the 1-D segmentation algorithm.

    Parameters
    ----------
    delta:
        Per-segment error budget (the bounded delta-error constraint,
        Definition 3).
    method:
        ``"greedy"`` for the GS method (Algorithm 1), ``"greedy-exponential"``
        for GS accelerated with exponential + binary search over the segment
        end, or ``"dp"`` for the dynamic-programming optimum (quadratic; used
        in tests and the ablation bench only).
    min_segment_points:
        Minimum number of points per segment; segments shorter than
        ``degree + 1`` points are always exact, so this mainly controls how
        aggressively tiny segments are produced for pathological data.
    early_accept:
        Certify probe prefixes by re-evaluating the incumbent polynomial on
        the extension before solving (a witness within delta proves
        feasibility, so boundaries never change).  Disable only to benchmark
        the solve-per-probe baseline.
    """

    delta: float = 100.0
    method: str = "greedy-exponential"
    min_segment_points: int = 1
    early_accept: bool = True

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise QueryError(f"delta must be non-negative, got {self.delta}")
        if self.method not in ("greedy", "greedy-exponential", "dp"):
            raise QueryError(f"unknown segmentation method {self.method!r}")
        if self.min_segment_points < 1:
            raise QueryError("min_segment_points must be >= 1")


@dataclass(frozen=True)
class IndexConfig:
    """Configuration for building a :class:`repro.index.PolyFitIndex`.

    Combines the fit and segmentation settings with the fan-out of the search
    tree placed over segment boundaries.
    """

    fit: FitConfig = field(default_factory=FitConfig)
    segmentation: SegmentationConfig = field(default_factory=SegmentationConfig)
    fanout: int = DEFAULT_FANOUT

    def __post_init__(self) -> None:
        if self.fanout < 2:
            raise QueryError(f"fanout must be >= 2, got {self.fanout}")


@dataclass(frozen=True)
class QuadTreeConfig:
    """Configuration of the quadtree segmentation used for two-key queries.

    Parameters
    ----------
    delta:
        Per-cell error budget for the fitted polynomial surface.
    max_depth:
        Maximum quadtree depth; cells at this depth keep their best fit even
        if the budget is not met (they then store an exact local grid so
        guarantees still hold).
    min_cell_points:
        Cells with at most this many points are answered exactly from the
        points themselves instead of a fitted surface.
    degree:
        Total degree of the bivariate polynomial surface.
    solver:
        Surface-fit solver: ``"auto"`` (LP with the interpolation fast path),
        ``"lp"``, or ``"lstsq"``.  No bivariate Remez exists (there is no 2-D
        equioscillation theory), so the LP remains the exact surface solver.
    build_executor:
        How the refinement frontier is evaluated: ``"serial"`` (recursive,
        the reference), ``"thread"`` or ``"process"``.  Cells on the frontier
        are independent, so parallel builds are bit-identical to the serial
        one — the executor only changes wall-clock time.
    build_workers:
        Worker count for parallel builds; ``None`` uses the CPU count.

    The build knobs (``solver``/``build_executor``/``build_workers``) only
    affect construction; they are not serialized with the index.
    """

    delta: float = 250.0
    max_depth: int = 12
    min_cell_points: int = 16
    degree: int = DEFAULT_DEGREE
    solver: str = "auto"
    build_executor: str = "serial"
    build_workers: int | None = None

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise QueryError("delta must be non-negative")
        if self.max_depth < 1:
            raise QueryError("max_depth must be >= 1")
        if self.min_cell_points < 1:
            raise QueryError("min_cell_points must be >= 1")
        if self.degree < 0:
            raise QueryError("degree must be >= 0")
        if self.solver not in ("auto", "lp", "lstsq"):
            raise QueryError(f"unknown surface solver {self.solver!r}")
        if self.build_executor not in ("serial", "thread", "process"):
            raise QueryError(f"unknown build executor {self.build_executor!r}")
        if self.build_workers is not None and self.build_workers < 1:
            raise QueryError("build_workers must be >= 1")
