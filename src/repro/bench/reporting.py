"""Plain-text reporting helpers for the benchmark drivers.

Benchmarks print the same rows/series as the paper's tables and figures so a
reader can eyeball the reproduced trends; these helpers keep that formatting
consistent and also produce structured records suitable for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = ["format_table", "format_series", "ExperimentRecord", "record_to_lines"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render a simple fixed-width text table."""
    columns = len(headers)
    normalized_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in normalized_rows:
        for index in range(columns):
            value = row[index] if index < len(row) else ""
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in normalized_rows:
        lines.append(
            "  ".join(
                (row[index] if index < len(row) else "").ljust(widths[index])
                for index in range(columns)
            )
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render one x-column plus one column per named series (a 'figure' as text)."""
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(x_values):
        row = [x]
        for values in series.values():
            row.append(values[index] if index < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e6 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


@dataclass
class ExperimentRecord:
    """Structured record of one reproduced experiment.

    Attributes
    ----------
    experiment_id:
        Paper identifier (e.g. ``"Figure 15(a)"``).
    description:
        One-line description of what is measured.
    parameters:
        Key experiment parameters (dataset, epsilon values, ...).
    measurements:
        Mapping of row/series label to the measured value(s).
    paper_claim:
        The qualitative claim from the paper this experiment checks.
    """

    experiment_id: str
    description: str
    parameters: dict = field(default_factory=dict)
    measurements: dict = field(default_factory=dict)
    paper_claim: str = ""


def record_to_lines(record: ExperimentRecord) -> list[str]:
    """Render an :class:`ExperimentRecord` as markdown-ish text lines."""
    lines = [f"## {record.experiment_id}", record.description, ""]
    if record.paper_claim:
        lines.append(f"Paper claim: {record.paper_claim}")
    if record.parameters:
        lines.append("Parameters: " + ", ".join(f"{k}={v}" for k, v in record.parameters.items()))
    for label, value in record.measurements.items():
        lines.append(f"- {label}: {value}")
    lines.append("")
    return lines
