"""Benchmark harness utilities.

These helpers are shared by the driver modules in ``benchmarks/``: per-query
timing in nanoseconds, parameter sweeps, and plain-text table formatting that
mirrors the rows/series the paper reports.
"""

from .harness import (
    time_per_query_ns,
    time_batch_per_query_ns,
    time_callable_ns,
    sweep_shard_counts,
    MethodTiming,
)
from .reporting import format_table, format_series, ExperimentRecord, record_to_lines

__all__ = [
    "time_per_query_ns",
    "time_batch_per_query_ns",
    "time_callable_ns",
    "sweep_shard_counts",
    "MethodTiming",
    "format_table",
    "format_series",
    "ExperimentRecord",
    "record_to_lines",
]
