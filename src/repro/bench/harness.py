"""Timing harness.

The paper reports per-query response time in nanoseconds averaged over 1000
queries.  :func:`time_per_query_ns` reproduces that protocol: run the whole
workload ``repeats`` times with ``time.perf_counter_ns`` and report the best
average per query (best-of-repeats suppresses warm-up and GC noise, which is
the standard micro-benchmark convention).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import QueryError

__all__ = [
    "MethodTiming",
    "time_per_query_ns",
    "time_batch_per_query_ns",
    "time_callable_ns",
    "sweep_shard_counts",
]


@dataclass(frozen=True)
class MethodTiming:
    """Per-query timing for one method on one workload.

    Attributes
    ----------
    method:
        Method label (e.g. ``"PolyFit-2"``).
    per_query_ns:
        Average nanoseconds per query of the best repeat.
    total_queries:
        Number of queries in the workload.
    repeats:
        Number of measured repeats.
    p50_ns, p95_ns, p99_ns:
        Percentiles of the per-query latency across the measured repeats
        (each repeat contributes one ``elapsed / total_queries`` sample, so
        the spread reflects run-to-run jitter, not per-query variance).
        NaN when the producing helper does not record them.
    """

    method: str
    per_query_ns: float
    total_queries: int
    repeats: int
    p50_ns: float = float("nan")
    p95_ns: float = float("nan")
    p99_ns: float = float("nan")


def time_per_query_ns(
    run_query: Callable[[object], object],
    queries: Sequence[object],
    *,
    repeats: int = 3,
    method: str = "method",
    warmup: bool = True,
) -> MethodTiming:
    """Measure the average per-query latency of ``run_query`` over a workload.

    Parameters
    ----------
    run_query:
        Callable invoked once per query; its return value is ignored.
    queries:
        The workload.
    repeats:
        Number of timed passes; the fastest pass is reported.
    method:
        Label stored in the result.
    warmup:
        Run one untimed pass first to populate caches.
    """
    if not queries:
        raise QueryError("empty workload")
    if repeats < 1:
        raise QueryError("repeats must be >= 1")
    if warmup:
        for query in queries:
            run_query(query)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter_ns()
        for query in queries:
            run_query(query)
        samples.append((time.perf_counter_ns() - start) / len(queries))
    return MethodTiming(
        method=method,
        per_query_ns=min(samples),
        total_queries=len(queries),
        repeats=repeats,
        p50_ns=float(np.percentile(samples, 50)),
        p95_ns=float(np.percentile(samples, 95)),
        p99_ns=float(np.percentile(samples, 99)),
    )


def time_batch_per_query_ns(
    run_batch: Callable[[], object],
    num_queries: int,
    *,
    repeats: int = 3,
    method: str = "method",
    warmup: bool = True,
) -> MethodTiming:
    """Per-query latency of a method that answers a whole workload at once.

    ``run_batch`` is a zero-argument callable answering all ``num_queries``
    queries in one call (e.g. a closure over ``index.query_batch`` and the
    prepared bound arrays).  The fastest of ``repeats`` passes is divided by
    the workload size, making the result directly comparable with
    :func:`time_per_query_ns` of the scalar loop.
    """
    if num_queries < 1:
        raise QueryError("num_queries must be >= 1")
    if repeats < 1:
        raise QueryError("repeats must be >= 1")
    if warmup:
        run_batch()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter_ns()
        run_batch()
        samples.append((time.perf_counter_ns() - start) / num_queries)
    return MethodTiming(
        method=method,
        per_query_ns=min(samples),
        total_queries=num_queries,
        repeats=repeats,
        p50_ns=float(np.percentile(samples, 50)),
        p95_ns=float(np.percentile(samples, 95)),
        p99_ns=float(np.percentile(samples, 99)),
    )


def sweep_shard_counts(
    index: object | None = None,
    *,
    index_path: str | None = None,
    bounds: Sequence[object],
    shard_counts: Sequence[int],
    executor: str = "thread",
    method: str = "estimate_batch",
    repeats: int = 3,
    min_queries_per_shard: int = 1,
    mmap: bool = True,
) -> dict[int, MethodTiming]:
    """Time one batch method across shard counts — the ``num_shards`` knob.

    For every entry of ``shard_counts`` a fresh
    :class:`~repro.queries.sharding.ShardedQueryEngine` is built over
    ``index`` (and/or a persisted ``index_path`` for process executors),
    the chosen ``method`` is timed on the full ``bounds`` workload with
    :func:`time_batch_per_query_ns`, and the engine's pool is torn down
    before the next count runs.  ``min_queries_per_shard`` defaults to 1 so
    the sweep always exercises the parallel path being measured.
    """
    from ..queries.sharding import ShardedQueryEngine

    num_queries = len(bounds[0])
    timings: dict[int, MethodTiming] = {}
    for count in shard_counts:
        with ShardedQueryEngine(
            index=index,
            index_path=index_path,
            num_shards=count,
            executor=executor,
            min_queries_per_shard=min_queries_per_shard,
            mmap=mmap,
        ) as engine:
            run_batch = getattr(engine, method)
            timings[count] = time_batch_per_query_ns(
                lambda: run_batch(*bounds),
                num_queries,
                repeats=repeats,
                method=f"{method}[shards={count},{executor}]",
            )
    return timings


def time_callable_ns(function: Callable[[], object], *, repeats: int = 1) -> float:
    """Wall-clock nanoseconds of the fastest of ``repeats`` calls to ``function``."""
    if repeats < 1:
        raise QueryError("repeats must be >= 1")
    best = None
    for _ in range(repeats):
        start = time.perf_counter_ns()
        function()
        elapsed = time.perf_counter_ns() - start
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    return float(best)
