"""Error-guarantee arithmetic (Lemmas 2-7 of the paper).

A PolyFit index is built so that every segment's polynomial deviates from the
target function by at most ``delta``.  At query time the answer combines a
small number of polynomial evaluations, so the answer's absolute error is at
most ``c * delta`` where ``c`` is the number of evaluation "corners":

* SUM/COUNT with one key — two corners (``P(uq) - P(lq)``), so ``c = 2``
  (Lemma 2),
* MAX/MIN with one key — one corner (the extreme of a single polynomial), so
  ``c = 1`` (Lemma 4),
* COUNT with two keys — four corners of the inclusion-exclusion, so ``c = 4``
  (Lemma 6).

The relative-error certificates (Lemmas 3, 5, 7) all have the same shape:
the answer ``A`` is certified when ``A >= c * delta * (1 + 1/eps_rel)``.
"""

from __future__ import annotations

from ..config import Aggregate
from ..errors import QueryError

__all__ = [
    "CORNER_FACTORS",
    "corner_factor",
    "delta_for_absolute",
    "delta_for_relative",
    "certified_absolute_bound",
    "certify_relative",
]

#: Number of polynomial evaluations combined per answer, keyed by
#: (aggregate, number of keys).
CORNER_FACTORS: dict[tuple[Aggregate, int], int] = {
    (Aggregate.COUNT, 1): 2,
    (Aggregate.SUM, 1): 2,
    (Aggregate.MAX, 1): 1,
    (Aggregate.MIN, 1): 1,
    (Aggregate.COUNT, 2): 4,
    (Aggregate.SUM, 2): 4,
}


def corner_factor(aggregate: Aggregate, num_keys: int = 1) -> int:
    """The factor ``c`` relating per-segment error to answer error."""
    try:
        return CORNER_FACTORS[(aggregate, num_keys)]
    except KeyError as exc:
        raise QueryError(
            f"unsupported aggregate/keys combination: {aggregate}, {num_keys} keys"
        ) from exc


def delta_for_absolute(eps_abs: float, aggregate: Aggregate, num_keys: int = 1) -> float:
    """Per-segment budget achieving an absolute guarantee ``eps_abs``.

    Lemma 2 (SUM/COUNT, 1 key): ``delta = eps_abs / 2``.
    Lemma 4 (MAX/MIN, 1 key):   ``delta = eps_abs``.
    Lemma 6 (COUNT, 2 keys):    ``delta = eps_abs / 4``.
    """
    if eps_abs <= 0:
        raise QueryError(f"eps_abs must be positive, got {eps_abs}")
    return eps_abs / corner_factor(aggregate, num_keys)


def delta_for_relative(
    eps_rel: float,
    aggregate: Aggregate,
    num_keys: int = 1,
    *,
    expected_magnitude: float,
) -> float:
    """Per-segment budget targeting a relative guarantee ``eps_rel``.

    Unlike the absolute case, no single delta guarantees a relative error for
    every query (small-result queries always defeat it); the paper fixes
    delta heuristically (50 for one key, 250 for two keys) and falls back to
    the exact method when the certificate fails.  This helper derives a delta
    from a target result magnitude: answers of at least
    ``expected_magnitude`` will be certified, because
    ``expected_magnitude >= c * delta * (1 + 1/eps_rel)``.
    """
    if eps_rel <= 0:
        raise QueryError(f"eps_rel must be positive, got {eps_rel}")
    if expected_magnitude <= 0:
        raise QueryError("expected_magnitude must be positive")
    c = corner_factor(aggregate, num_keys)
    return expected_magnitude / (c * (1.0 + 1.0 / eps_rel))


def certified_absolute_bound(delta: float, aggregate: Aggregate, num_keys: int = 1) -> float:
    """The absolute error bound ``c * delta`` certified for an answer."""
    if delta < 0:
        raise QueryError("delta must be non-negative")
    return corner_factor(aggregate, num_keys) * delta


def certify_relative(
    approx_value: float,
    delta: float,
    eps_rel: float,
    aggregate: Aggregate,
    num_keys: int = 1,
) -> bool:
    """Relative-error certificate of Lemmas 3, 5 and 7.

    The answer ``A`` satisfies the relative guarantee whenever
    ``A >= c * delta * (1 + 1/eps_rel)``; otherwise the caller must fall back
    to the exact method.
    """
    if eps_rel <= 0:
        raise QueryError(f"eps_rel must be positive, got {eps_rel}")
    if delta < 0:
        raise QueryError("delta must be non-negative")
    threshold = corner_factor(aggregate, num_keys) * delta * (1.0 + 1.0 / eps_rel)
    return approx_value >= threshold
