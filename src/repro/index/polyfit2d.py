"""The two-key PolyFit index (Section VI of the paper).

:class:`PolyFit2DIndex` answers rectangle COUNT (and SUM) queries over 2-D
points by approximating the two-key cumulative function ``CF(u, v)`` with
polynomial surfaces fitted on quadtree cells, and combining four corner
evaluations by inclusion-exclusion:

    R([x1, x2] x [y1, y2]) =  CF(x2, y2) - CF(x1, y2) - CF(x2, y1) + CF(x1, y1)

Each corner evaluation errs by at most the cell budget ``delta``, so the
answer errs by at most ``4 * delta`` (Lemma 6); the relative-error
certificate is Lemma 7, with a fall back to the exact structure when it
fails.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..config import Aggregate, GuaranteeKind, QuadTreeConfig
from ..errors import GuaranteeNotSatisfiedError, NotSupportedError, QueryError
from ..fitting.quadtree import QuadCell, build_quadtree_surface
from ..functions.cumulative2d import Cumulative2D, build_cumulative_2d
from ..kernels import fused2d, resolve_kernel
from ..queries.batch import DEFAULT_TILE_SIZE, iter_tiles, resolve_batch_certificates
from ..queries.types import BatchQueryResult, Guarantee, QueryResult, RangeQuery2D
from .directory import QuadDirectory
from .guarantees import certified_absolute_bound, certify_relative, delta_for_absolute

__all__ = ["PolyFit2DIndex"]


class PolyFit2DIndex:
    """Quadtree-of-surfaces index for two-key range COUNT/SUM queries."""

    def __init__(
        self,
        root: QuadCell,
        exact: Cumulative2D,
        delta: float,
        aggregate: Aggregate,
        config: QuadTreeConfig,
        grid_resolution: int,
        *,
        directory: QuadDirectory | None = None,
        grid: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
        tile_size: int = DEFAULT_TILE_SIZE,
    ) -> None:
        self._root = root
        self._exact = exact
        self._delta = float(delta)
        self._aggregate = aggregate
        self._config = config
        self._grid_resolution = grid_resolution
        self._tile_size = int(tile_size)
        if self._tile_size < 1:
            raise QueryError(f"tile_size must be >= 1, got {tile_size}")
        # Bounding box cached once; corner evaluation clamps against it on
        # every query and must not rescan the coordinate arrays.
        self._bounds = exact.bounds
        # The read path runs on the linearized leaf directory (Morton-ordered
        # flat arrays); the pointer tree above stays as the scalar oracle.
        if directory is None:
            if grid is None:
                grid = exact.sample_grid(resolution=grid_resolution)
            directory = QuadDirectory.from_quadtree(root, *grid)
        self._directory = directory
        self._kernel_choice = "auto"
        self._kernel_payload_cache: tuple | None = None
        # The certified bound is a construction-time constant; computing it
        # once keeps it off the per-query hot path.
        self._certified_bound = certified_absolute_bound(self._delta, aggregate, num_keys=2)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        xs: np.ndarray,
        ys: np.ndarray,
        measures: np.ndarray | None = None,
        *,
        delta: float | None = None,
        guarantee: Guarantee | None = None,
        config: QuadTreeConfig | None = None,
        grid_resolution: int = 96,
        aggregate: Aggregate = Aggregate.COUNT,
    ) -> "PolyFit2DIndex":
        """Build the two-key index from point coordinates.

        Parameters
        ----------
        xs, ys:
            Point coordinates (first and second key).
        measures:
            Per-point measures; required for SUM, ignored for COUNT.
        delta:
            Per-cell fitting budget.  Either ``delta`` or an *absolute*
            ``guarantee`` must be given; Lemma 6 sets ``delta = eps_abs / 4``.
        guarantee:
            Absolute guarantee used to derive delta.
        config:
            Quadtree splitting configuration; its ``delta`` is overridden by
            the derived value.
        grid_resolution:
            Resolution of the CF sample grid the surfaces are fitted on.
        aggregate:
            COUNT (default, the case the paper evaluates) or SUM.
        """
        if aggregate not in (Aggregate.COUNT, Aggregate.SUM):
            raise NotSupportedError("two-key PolyFit supports COUNT and SUM")
        if aggregate is Aggregate.SUM and measures is None:
            raise QueryError("SUM requires per-point measures")
        if delta is None:
            if guarantee is None:
                raise QueryError("provide either delta or an absolute guarantee")
            if guarantee.kind is not GuaranteeKind.ABSOLUTE:
                raise QueryError(
                    "only absolute guarantees determine delta at build time; "
                    "pass delta explicitly for relative-error workloads"
                )
            delta = delta_for_absolute(guarantee.epsilon, aggregate, num_keys=2)
        base = config or QuadTreeConfig()
        config = replace(base, delta=delta)

        weights = measures if aggregate is Aggregate.SUM else None
        exact = build_cumulative_2d(xs, ys, weights=weights)
        grid_x, grid_y, grid_cf = exact.sample_grid(resolution=grid_resolution)
        root = build_quadtree_surface(grid_x, grid_y, grid_cf, config)
        return cls(
            root=root,
            exact=exact,
            delta=delta,
            aggregate=aggregate,
            config=config,
            grid_resolution=grid_resolution,
            grid=(grid_x, grid_y, grid_cf),
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def delta(self) -> float:
        """Per-cell fitting budget."""
        return self._delta

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the index answers."""
        return self._aggregate

    @property
    def certified_bound(self) -> float:
        """Construction-time certified absolute error bound (Lemma 6)."""
        return self._certified_bound

    @property
    def num_leaves(self) -> int:
        """Number of quadtree leaf cells."""
        return len(self._root.leaves())

    @property
    def num_fitted_leaves(self) -> int:
        """Leaves carrying a fitted surface (the rest answer exactly)."""
        return sum(1 for leaf in self._root.leaves() if not leaf.is_exact)

    @property
    def config(self) -> QuadTreeConfig:
        """Quadtree configuration used at build time."""
        return self._config

    @property
    def directory(self) -> QuadDirectory:
        """The linearized (Morton-ordered) flat leaf directory."""
        return self._directory

    @property
    def grid_resolution(self) -> int:
        """Resolution of the CF sample grid the surfaces were fitted on."""
        return self._grid_resolution

    @property
    def kernel(self) -> str:
        """Resolved batch-kernel backend: ``"numba"`` or ``"numpy"``.

        Trees deeper than 31 levels stay on the NumPy path regardless of
        the knob: their Morton codes exceed the compiled kernel's signed
        64-bit code arithmetic.
        """
        resolved = resolve_kernel(self._kernel_choice)
        if resolved == "numba" and self._directory.depth > 31:
            return "numpy"
        return resolved

    def set_kernel(self, choice: str) -> None:
        """Select the batch-kernel backend (``"auto"``/``"numba"``/``"numpy"``).

        Same semantics as :meth:`PolyFitIndex.set_kernel`: ``"numba"``
        fuses the 4-corner evaluation and Lemma 7 certificate into one
        compiled pass, ``"numpy"`` pins the multi-pass vectorized path and
        ``"auto"`` picks numba when importable.
        """
        resolve_kernel(choice)  # validate eagerly, including availability
        self._kernel_choice = choice

    def _kernel_payload(self) -> tuple:
        """Flat-array tuple the fused corner kernel consumes (cached)."""
        if self._kernel_payload_cache is None:
            directory = self._directory
            xmin, xmax, ymin, ymax = self._bounds
            rxmin, rxmax, rymin, rymax = directory.root_bounds
            x_boundaries = directory._x_boundaries
            y_boundaries = directory._y_boundaries
            if x_boundaries is None or y_boundaries is None:
                # Deep trees carry no materialized boundary arrays; the
                # kernel falls back to the midpoint descent (empty markers).
                x_boundaries = np.empty(0, dtype=np.float64)
                y_boundaries = np.empty(0, dtype=np.float64)
            surfaces = directory.surfaces.to_arrays()
            self._kernel_payload_cache = (
                float(xmin), float(xmax), float(ymin), float(ymax),
                float(rxmin), float(rxmax), float(rymin), float(rymax),
                int(directory.depth),
                np.ascontiguousarray(x_boundaries, dtype=np.float64),
                np.ascontiguousarray(y_boundaries, dtype=np.float64),
                float(directory._x_scale or 0.0),
                float(directory._y_scale or 0.0),
                directory.keys.astype(np.int64),
                directory.exact_mask,
                np.ascontiguousarray(directory.exact_ranges, dtype=np.int64),
                surfaces["coeffs"],
                surfaces["shift_u"],
                surfaces["scale_u"],
                surfaces["shift_v"],
                surfaces["scale_v"],
                directory.grid_x,
                directory.grid_y,
                directory.grid_cf,
            )
        return self._kernel_payload_cache

    def _fused_batch(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
        threshold: float,
        *,
        compiled: bool | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Answer a validated batch through the fused compiled corner kernel."""
        return fused2d.run_corners(
            self._kernel_payload(),
            x_lows,
            x_highs,
            y_lows,
            y_highs,
            threshold,
            compiled=compiled,
        )

    def size_in_bytes(self) -> int:
        """Footprint of the flat leaf directory (8 bytes per stored float).

        Counts what the index actually serves queries from: the Morton key
        array, cell boundaries, certified error bounds, exact markers, the
        coefficient tensor with its scaling vectors and the exact-cell
        sample payload — not the pointer tree, which is only the build-time
        scaffolding and scalar oracle.
        """
        return self._directory.size_in_bytes()

    # ------------------------------------------------------------------ #
    # Query answering
    # ------------------------------------------------------------------ #

    def _corner(self, u: float, v: float) -> float:
        """Approximate ``CF(u, v)`` via the covering leaf's model."""
        xmin, xmax, ymin, ymax = self._bounds
        if u < xmin or v < ymin:
            return 0.0
        u = xmax if u > xmax else float(u)
        v = ymax if v > ymax else float(v)
        leaf = self._root.locate(u, v)
        return leaf.evaluate(u, v)

    def estimate(self, query: RangeQuery2D) -> float:
        """Approximate rectangle aggregate by 4-corner inclusion-exclusion."""
        if query.aggregate is not self._aggregate:
            raise NotSupportedError("aggregate mismatch")
        return (
            self._corner(query.x_high, query.y_high)
            - self._corner(query.x_low, query.y_high)
            - self._corner(query.x_high, query.y_low)
            + self._corner(query.x_low, query.y_low)
        )

    def exact(self, query: RangeQuery2D) -> float:
        """Exact rectangle count from the underlying cumulative structure."""
        return self._exact.range_count(query.x_low, query.x_high, query.y_low, query.y_high)

    def _corner_batch(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Approximate ``CF`` at N corner points — pure NumPy, no descent loop.

        One vectorized Morton locate into the linearized leaf directory, one
        gather of coefficient rows, one nested-Horner pass for fitted cells
        and one nearest-grid-sample gather for exact cells.  Leaf location
        never touches the pointer tree.
        """
        xmin, xmax, ymin, ymax = self._bounds
        us = np.asarray(us, dtype=np.float64)
        vs = np.asarray(vs, dtype=np.float64)
        zero = (us < xmin) | (vs < ymin)
        cu = np.clip(us, xmin, xmax)
        cv = np.clip(vs, ymin, ymax)
        rows = self._directory.locate_batch(cu, cv)
        values = self._directory.evaluate_batch(rows, cu, cv)
        return np.where(zero, 0.0, values)

    def estimate_batch(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
    ) -> np.ndarray:
        """Approximate N rectangle aggregates by batched 4-corner evaluation.

        Large workloads are processed in tiles of ``tile_size`` queries so
        the transient corner/gather arrays stay bounded regardless of N; the
        tile loop runs once per tile, never per query.
        """
        x_lows, x_highs, y_lows, y_highs = self._validate_rectangles(
            x_lows, x_highs, y_lows, y_highs
        )
        if self.kernel == "numba":
            # The compiled pass materializes no per-corner transients, so it
            # needs no tiling — one parallel sweep over the whole batch.
            return self._fused_batch(x_lows, x_highs, y_lows, y_highs, np.inf)[0]
        return self._estimate_batch_numpy(x_lows, x_highs, y_lows, y_highs)

    def _estimate_batch_numpy(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
    ) -> np.ndarray:
        """The tiled NumPy corner path over already-validated bound arrays.

        This is the pinnable oracle the kernel bit-identity tests compare
        against, regardless of the kernel knob.
        """
        n = x_lows.size
        out = np.empty(n, dtype=np.float64)
        for start, stop in iter_tiles(n, self._tile_size):
            us = np.concatenate(
                (x_highs[start:stop], x_lows[start:stop],
                 x_highs[start:stop], x_lows[start:stop])
            )
            vs = np.concatenate(
                (y_highs[start:stop], y_highs[start:stop],
                 y_lows[start:stop], y_lows[start:stop])
            )
            corners = self._corner_batch(us, vs)
            m = stop - start
            out[start:stop] = (
                corners[:m] - corners[m: 2 * m] - corners[2 * m: 3 * m] + corners[3 * m:]
            )
        return out

    def exact_batch(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
    ) -> np.ndarray:
        """Exact rectangle aggregates for N queries.

        Runs the offline sort-based sweep of
        :meth:`~repro.functions.cumulative2d.Cumulative2D.range_count_batch`
        — O((n + q) log n) in a handful of NumPy passes — instead of the
        per-query window scan, so the relative-guarantee fallback no longer
        serializes on Python-level loops.
        """
        x_lows, x_highs, y_lows, y_highs = self._validate_rectangles(
            x_lows, x_highs, y_lows, y_highs
        )
        return self._exact.range_count_batch(x_lows, x_highs, y_lows, y_highs)

    def query_batch(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
        guarantee: Guarantee | None = None,
    ) -> BatchQueryResult:
        """Answer N rectangle queries with the semantics of :meth:`query`.

        Certificates are vectorized; only queries failing the Lemma 7
        relative certificate take the masked exact-fallback pass.
        """
        x_lows, x_highs, y_lows, y_highs = self._validate_rectangles(
            x_lows, x_highs, y_lows, y_highs
        )
        certified = None
        if (
            guarantee is not None
            and guarantee.kind is not GuaranteeKind.ABSOLUTE
            and self.kernel == "numba"
        ):
            # Fused path: the Lemma 7 certificate comparison runs inside the
            # same compiled pass as the 4-corner evaluation.
            threshold = self._certified_bound * (1.0 + 1.0 / guarantee.epsilon)
            approx, certified = self._fused_batch(
                x_lows, x_highs, y_lows, y_highs, threshold
            )
        else:
            approx = self.estimate_batch(x_lows, x_highs, y_lows, y_highs)
        # Same absolute-guarantee semantics as the scalar path: answer with
        # the approximation flagged un-guaranteed when the build budget is too
        # loose (absolute_fallback=False).
        return resolve_batch_certificates(
            approx,
            error_bound=self._certified_bound,
            guarantee=guarantee,
            exact_for_mask=lambda mask: self.exact_batch(
                x_lows[mask], x_highs[mask], y_lows[mask], y_highs[mask]
            ),
            absolute_fallback=False,
            certified=certified,
        )

    @staticmethod
    def _validate_rectangles(
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        arrays = tuple(
            np.atleast_1d(np.asarray(a, dtype=np.float64))
            for a in (x_lows, x_highs, y_lows, y_highs)
        )
        if len({a.shape for a in arrays}) != 1 or arrays[0].ndim != 1:
            raise QueryError("rectangle bound arrays must be equal-length 1-D arrays")
        if np.any(arrays[1] < arrays[0]) or np.any(arrays[3] < arrays[2]):
            raise QueryError("invalid rectangle bounds")
        return arrays

    def query(self, query: RangeQuery2D, guarantee: Guarantee | None = None) -> QueryResult:
        """Answer an approximate rectangle query with guarantee handling.

        Absolute guarantees are checked against the construction-time budget
        (``4 * delta <= eps_abs``, Lemma 6); relative guarantees use the
        Lemma 7 certificate with automatic exact fallback.
        """
        approx = self.estimate(query)
        bound = self._certified_bound
        if guarantee is None:
            return QueryResult(value=approx, guaranteed=True, error_bound=bound)
        if guarantee.kind is GuaranteeKind.ABSOLUTE:
            if bound <= guarantee.epsilon + 1e-12:
                return QueryResult(value=approx, guaranteed=True, error_bound=bound)
            return QueryResult(value=approx, guaranteed=False, error_bound=bound)
        if certify_relative(approx, self._delta, guarantee.epsilon, self._aggregate, num_keys=2):
            return QueryResult(value=approx, guaranteed=True, error_bound=bound)
        exact = self.exact(query)
        return QueryResult(value=exact, guaranteed=True, exact_fallback=True, error_bound=0.0)

    def require_guarantee(self, query: RangeQuery2D, guarantee: Guarantee) -> float:
        """Answer and raise if the guarantee cannot be certified (no fallback)."""
        approx = self.estimate(query)
        bound = self._certified_bound
        if guarantee.kind is GuaranteeKind.ABSOLUTE:
            if bound > guarantee.epsilon + 1e-12:
                raise GuaranteeNotSatisfiedError(
                    f"index delta {self._delta} certifies only +/-{bound}, "
                    f"requested eps_abs={guarantee.epsilon}"
                )
            return approx
        if not certify_relative(approx, self._delta, guarantee.epsilon, self._aggregate, 2):
            raise GuaranteeNotSatisfiedError("relative-error certificate failed")
        return approx
