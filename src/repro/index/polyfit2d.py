"""The two-key PolyFit index (Section VI of the paper).

:class:`PolyFit2DIndex` answers rectangle COUNT (and SUM) queries over 2-D
points by approximating the two-key cumulative function ``CF(u, v)`` with
polynomial surfaces fitted on quadtree cells, and combining four corner
evaluations by inclusion-exclusion:

    R([x1, x2] x [y1, y2]) =  CF(x2, y2) - CF(x1, y2) - CF(x2, y1) + CF(x1, y1)

Each corner evaluation errs by at most the cell budget ``delta``, so the
answer errs by at most ``4 * delta`` (Lemma 6); the relative-error
certificate is Lemma 7, with a fall back to the exact structure when it
fails.
"""

from __future__ import annotations

import numpy as np

from ..config import Aggregate, GuaranteeKind, QuadTreeConfig
from ..errors import DataError, GuaranteeNotSatisfiedError, NotSupportedError, QueryError
from ..fitting.quadtree import QuadCell, build_quadtree_surface
from ..functions.cumulative2d import Cumulative2D, build_cumulative_2d
from ..queries.batch import resolve_batch_certificates
from ..queries.types import BatchQueryResult, Guarantee, QueryResult, RangeQuery2D
from .guarantees import certified_absolute_bound, certify_relative, delta_for_absolute

__all__ = ["PolyFit2DIndex"]


class PolyFit2DIndex:
    """Quadtree-of-surfaces index for two-key range COUNT/SUM queries."""

    def __init__(
        self,
        root: QuadCell,
        exact: Cumulative2D,
        delta: float,
        aggregate: Aggregate,
        config: QuadTreeConfig,
        grid_resolution: int,
    ) -> None:
        self._root = root
        self._exact = exact
        self._delta = float(delta)
        self._aggregate = aggregate
        self._config = config
        self._grid_resolution = grid_resolution
        # Bounding box cached once; corner evaluation clamps against it on
        # every query and must not rescan the coordinate arrays.
        self._bounds = exact.bounds
        # The certified bound is a construction-time constant; computing it
        # once keeps it off the per-query hot path.
        self._certified_bound = certified_absolute_bound(self._delta, aggregate, num_keys=2)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        xs: np.ndarray,
        ys: np.ndarray,
        measures: np.ndarray | None = None,
        *,
        delta: float | None = None,
        guarantee: Guarantee | None = None,
        config: QuadTreeConfig | None = None,
        grid_resolution: int = 96,
        aggregate: Aggregate = Aggregate.COUNT,
    ) -> "PolyFit2DIndex":
        """Build the two-key index from point coordinates.

        Parameters
        ----------
        xs, ys:
            Point coordinates (first and second key).
        measures:
            Per-point measures; required for SUM, ignored for COUNT.
        delta:
            Per-cell fitting budget.  Either ``delta`` or an *absolute*
            ``guarantee`` must be given; Lemma 6 sets ``delta = eps_abs / 4``.
        guarantee:
            Absolute guarantee used to derive delta.
        config:
            Quadtree splitting configuration; its ``delta`` is overridden by
            the derived value.
        grid_resolution:
            Resolution of the CF sample grid the surfaces are fitted on.
        aggregate:
            COUNT (default, the case the paper evaluates) or SUM.
        """
        if aggregate not in (Aggregate.COUNT, Aggregate.SUM):
            raise NotSupportedError("two-key PolyFit supports COUNT and SUM")
        if aggregate is Aggregate.SUM and measures is None:
            raise QueryError("SUM requires per-point measures")
        if delta is None:
            if guarantee is None:
                raise QueryError("provide either delta or an absolute guarantee")
            if guarantee.kind is not GuaranteeKind.ABSOLUTE:
                raise QueryError(
                    "only absolute guarantees determine delta at build time; "
                    "pass delta explicitly for relative-error workloads"
                )
            delta = delta_for_absolute(guarantee.epsilon, aggregate, num_keys=2)
        base = config or QuadTreeConfig()
        config = QuadTreeConfig(
            delta=delta,
            max_depth=base.max_depth,
            min_cell_points=base.min_cell_points,
            degree=base.degree,
        )

        weights = measures if aggregate is Aggregate.SUM else None
        exact = build_cumulative_2d(xs, ys, weights=weights)
        grid_x, grid_y, grid_cf = exact.sample_grid(resolution=grid_resolution)
        root = build_quadtree_surface(grid_x, grid_y, grid_cf, config)
        return cls(
            root=root,
            exact=exact,
            delta=delta,
            aggregate=aggregate,
            config=config,
            grid_resolution=grid_resolution,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def delta(self) -> float:
        """Per-cell fitting budget."""
        return self._delta

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the index answers."""
        return self._aggregate

    @property
    def num_leaves(self) -> int:
        """Number of quadtree leaf cells."""
        return len(self._root.leaves())

    @property
    def num_fitted_leaves(self) -> int:
        """Leaves carrying a fitted surface (the rest answer exactly)."""
        return sum(1 for leaf in self._root.leaves() if not leaf.is_exact)

    @property
    def config(self) -> QuadTreeConfig:
        """Quadtree configuration used at build time."""
        return self._config

    def size_in_bytes(self) -> int:
        """Footprint of the quadtree payload (8 bytes per stored float)."""
        return 8 * self._root.num_parameters

    # ------------------------------------------------------------------ #
    # Query answering
    # ------------------------------------------------------------------ #

    def _corner(self, u: float, v: float) -> float:
        """Approximate ``CF(u, v)`` via the covering leaf's model."""
        xmin, xmax, ymin, ymax = self._bounds
        if u < xmin or v < ymin:
            return 0.0
        u = xmax if u > xmax else float(u)
        v = ymax if v > ymax else float(v)
        leaf = self._root.locate(u, v)
        return leaf.evaluate(u, v)

    def estimate(self, query: RangeQuery2D) -> float:
        """Approximate rectangle aggregate by 4-corner inclusion-exclusion."""
        if query.aggregate is not self._aggregate:
            raise NotSupportedError("aggregate mismatch")
        return (
            self._corner(query.x_high, query.y_high)
            - self._corner(query.x_low, query.y_high)
            - self._corner(query.x_high, query.y_low)
            + self._corner(query.x_low, query.y_low)
        )

    def exact(self, query: RangeQuery2D) -> float:
        """Exact rectangle count from the underlying cumulative structure."""
        return self._exact.range_count(query.x_low, query.x_high, query.y_low, query.y_high)

    def _corner_batch(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Approximate ``CF`` at N corner points, grouped by quadtree leaf.

        Each point still descends the quadtree individually (the tree is a
        pointer structure), but all points landing in the same fitted leaf are
        evaluated through that leaf's surface with one design-matrix product
        instead of N scalar calls — the per-leaf analogue of the 1-D
        coefficient-matrix layout.
        """
        xmin, xmax, ymin, ymax = self._bounds
        us = np.asarray(us, dtype=np.float64)
        vs = np.asarray(vs, dtype=np.float64)
        zero = (us < xmin) | (vs < ymin)
        cu = np.minimum(us, xmax)
        cv = np.minimum(vs, ymax)
        out = np.zeros(us.shape, dtype=np.float64)

        groups: dict[int, tuple[QuadCell, list[int]]] = {}
        locate = self._root.locate
        for i in np.nonzero(~zero)[0]:
            leaf = locate(cu[i], cv[i])
            entry = groups.get(id(leaf))
            if entry is None:
                groups[id(leaf)] = (leaf, [int(i)])
            else:
                entry[1].append(int(i))
        for leaf, positions in groups.values():
            idx = np.asarray(positions, dtype=np.intp)
            if leaf.is_exact:
                pts_u, pts_v, cf = leaf.exact_points
                distances = (pts_u[None, :] - cu[idx, None]) ** 2 + (
                    pts_v[None, :] - cv[idx, None]
                ) ** 2
                out[idx] = cf[np.argmin(distances, axis=1)]
            else:
                out[idx] = leaf.surface(cu[idx], cv[idx])
        return out

    def estimate_batch(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
    ) -> np.ndarray:
        """Approximate N rectangle aggregates by batched 4-corner evaluation."""
        x_lows, x_highs, y_lows, y_highs = self._validate_rectangles(
            x_lows, x_highs, y_lows, y_highs
        )
        n = x_lows.size
        us = np.concatenate((x_highs, x_lows, x_highs, x_lows))
        vs = np.concatenate((y_highs, y_highs, y_lows, y_lows))
        corners = self._corner_batch(us, vs)
        return corners[:n] - corners[n: 2 * n] - corners[2 * n: 3 * n] + corners[3 * n:]

    def exact_batch(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
    ) -> np.ndarray:
        """Exact rectangle aggregates for N queries (per-query evaluation)."""
        x_lows, x_highs, y_lows, y_highs = self._validate_rectangles(
            x_lows, x_highs, y_lows, y_highs
        )
        range_count = self._exact.range_count
        return np.array(
            [
                range_count(x_lows[i], x_highs[i], y_lows[i], y_highs[i])
                for i in range(x_lows.size)
            ],
            dtype=np.float64,
        )

    def query_batch(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
        guarantee: Guarantee | None = None,
    ) -> BatchQueryResult:
        """Answer N rectangle queries with the semantics of :meth:`query`.

        Certificates are vectorized; only queries failing the Lemma 7
        relative certificate take the masked exact-fallback pass.
        """
        x_lows, x_highs, y_lows, y_highs = self._validate_rectangles(
            x_lows, x_highs, y_lows, y_highs
        )
        approx = self.estimate_batch(x_lows, x_highs, y_lows, y_highs)
        # Same absolute-guarantee semantics as the scalar path: answer with
        # the approximation flagged un-guaranteed when the build budget is too
        # loose (absolute_fallback=False).
        return resolve_batch_certificates(
            approx,
            error_bound=self._certified_bound,
            guarantee=guarantee,
            exact_for_mask=lambda mask: self.exact_batch(
                x_lows[mask], x_highs[mask], y_lows[mask], y_highs[mask]
            ),
            absolute_fallback=False,
        )

    @staticmethod
    def _validate_rectangles(
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        arrays = tuple(
            np.atleast_1d(np.asarray(a, dtype=np.float64))
            for a in (x_lows, x_highs, y_lows, y_highs)
        )
        if len({a.shape for a in arrays}) != 1 or arrays[0].ndim != 1:
            raise QueryError("rectangle bound arrays must be equal-length 1-D arrays")
        if np.any(arrays[1] < arrays[0]) or np.any(arrays[3] < arrays[2]):
            raise QueryError("invalid rectangle bounds")
        return arrays

    def query(self, query: RangeQuery2D, guarantee: Guarantee | None = None) -> QueryResult:
        """Answer an approximate rectangle query with guarantee handling.

        Absolute guarantees are checked against the construction-time budget
        (``4 * delta <= eps_abs``, Lemma 6); relative guarantees use the
        Lemma 7 certificate with automatic exact fallback.
        """
        approx = self.estimate(query)
        bound = self._certified_bound
        if guarantee is None:
            return QueryResult(value=approx, guaranteed=True, error_bound=bound)
        if guarantee.kind is GuaranteeKind.ABSOLUTE:
            if bound <= guarantee.epsilon + 1e-12:
                return QueryResult(value=approx, guaranteed=True, error_bound=bound)
            return QueryResult(value=approx, guaranteed=False, error_bound=bound)
        if certify_relative(approx, self._delta, guarantee.epsilon, self._aggregate, num_keys=2):
            return QueryResult(value=approx, guaranteed=True, error_bound=bound)
        exact = self.exact(query)
        return QueryResult(value=exact, guaranteed=True, exact_fallback=True, error_bound=0.0)

    def require_guarantee(self, query: RangeQuery2D, guarantee: Guarantee) -> float:
        """Answer and raise if the guarantee cannot be certified (no fallback)."""
        approx = self.estimate(query)
        bound = self._certified_bound
        if guarantee.kind is GuaranteeKind.ABSOLUTE:
            if bound > guarantee.epsilon + 1e-12:
                raise GuaranteeNotSatisfiedError(
                    f"index delta {self._delta} certifies only +/-{bound}, "
                    f"requested eps_abs={guarantee.epsilon}"
                )
            return approx
        if not certify_relative(approx, self._delta, guarantee.epsilon, self._aggregate, 2):
            raise GuaranteeNotSatisfiedError("relative-error certificate failed")
        return approx
