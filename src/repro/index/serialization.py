"""JSON serialization of built PolyFit indexes.

A built one-key index is fully described by its aggregate, delta, polynomial
degree and the list of segments (key span + polynomial coefficients).  The
exact-fallback structures are rebuilt from the stored target-function samples
when needed, so serialization stores the segment payload plus the sampled
target function.  This mirrors what a production deployment would persist:
the compact learned payload plus the raw sorted data it summarizes.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..config import Aggregate, FitConfig, IndexConfig, SegmentationConfig
from ..errors import SerializationError
from ..fitting.polynomial import Polynomial1D
from ..fitting.segmentation import Segment
from .polyfit1d import PolyFitIndex, _SegmentDirectory
from ..baselines.exact import KeyCumulativeArray
from ..baselines.aggregate_tree import AggregateSegmentTree
from ..functions.cumulative import CumulativeFunction
from ..functions.key_measure import KeyMeasureFunction

__all__ = ["index_to_dict", "index_from_dict", "save_index", "load_index"]

_FORMAT_VERSION = 1


def index_to_dict(index: PolyFitIndex) -> dict:
    """Serialize a one-key PolyFit index to a JSON-compatible dictionary."""
    segments_payload = [
        {
            "key_low": segment.key_low,
            "key_high": segment.key_high,
            "start": segment.start,
            "stop": segment.stop,
            "max_error": segment.max_error,
            "polynomial": segment.polynomial.to_dict(),
        }
        for segment in index.segments
    ]
    if index.aggregate.is_cumulative:
        function = index._cumulative  # noqa: SLF001 - serialization is a friend module
        function_payload = {
            "kind": "cumulative",
            "keys": function.keys.tolist(),
            "values": function.values.tolist(),
        }
    else:
        function = index._key_measure  # noqa: SLF001
        function_payload = {
            "kind": "key_measure",
            "keys": function.keys.tolist(),
            "values": function.measures.tolist(),
        }
    return {
        "format_version": _FORMAT_VERSION,
        "aggregate": index.aggregate.value,
        "delta": index.delta,
        "degree": index.degree,
        "fanout": index.config.fanout,
        "segmentation_method": index.config.segmentation.method,
        "segments": segments_payload,
        "function": function_payload,
    }


def index_from_dict(payload: dict) -> PolyFitIndex:
    """Rebuild a one-key PolyFit index from :func:`index_to_dict` output."""
    try:
        version = payload["format_version"]
        if version != _FORMAT_VERSION:
            raise SerializationError(f"unsupported format version {version}")
        aggregate = Aggregate(payload["aggregate"])
        delta = float(payload["delta"])
        degree = int(payload["degree"])
        fanout = int(payload["fanout"])
        method = payload["segmentation_method"]
        segments = [
            Segment(
                key_low=float(entry["key_low"]),
                key_high=float(entry["key_high"]),
                start=int(entry["start"]),
                stop=int(entry["stop"]),
                polynomial=Polynomial1D.from_dict(entry["polynomial"]),
                max_error=float(entry["max_error"]),
            )
            for entry in payload["segments"]
        ]
        function_payload = payload["function"]
        keys = np.asarray(function_payload["keys"], dtype=np.float64)
        values = np.asarray(function_payload["values"], dtype=np.float64)
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"malformed index payload: {exc}") from exc

    config = IndexConfig(
        fit=FitConfig(degree=degree),
        segmentation=SegmentationConfig(delta=delta, method=method),
        fanout=fanout,
    )
    directory = _SegmentDirectory.from_segments(segments)

    cumulative = None
    key_measure = None
    segment_tree = None
    exact_fallback = None
    if aggregate.is_cumulative:
        cumulative = CumulativeFunction(keys=keys, values=values, aggregate=aggregate)
        exact_fallback = KeyCumulativeArray.from_cumulative(cumulative)
    else:
        key_measure = KeyMeasureFunction(keys=keys, measures=values, aggregate=aggregate)
        per_segment = np.array(
            [
                values[segment.start: segment.stop].max()
                if aggregate is Aggregate.MAX
                else values[segment.start: segment.stop].min()
                for segment in segments
            ]
        )
        segment_tree = AggregateSegmentTree(
            keys=np.arange(len(segments), dtype=np.float64),
            measures=per_segment,
            aggregate=aggregate,
        )

    return PolyFitIndex(
        aggregate=aggregate,
        delta=delta,
        segments=segments,
        directory=directory,
        cumulative=cumulative,
        key_measure=key_measure,
        segment_extreme_tree=segment_tree,
        exact_fallback=exact_fallback,
        config=config,
    )


def save_index(index: PolyFitIndex, path: str | Path) -> None:
    """Serialize ``index`` to a JSON file."""
    path = Path(path)
    try:
        path.write_text(json.dumps(index_to_dict(index)))
    except OSError as exc:
        raise SerializationError(f"cannot write index to {path}: {exc}") from exc


def load_index(path: str | Path) -> PolyFitIndex:
    """Load an index previously written by :func:`save_index`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read index from {path}: {exc}") from exc
    return index_from_dict(payload)
