"""JSON serialization of built PolyFit indexes.

A built one-key index is fully described by its aggregate, delta, polynomial
degree and the list of segments (key span + polynomial coefficients).  The
exact-fallback structures are rebuilt from the stored target-function samples
when needed, so serialization stores the segment payload plus the sampled
target function.  This mirrors what a production deployment would persist:
the compact learned payload plus the raw sorted data it summarizes.

The two-key index persists the raw point set, the fitted quadtree (the
build-time structure and scalar oracle) and the *flat leaf directory* —
the Morton keys, cell boundaries, coefficient tensor, exact markers and
certified error bounds — verbatim, so a loaded index serves batch queries
from byte-identical arrays without re-linearizing the tree.  The CF sample
grid exact cells reference is recomputed deterministically from the points.

:func:`save_index` / :func:`load_index` and the dict converters dispatch on
the index type (1-D payloads have no ``kind`` field for backward
compatibility; 2-D payloads carry ``kind: "polyfit2d"``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - the import would be circular at runtime
    from ..stream.updatable import UpdatablePolyFitIndex

from ..config import Aggregate, FitConfig, IndexConfig, QuadTreeConfig, SegmentationConfig
from ..errors import QueryError, SerializationError
from ..fitting.polynomial import Polynomial1D, Polynomial2D
from ..fitting.quadtree import QuadCell
from ..fitting.segmentation import Segment
from .directory import QuadDirectory, SegmentDirectory
from .polyfit1d import PolyFitIndex
from .polyfit2d import PolyFit2DIndex
from ..baselines.exact import KeyCumulativeArray
from ..baselines.aggregate_tree import AggregateSegmentTree
from ..functions.cumulative import CumulativeFunction
from ..functions.cumulative2d import build_cumulative_2d
from ..functions.key_measure import KeyMeasureFunction

__all__ = [
    "index_to_dict",
    "index_from_dict",
    "save_index",
    "load_index",
    "assemble_index1d",
]

_FORMAT_VERSION = 1
_FORMAT_VERSION_2D = 1


def index_to_dict(
    index: "PolyFitIndex | PolyFit2DIndex | UpdatablePolyFitIndex",
) -> dict:
    """Serialize a PolyFit index (one- or two-key, or updatable) to a dict."""
    from ..stream.updatable import UpdatablePolyFitIndex

    if isinstance(index, UpdatablePolyFitIndex):
        return _updatable1d_to_dict(index)
    if isinstance(index, PolyFit2DIndex):
        return _index2d_to_dict(index)
    if isinstance(index, PolyFitIndex):
        return _index1d_to_dict(index)
    raise SerializationError(f"cannot serialize {type(index)!r}")


def index_from_dict(
    payload: dict,
) -> "PolyFitIndex | PolyFit2DIndex | UpdatablePolyFitIndex":
    """Rebuild a PolyFit index from :func:`index_to_dict` output."""
    if not isinstance(payload, dict):
        raise SerializationError(f"malformed index payload: {type(payload)!r}")
    if payload.get("kind") == "polyfit2d":
        return _index2d_from_dict(payload)
    if payload.get("kind") == "updatable1d":
        return _updatable1d_from_dict(payload)
    return _index1d_from_dict(payload)


# --------------------------------------------------------------------- #
# Updatable one-key index (base payload + delta log)
# --------------------------------------------------------------------- #


def _updatable1d_to_dict(index) -> dict:
    snapshot = index.snapshot().delta
    return {
        "format_version": _FORMAT_VERSION,
        "kind": "updatable1d",
        "epoch": index.epoch,
        "policy": index.policy.to_payload(),
        "base": _index1d_to_dict(index.base),
        "delta": {
            "keys": snapshot.keys.tolist(),
            "measures": snapshot.measures.tolist(),
        },
    }


def _updatable1d_from_dict(payload: dict):
    from ..stream.policy import CompactionPolicy
    from ..stream.updatable import UpdatablePolyFitIndex

    try:
        base = _index1d_from_dict(payload["base"])
        policy = CompactionPolicy.from_payload(payload["policy"])
        delta_payload = payload["delta"]
        delta_keys = np.asarray(delta_payload["keys"], dtype=np.float64)
        delta_measures = np.asarray(delta_payload["measures"], dtype=np.float64)
        epoch = int(payload["epoch"])
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"malformed updatable index payload: {exc}") from exc
    return UpdatablePolyFitIndex._restore(  # noqa: SLF001 - friend module
        base, policy, delta_keys, delta_measures, epoch=epoch
    )


# --------------------------------------------------------------------- #
# One-key index
# --------------------------------------------------------------------- #


def _index1d_to_dict(index: PolyFitIndex) -> dict:
    segments_payload = [
        {
            "key_low": segment.key_low,
            "key_high": segment.key_high,
            "start": segment.start,
            "stop": segment.stop,
            "max_error": segment.max_error,
            "polynomial": segment.polynomial.to_dict(),
        }
        for segment in index.segments
    ]
    if index.aggregate.is_cumulative:
        function = index._cumulative  # noqa: SLF001 - serialization is a friend module
        function_payload = {
            "kind": "cumulative",
            "keys": function.keys.tolist(),
            "values": function.values.tolist(),
        }
    else:
        function = index._key_measure  # noqa: SLF001
        function_payload = {
            "kind": "key_measure",
            "keys": function.keys.tolist(),
            "values": function.measures.tolist(),
        }
    return {
        "format_version": _FORMAT_VERSION,
        "aggregate": index.aggregate.value,
        "delta": index.delta,
        "degree": index.degree,
        "fanout": index.config.fanout,
        "segmentation_method": index.config.segmentation.method,
        "segments": segments_payload,
        "function": function_payload,
    }


def _index1d_from_dict(payload: dict) -> PolyFitIndex:
    try:
        version = payload["format_version"]
        if version != _FORMAT_VERSION:
            raise SerializationError(f"unsupported format version {version}")
        aggregate = Aggregate(payload["aggregate"])
        delta = float(payload["delta"])
        degree = int(payload["degree"])
        fanout = int(payload["fanout"])
        method = payload["segmentation_method"]
        segments = [
            Segment(
                key_low=float(entry["key_low"]),
                key_high=float(entry["key_high"]),
                start=int(entry["start"]),
                stop=int(entry["stop"]),
                polynomial=Polynomial1D.from_dict(entry["polynomial"]),
                max_error=float(entry["max_error"]),
            )
            for entry in payload["segments"]
        ]
        function_payload = payload["function"]
        keys = np.asarray(function_payload["keys"], dtype=np.float64)
        values = np.asarray(function_payload["values"], dtype=np.float64)
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"malformed index payload: {exc}") from exc

    return assemble_index1d(
        aggregate=aggregate,
        delta=delta,
        degree=degree,
        fanout=fanout,
        segmentation_method=method,
        segments=segments,
        function_keys=keys,
        function_values=values,
    )


def assemble_index1d(
    *,
    aggregate: Aggregate,
    delta: float,
    degree: int,
    fanout: int,
    segmentation_method: str,
    segments: list[Segment],
    function_keys: np.ndarray,
    function_values: np.ndarray,
    config: IndexConfig | None = None,
) -> PolyFitIndex:
    """Assemble a one-key index from its persisted payload pieces.

    Shared by the JSON and binary codecs (and by streaming compaction):
    given the fitted segments and the sampled target function, rebuild the
    directory and the exact-fallback structures exactly like the original
    construction did.  ``config`` overrides the reconstructed configuration
    when the caller still holds the original (compaction preserves the
    solver/early-accept knobs that are not serialized).
    """
    keys = function_keys
    values = function_values
    if config is None:
        config = IndexConfig(
            fit=FitConfig(degree=degree),
            segmentation=SegmentationConfig(delta=delta, method=segmentation_method),
            fanout=fanout,
        )
    directory = SegmentDirectory.from_segments(segments)

    cumulative = None
    key_measure = None
    segment_tree = None
    exact_fallback = None
    if aggregate.is_cumulative:
        cumulative = CumulativeFunction(keys=keys, values=values, aggregate=aggregate)
        exact_fallback = KeyCumulativeArray.from_cumulative(cumulative)
    else:
        key_measure = KeyMeasureFunction(keys=keys, measures=values, aggregate=aggregate)
        per_segment = np.array(
            [
                values[segment.start: segment.stop].max()
                if aggregate is Aggregate.MAX
                else values[segment.start: segment.stop].min()
                for segment in segments
            ]
        )
        segment_tree = AggregateSegmentTree(
            keys=np.arange(len(segments), dtype=np.float64),
            measures=per_segment,
            aggregate=aggregate,
        )

    return PolyFitIndex(
        aggregate=aggregate,
        delta=delta,
        segments=segments,
        directory=directory,
        cumulative=cumulative,
        key_measure=key_measure,
        segment_extreme_tree=segment_tree,
        exact_fallback=exact_fallback,
        config=config,
    )


# --------------------------------------------------------------------- #
# Two-key index
# --------------------------------------------------------------------- #


def _quadcell_to_dict(cell: QuadCell) -> dict:
    payload: dict = {
        "x_low": cell.x_low,
        "x_high": cell.x_high,
        "y_low": cell.y_low,
        "y_high": cell.y_high,
        "depth": cell.depth,
        "max_error": cell.max_error,
        "surface": None if cell.surface is None else cell.surface.to_dict(),
        "exact_points": None,
        "children": [_quadcell_to_dict(child) for child in cell.children],
    }
    if cell.exact_points is not None:
        us, vs, cf = cell.exact_points
        payload["exact_points"] = [us.tolist(), vs.tolist(), cf.tolist()]
    return payload


def _quadcell_from_dict(payload: dict) -> QuadCell:
    cell = QuadCell(
        x_low=float(payload["x_low"]),
        x_high=float(payload["x_high"]),
        y_low=float(payload["y_low"]),
        y_high=float(payload["y_high"]),
        depth=int(payload["depth"]),
        max_error=float(payload["max_error"]),
    )
    if payload["surface"] is not None:
        cell.surface = Polynomial2D.from_dict(payload["surface"])
    if payload["exact_points"] is not None:
        us, vs, cf = payload["exact_points"]
        cell.exact_points = (
            np.asarray(us, dtype=np.float64),
            np.asarray(vs, dtype=np.float64),
            np.asarray(cf, dtype=np.float64),
        )
    cell.children = [_quadcell_from_dict(child) for child in payload["children"]]
    return cell


def _index2d_to_dict(index: PolyFit2DIndex) -> dict:
    exact = index._exact  # noqa: SLF001 - serialization is a friend module
    return {
        "format_version": _FORMAT_VERSION_2D,
        "kind": "polyfit2d",
        "aggregate": index.aggregate.value,
        "delta": index.delta,
        "grid_resolution": index.grid_resolution,
        "config": {
            "delta": index.config.delta,
            "max_depth": index.config.max_depth,
            "min_cell_points": index.config.min_cell_points,
            "degree": index.config.degree,
        },
        "points": {
            "xs": exact.xs.tolist(),
            "ys": exact.ys.tolist(),
            "weights": None if exact.weights is None else exact.weights.tolist(),
        },
        "quadtree": _quadcell_to_dict(index._root),  # noqa: SLF001
        "directory": index.directory.to_dict(),
    }


def _index2d_from_dict(payload: dict) -> PolyFit2DIndex:
    try:
        version = payload["format_version"]
        if version != _FORMAT_VERSION_2D:
            raise SerializationError(f"unsupported 2-D format version {version}")
        aggregate = Aggregate(payload["aggregate"])
        delta = float(payload["delta"])
        grid_resolution = int(payload["grid_resolution"])
        config_payload = payload["config"]
        config = QuadTreeConfig(
            delta=float(config_payload["delta"]),
            max_depth=int(config_payload["max_depth"]),
            min_cell_points=int(config_payload["min_cell_points"]),
            degree=int(config_payload["degree"]),
        )
        points = payload["points"]
        xs = np.asarray(points["xs"], dtype=np.float64)
        ys = np.asarray(points["ys"], dtype=np.float64)
        weights = points["weights"]
        root = _quadcell_from_dict(payload["quadtree"])
        directory_payload = payload["directory"]
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"malformed 2-D index payload: {exc}") from exc

    exact = build_cumulative_2d(
        xs, ys, weights=None if weights is None else np.asarray(weights, dtype=np.float64)
    )
    # The CF sample grid is a pure function of the points and the resolution;
    # recomputing it keeps the payload compact while the directory's flat
    # arrays round-trip verbatim.
    grid_x, grid_y, grid_cf = exact.sample_grid(resolution=grid_resolution)
    try:
        directory = QuadDirectory.from_dict(directory_payload, grid_x, grid_y, grid_cf)
    except (KeyError, ValueError, TypeError, QueryError) as exc:
        raise SerializationError(f"malformed 2-D directory payload: {exc}") from exc
    return PolyFit2DIndex(
        root=root,
        exact=exact,
        delta=delta,
        aggregate=aggregate,
        config=config,
        grid_resolution=grid_resolution,
        directory=directory,
        grid=(grid_x, grid_y, grid_cf),
    )


# --------------------------------------------------------------------- #
# File round-tripping
# --------------------------------------------------------------------- #


#: File suffixes that select the binary codec when ``format="auto"``.
#: ``.npz`` is deliberately absent: the raw-buffer file is not a zip archive,
#: so advertising it under numpy's suffix would break ``np.load`` callers.
_BINARY_SUFFIXES = (".pfbin", ".bin")


def save_index(
    index: "PolyFitIndex | PolyFit2DIndex | UpdatablePolyFitIndex",
    path: str | Path,
    *,
    format: str = "auto",
) -> None:
    """Serialize ``index`` to a file.

    ``format`` selects the codec: ``"json"`` (the portable text format),
    ``"binary"`` (the zero-copy raw-buffer format of
    :mod:`repro.index.codec`), or ``"auto"`` (default), which picks binary
    for ``.pfbin``/``.bin`` suffixes and JSON otherwise.
    """
    path = Path(path)
    if format == "auto":
        format = "binary" if path.suffix in _BINARY_SUFFIXES else "json"
    if format == "binary":
        from .codec import save_index_binary

        save_index_binary(index, path)
        return
    if format != "json":
        raise SerializationError(f"unknown index format {format!r}")
    try:
        path.write_text(json.dumps(index_to_dict(index)))
    except OSError as exc:
        raise SerializationError(f"cannot write index to {path}: {exc}") from exc


def load_index(
    path: str | Path, *, mmap: bool = True, verify: bool = False
) -> "PolyFitIndex | PolyFit2DIndex | UpdatablePolyFitIndex":
    """Load an index previously written by :func:`save_index`.

    The codec is sniffed from the file content (the binary format starts
    with a fixed magic string), so callers never need to remember how an
    index was saved.  ``mmap`` controls whether a binary file is mapped
    zero-copy (the default) or read eagerly; ``verify`` checks the binary
    codec's per-array checksums while loading.  Both are ignored for JSON
    (which is self-validating during decode).
    """
    path = Path(path)
    from .codec import BINARY_MAGIC, load_index_binary

    try:
        with open(path, "rb") as handle:
            head = handle.read(len(BINARY_MAGIC))
    except OSError as exc:
        raise SerializationError(f"cannot read index from {path}: {exc}") from exc
    if head == BINARY_MAGIC:
        return load_index_binary(path, mmap=mmap, verify=verify)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read index from {path}: {exc}") from exc
    return index_from_dict(payload)
