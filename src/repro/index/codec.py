"""Zero-copy binary codec for built PolyFit indexes.

The JSON codec (:mod:`repro.index.serialization`) is portable but pays a
float-parsing pass proportional to the dataset on every load.  This module
persists the same payload as one *raw-buffer* file that memory-maps:

``magic (8 bytes) | header length (uint64 LE) | JSON header | array blobs``

The JSON header carries the scalar metadata (aggregate, delta, configs, the
pointer-quadtree oracle for 2-D) plus an array table mapping each array name
to its offset, shape and dtype; every blob is stored C-contiguous and
64-byte aligned.  :func:`load_index_binary` maps the file once with
``numpy.memmap(mode="r")`` and materializes each array as a zero-copy view
into the mapping, so the flat cell-directory arrays the batch query path
reads (locate keys, cell bounds, coefficient tensors, the sampled target
function / CF grid) are backed directly by page cache.  Worker processes of
a :class:`~repro.queries.sharding.ShardedQueryEngine` that open the same
file therefore *share* those pages instead of each re-parsing floats —
process-level sharding of a read-only directory costs no extra memory.

A plain ``.npz`` archive was rejected for this role on purpose: npz is a
zip container, so ``numpy.load(..., mmap_mode="r")`` silently falls back to
eager reads.  The raw-buffer layout keeps the mmap guarantee while staying
within one file.

:func:`save_index_binary` / :func:`load_index_binary` are also reachable
through :func:`repro.index.serialization.save_index` (``format="binary"``
or a ``.pfbin`` suffix) and :func:`~repro.index.serialization.load_index`,
which sniffs the magic bytes.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - the import would be circular at runtime
    from ..stream.updatable import UpdatablePolyFitIndex

from ..config import Aggregate, QuadTreeConfig
from ..errors import SerializationError
from ..fitting.polynomial import Polynomial1D, SurfaceBank
from .atomic import atomic_write
from ..fitting.segmentation import Segment
from ..functions.cumulative2d import Cumulative2D
from .directory import QuadDirectory
from .polyfit1d import PolyFitIndex
from .polyfit2d import PolyFit2DIndex

__all__ = [
    "BINARY_MAGIC",
    "write_array_store",
    "read_array_store",
    "save_index_binary",
    "load_index_binary",
]

#: Leading bytes of every PolyFit binary index file (includes the container
#: version; bump the trailing byte on incompatible layout changes).
BINARY_MAGIC = b"PFITBIN\x01"

#: Blob alignment in bytes.  64 covers every dtype alignment requirement and
#: keeps each array cache-line aligned inside the mapping.
_ALIGNMENT = 64

#: v2 adds the optional 2-D point-extreme payload (``ext_*`` arrays plus the
#: ``extreme_aggregate`` meta key).  v3 adds a ``crc32`` field per array-table
#: entry (verified behind the ``verify=`` knob), the ``updatable2d`` kind and
#: the optional ``wal_counts`` checkpoint metadata.  Every addition is purely
#: additive, so the reader accepts all three versions; v1/v2 entries simply
#: carry no checksum to verify.
_BINARY_FORMAT_VERSION = 3
_SUPPORTED_FORMAT_VERSIONS = frozenset({1, 2, 3})


def _aligned(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


# --------------------------------------------------------------------- #
# Generic array store
# --------------------------------------------------------------------- #


def write_array_store(
    path: str | Path,
    arrays: dict[str, np.ndarray],
    meta: dict,
    *,
    opener=None,
) -> None:
    """Write named arrays plus JSON metadata as one mappable binary file.

    Arrays are stored C-contiguous at 64-byte-aligned offsets; ``meta`` must
    be JSON-serializable.  The layout is fully described by the embedded
    header, so readers need no out-of-band schema.  Each table entry carries
    the CRC-32 of its blob (format v3), checked on load behind the
    ``verify=`` knob of :func:`read_array_store`.

    The file lands via :func:`~repro.index.atomic.atomic_write` (tmp +
    fsync + ``os.replace``): a crash at any point of the write leaves the
    previous version of ``path`` intact, plus at most a stale ``.tmp`` file.
    ``opener`` is the atomic writer's fault-injection hook.
    """
    contiguous: dict[str, np.ndarray] = {}
    table: dict[str, dict] = {}
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _aligned(offset)
        contiguous[name] = array
        table[name] = {
            "offset": offset,
            "shape": list(array.shape),
            "dtype": array.dtype.str,
            "crc32": zlib.crc32(array.data),
        }
        offset += array.nbytes
    header = json.dumps({"meta": meta, "arrays": table}).encode("utf-8")
    data_start = _aligned(len(BINARY_MAGIC) + 8 + len(header))

    def _stream(handle) -> None:
        handle.write(BINARY_MAGIC)
        handle.write(struct.pack("<Q", len(header)))
        handle.write(header)
        position = len(BINARY_MAGIC) + 8 + len(header)
        for name, array in contiguous.items():
            target = data_start + table[name]["offset"]
            handle.write(b"\x00" * (target - position))
            # The arrays are C-contiguous; writing the buffer directly
            # streams the bytes without materializing a tobytes() copy.
            handle.write(array.data)
            position = target + array.nbytes

    atomic_write(Path(path), _stream, opener=opener)


def read_array_store(
    path: str | Path, *, mmap: bool = True, verify: bool = False
) -> tuple[dict, dict[str, np.ndarray]]:
    """Read a :func:`write_array_store` file back as ``(meta, arrays)``.

    With ``mmap=True`` the file is mapped read-only and every returned array
    is a zero-copy view into the mapping (shared across processes through
    the page cache); with ``mmap=False`` the bytes are read eagerly once and
    the arrays are read-only views into that private buffer.

    ``verify=True`` recomputes each blob's CRC-32 against the table entry
    (format v3; v1/v2 entries carry no checksum and are skipped) and raises
    :class:`~repro.errors.SerializationError` on a mismatch.  With mmap the
    check faults every page in once — the price of catching bit rot before
    it reaches an answer; the default stays lazy.
    """
    path = Path(path)
    try:
        if mmap:
            buffer: np.ndarray | bytes = np.memmap(path, dtype=np.uint8, mode="r")
        else:
            buffer = path.read_bytes()
    except (OSError, ValueError) as exc:
        raise SerializationError(f"cannot read binary index from {path}: {exc}") from exc

    total = len(buffer)
    prefix = len(BINARY_MAGIC) + 8
    if total < prefix or bytes(buffer[: len(BINARY_MAGIC)]) != BINARY_MAGIC:
        raise SerializationError(f"{path} is not a PolyFit binary index (bad magic)")
    (header_length,) = struct.unpack("<Q", bytes(buffer[len(BINARY_MAGIC): prefix]))
    if prefix + header_length > total:
        raise SerializationError(f"truncated binary index header in {path}")
    try:
        payload = json.loads(bytes(buffer[prefix: prefix + header_length]).decode("utf-8"))
        meta = payload["meta"]
        table = payload["arrays"]
    except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError) as exc:
        raise SerializationError(f"malformed binary index header in {path}: {exc}") from exc

    data_start = _aligned(prefix + header_length)
    arrays: dict[str, np.ndarray] = {}
    try:
        for name, entry in table.items():
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(dim) for dim in entry["shape"])
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            start = data_start + int(entry["offset"])
            if start + count * dtype.itemsize > total:
                raise SerializationError(f"truncated array {name!r} in {path}")
            array = np.frombuffer(
                buffer, dtype=dtype, count=count, offset=start
            ).reshape(shape)
            if verify and "crc32" in entry:
                actual = zlib.crc32(
                    np.ascontiguousarray(array).view(np.uint8).reshape(-1).data
                )
                if actual != int(entry["crc32"]) & 0xFFFFFFFF:
                    raise SerializationError(
                        f"checksum mismatch for array {name!r} in {path}: "
                        f"stored {int(entry['crc32']):#010x}, computed {actual:#010x}"
                    )
            arrays[name] = array
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"malformed array table in {path}: {exc}") from exc
    return meta, arrays


# --------------------------------------------------------------------- #
# One-key index
# --------------------------------------------------------------------- #


def _index1d_to_store(index: PolyFitIndex) -> tuple[dict, dict[str, np.ndarray]]:
    if index.aggregate.is_cumulative:
        function = index._cumulative  # noqa: SLF001 - codec is a friend module
        function_keys, function_values = function.keys, function.values
    else:
        function = index._key_measure  # noqa: SLF001
        function_keys, function_values = function.keys, function.measures
    segments = index.segments
    coeff_lengths = np.array(
        [segment.polynomial.coeffs.size for segment in segments], dtype=np.int64
    )
    meta = {
        "format_version": _BINARY_FORMAT_VERSION,
        "kind": "polyfit1d",
        "aggregate": index.aggregate.value,
        "delta": index.delta,
        "degree": index.degree,
        "fanout": index.config.fanout,
        "segmentation_method": index.config.segmentation.method,
    }
    arrays = {
        "function_keys": function_keys,
        "function_values": function_values,
        "seg_key_low": np.array([s.key_low for s in segments], dtype=np.float64),
        "seg_key_high": np.array([s.key_high for s in segments], dtype=np.float64),
        "seg_start": np.array([s.start for s in segments], dtype=np.int64),
        "seg_stop": np.array([s.stop for s in segments], dtype=np.int64),
        "seg_max_error": np.array([s.max_error for s in segments], dtype=np.float64),
        "poly_coeff_len": coeff_lengths,
        "poly_coeffs": np.concatenate([s.polynomial.coeffs for s in segments]),
        "poly_shift": np.array([s.polynomial.shift for s in segments], dtype=np.float64),
        "poly_scale": np.array([s.polynomial.scale for s in segments], dtype=np.float64),
    }
    return meta, arrays


def _index1d_from_store(meta: dict, arrays: dict[str, np.ndarray]) -> PolyFitIndex:
    from .serialization import assemble_index1d

    coeff_lengths = arrays["poly_coeff_len"]
    offsets = np.concatenate(([0], np.cumsum(coeff_lengths)))
    coeffs = arrays["poly_coeffs"]
    shifts = arrays["poly_shift"]
    scales = arrays["poly_scale"]
    segments = [
        Segment(
            key_low=float(arrays["seg_key_low"][row]),
            key_high=float(arrays["seg_key_high"][row]),
            start=int(arrays["seg_start"][row]),
            stop=int(arrays["seg_stop"][row]),
            polynomial=Polynomial1D(
                coeffs=coeffs[offsets[row]: offsets[row + 1]],
                shift=float(shifts[row]),
                scale=float(scales[row]),
            ),
            max_error=float(arrays["seg_max_error"][row]),
        )
        for row in range(coeff_lengths.size)
    ]
    return assemble_index1d(
        aggregate=Aggregate(meta["aggregate"]),
        delta=float(meta["delta"]),
        degree=int(meta["degree"]),
        fanout=int(meta["fanout"]),
        segmentation_method=meta["segmentation_method"],
        segments=segments,
        function_keys=arrays["function_keys"],
        function_values=arrays["function_values"],
    )


# --------------------------------------------------------------------- #
# Two-key index
# --------------------------------------------------------------------- #


def _index2d_to_store(index: PolyFit2DIndex) -> tuple[dict, dict[str, np.ndarray]]:
    from .serialization import _quadcell_to_dict

    exact = index._exact  # noqa: SLF001 - codec is a friend module
    directory = index.directory
    meta = {
        "format_version": _BINARY_FORMAT_VERSION,
        "kind": "polyfit2d",
        "aggregate": index.aggregate.value,
        "delta": index.delta,
        "grid_resolution": index.grid_resolution,
        "config": {
            "delta": index.config.delta,
            "max_depth": index.config.max_depth,
            "min_cell_points": index.config.min_cell_points,
            "degree": index.config.degree,
        },
        "depth": directory.depth,
        "root_bounds": list(directory.root_bounds),
        "has_weights": exact.weights is not None,
        # The pointer quadtree is the scalar oracle; it is small next to the
        # point/grid arrays, so it rides in the JSON header verbatim.
        "quadtree": _quadcell_to_dict(index._root),  # noqa: SLF001
    }
    arrays = {
        "xs": exact.xs,
        "ys": exact.ys,
        "order_by_x": np.asarray(exact.order_by_x, dtype=np.int64),
        "ys_sorted_by_x": exact.ys_sorted_by_x,
        "grid_x": directory.grid_x,
        "grid_y": directory.grid_y,
        "grid_cf": directory.grid_cf,
        "dir_keys": directory.keys,
        "dir_lows": directory.lows,
        "dir_highs": directory.highs,
        "dir_errors": directory.errors,
        "dir_exact_mask": directory.exact_mask,
        "dir_exact_ranges": np.asarray(directory.exact_ranges, dtype=np.int64),
    }
    for name, array in directory.surfaces.to_arrays().items():
        arrays[f"surf_{name}"] = array
    if exact.weights is not None:
        arrays["weights"] = exact.weights
        arrays["weights_sorted_by_x"] = exact.weights_sorted_by_x
    extremes = directory.point_extremes
    if extremes is not None:
        # The leaf-sorted point arrays are enough to rebuild the payload:
        # attach_extremes re-runs the deterministic locate pass on load, and
        # a stable sort of already-grouped points is the identity.
        meta["extreme_aggregate"] = (
            Aggregate.MAX.value if extremes.maximize else Aggregate.MIN.value
        )
        arrays["ext_xs"] = extremes.xs
        arrays["ext_ys"] = extremes.ys
        arrays["ext_measures"] = extremes.measures
    return meta, arrays


def _index2d_from_store(meta: dict, arrays: dict[str, np.ndarray]) -> PolyFit2DIndex:
    from .serialization import _quadcell_from_dict

    has_weights = bool(meta["has_weights"])
    exact = Cumulative2D(
        xs=arrays["xs"],
        ys=arrays["ys"],
        order_by_x=arrays["order_by_x"],
        ys_sorted_by_x=arrays["ys_sorted_by_x"],
        weights=arrays["weights"] if has_weights else None,
        weights_sorted_by_x=arrays["weights_sorted_by_x"] if has_weights else None,
    )
    surfaces = SurfaceBank.from_arrays(
        {
            "coeffs": arrays["surf_coeffs"],
            "shift_u": arrays["surf_shift_u"],
            "scale_u": arrays["surf_scale_u"],
            "shift_v": arrays["surf_shift_v"],
            "scale_v": arrays["surf_scale_v"],
        }
    )
    directory = QuadDirectory(
        keys=arrays["dir_keys"],
        lows=arrays["dir_lows"],
        highs=arrays["dir_highs"],
        errors=arrays["dir_errors"],
        exact_mask=arrays["dir_exact_mask"],
        depth=int(meta["depth"]),
        root_bounds=tuple(meta["root_bounds"]),
        surfaces=surfaces,
        exact_ranges=arrays["dir_exact_ranges"],
        grid_x=arrays["grid_x"],
        grid_y=arrays["grid_y"],
        grid_cf=arrays["grid_cf"],
    )
    extreme_aggregate = meta.get("extreme_aggregate")
    if extreme_aggregate is not None:
        directory.attach_extremes(
            arrays["ext_xs"],
            arrays["ext_ys"],
            arrays["ext_measures"],
            Aggregate(extreme_aggregate),
        )
    config_payload = meta["config"]
    config = QuadTreeConfig(
        delta=float(config_payload["delta"]),
        max_depth=int(config_payload["max_depth"]),
        min_cell_points=int(config_payload["min_cell_points"]),
        degree=int(config_payload["degree"]),
    )
    return PolyFit2DIndex(
        root=_quadcell_from_dict(meta["quadtree"]),
        exact=exact,
        delta=float(meta["delta"]),
        aggregate=Aggregate(meta["aggregate"]),
        config=config,
        grid_resolution=int(meta["grid_resolution"]),
        directory=directory,
        grid=(arrays["grid_x"], arrays["grid_y"], arrays["grid_cf"]),
    )


# --------------------------------------------------------------------- #
# Updatable one-key index (base payload + persisted delta log)
# --------------------------------------------------------------------- #


def _wal_counts_meta(index) -> dict | None:
    """Checkpoint position: how much of the attached WAL this file subsumes.

    Recorded at save time so :meth:`recover` can skip exactly the insert and
    compaction records the checkpoint already contains — the file and its
    counts land atomically together, which makes checkpoint-then-crash
    recoverable no matter where the crash falls.
    """
    wal = getattr(index, "_wal", None)
    if wal is None:
        return None
    return {"inserts": wal.insert_records, "compactions": wal.compaction_records}


def _updatable1d_to_store(index) -> tuple[dict, dict[str, np.ndarray]]:
    """Base index arrays plus the sorted delta log of the current epoch.

    The file is one immutable snapshot: every shard worker that maps it sees
    the same base directory *and* the same buffered records, so a consistent
    flush epoch — the write path's analogue of the read path's shared pages.
    """
    base_meta, arrays = _index1d_to_store(index.base)
    snapshot = index.snapshot().delta
    arrays = dict(arrays)
    arrays["delta_keys"] = snapshot.keys
    arrays["delta_measures"] = snapshot.measures
    meta = {
        "format_version": _BINARY_FORMAT_VERSION,
        "kind": "updatable1d",
        "epoch": index.epoch,
        "policy": index.policy.to_payload(),
        "base": base_meta,
    }
    wal_counts = _wal_counts_meta(index)
    if wal_counts is not None:
        meta["wal_counts"] = wal_counts
    return meta, arrays


def _updatable1d_from_store(meta: dict, arrays: dict[str, np.ndarray]):
    from ..stream.policy import CompactionPolicy
    from ..stream.updatable import UpdatablePolyFitIndex

    base = _index1d_from_store(meta["base"], arrays)
    index = UpdatablePolyFitIndex._restore(  # noqa: SLF001 - codec is a friend module
        base,
        CompactionPolicy.from_payload(meta["policy"]),
        arrays["delta_keys"],
        arrays["delta_measures"],
        epoch=int(meta["epoch"]),
    )
    index._restored_wal_counts = meta.get("wal_counts")  # noqa: SLF001
    return index


# --------------------------------------------------------------------- #
# Updatable two-key index (base payload + buffered points)
# --------------------------------------------------------------------- #


def _updatable2d_to_store(index) -> tuple[dict, dict[str, np.ndarray]]:
    """Base 2-D payload plus the buffered points, in arrival order.

    Arrival order (not the sorted snapshot) so a restored index's compaction
    concatenates the chunks exactly as the live one would — replay and
    checkpoint recovery stay bit-identical.
    """
    from ..config import Aggregate as _Aggregate

    base_meta, arrays = _index2d_to_store(index.base)
    arrays = dict(arrays)
    xs, ys, ws = index._buffer_arrays()  # noqa: SLF001 - codec is a friend module
    arrays["delta_xs"] = xs
    arrays["delta_ys"] = ys
    if index.aggregate is _Aggregate.SUM:
        arrays["delta_ws"] = ws
    meta = {
        "format_version": _BINARY_FORMAT_VERSION,
        "kind": "updatable2d",
        "epoch": index.epoch,
        "policy": index.policy.to_payload(),
        "base": base_meta,
    }
    wal_counts = _wal_counts_meta(index)
    if wal_counts is not None:
        meta["wal_counts"] = wal_counts
    return meta, arrays


def _updatable2d_from_store(meta: dict, arrays: dict[str, np.ndarray]):
    from ..stream.policy import CompactionPolicy
    from ..stream.updatable2d import UpdatablePolyFit2DIndex

    base = _index2d_from_store(meta["base"], arrays)
    index = UpdatablePolyFit2DIndex._restore(  # noqa: SLF001 - codec is a friend module
        base,
        CompactionPolicy.from_payload(meta["policy"]),
        arrays["delta_xs"],
        arrays["delta_ys"],
        arrays.get("delta_ws"),
        epoch=int(meta["epoch"]),
    )
    index._restored_wal_counts = meta.get("wal_counts")  # noqa: SLF001
    return index


# --------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------- #


def save_index_binary(
    index: "PolyFitIndex | PolyFit2DIndex | UpdatablePolyFitIndex",
    path: str | Path,
    *,
    opener=None,
) -> None:
    """Serialize a built index to the zero-copy binary format (atomically)."""
    from ..stream.updatable import UpdatablePolyFitIndex
    from ..stream.updatable2d import UpdatablePolyFit2DIndex

    if isinstance(index, UpdatablePolyFitIndex):
        meta, arrays = _updatable1d_to_store(index)
    elif isinstance(index, UpdatablePolyFit2DIndex):
        meta, arrays = _updatable2d_to_store(index)
    elif isinstance(index, PolyFit2DIndex):
        meta, arrays = _index2d_to_store(index)
    elif isinstance(index, PolyFitIndex):
        meta, arrays = _index1d_to_store(index)
    else:
        raise SerializationError(f"cannot binary-serialize {type(index)!r}")
    write_array_store(path, arrays, meta, opener=opener)


def load_index_binary(
    path: str | Path, *, mmap: bool = True, verify: bool = False
) -> "PolyFitIndex | PolyFit2DIndex | UpdatablePolyFitIndex":
    """Load an index written by :func:`save_index_binary`.

    With ``mmap=True`` (default) the heavy arrays — the sampled target
    function, point set, CF grid and the flat directory — are read-only
    views into the OS page cache, so concurrent loads of the same file
    (e.g. process-pool shard workers) share physical memory.
    ``verify=True`` checks every blob's CRC-32 first (see
    :func:`read_array_store`).
    """
    meta, arrays = read_array_store(path, mmap=mmap, verify=verify)
    try:
        kind = meta["kind"]
        version = meta["format_version"]
        if version not in _SUPPORTED_FORMAT_VERSIONS:
            raise SerializationError(f"unsupported binary format version {version}")
        if kind == "polyfit1d":
            return _index1d_from_store(meta, arrays)
        if kind == "polyfit2d":
            return _index2d_from_store(meta, arrays)
        if kind == "updatable1d":
            return _updatable1d_from_store(meta, arrays)
        if kind == "updatable2d":
            return _updatable2d_from_store(meta, arrays)
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"malformed binary index payload: {exc}") from exc
    raise SerializationError(f"unknown binary index kind {kind!r}")
