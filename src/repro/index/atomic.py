"""Crash-safe file replacement: write to a tmp name, fsync, ``os.replace``.

Every durable artifact the system writes — codec files, fleet manifests,
checkpoints — goes through :func:`atomic_write`, so a crash at *any* byte
offset of the write leaves either the complete previous version or the
complete new version on disk, never a torn hybrid:

1. the payload is streamed into ``<name>.tmp`` in the same directory;
2. the tmp file is flushed and fsync'd (the data is durable before it can
   become visible);
3. ``os.replace`` swaps it in — atomic on POSIX and Windows;
4. the directory entry is fsync'd best-effort so the rename itself survives
   a power cut (some filesystems journal it anyway; a directory that cannot
   be opened, e.g. on Windows, is skipped).

A crash before step 3 leaves a stale ``*.tmp`` beside the intact previous
file; :func:`prune_tmp_files` removes them on the next load.  The
``opener`` hook exists for fault injection: tests substitute a
:class:`~repro.testing.faults.FaultyFile` that dies at an exact byte offset
and then assert the previous version still loads.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable

from ..errors import SerializationError

__all__ = ["TMP_SUFFIX", "atomic_write", "prune_tmp_files"]

#: Suffix of in-flight temporary files (``<final-name>.tmp``).
TMP_SUFFIX = ".tmp"


def _default_opener(path: Path):
    return open(path, "wb")


def _sync(handle) -> None:
    """Durability barrier: prefer the handle's own ``sync`` (fault hooks),
    fall back to ``flush`` + ``os.fsync``."""
    sync = getattr(handle, "sync", None)
    if sync is not None:
        sync()
        return
    handle.flush()
    os.fsync(handle.fileno())


def _sync_directory(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on a dir fd may be refused
        pass
    finally:
        os.close(fd)


def atomic_write(
    path: str | Path,
    writer: Callable[[object], None],
    *,
    opener: Callable[[Path], object] | None = None,
) -> None:
    """Write ``path`` atomically: ``writer(handle)`` streams the payload.

    ``writer`` receives a binary file handle positioned at offset 0 of the
    temporary file; when it returns, the payload is fsync'd and renamed over
    ``path``.  Raises :class:`~repro.errors.SerializationError` on OS-level
    failure.  A crash inside ``writer`` (including an injected
    :class:`~repro.testing.faults.CrashPoint`) leaves only the tmp file
    behind — the previous version of ``path`` is untouched.
    """
    path = Path(path)
    tmp = path.with_name(path.name + TMP_SUFFIX)
    opener = opener or _default_opener
    try:
        handle = opener(tmp)
        try:
            writer(handle)
            _sync(handle)
        finally:
            handle.close()
        os.replace(tmp, path)
        _sync_directory(path.parent)
    except OSError as exc:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise SerializationError(f"cannot write {path} atomically: {exc}") from exc


def prune_tmp_files(directory: str | Path) -> list[Path]:
    """Remove stale ``*.tmp`` files a crash left behind; returns the victims.

    Safe to call on every load: an in-flight :func:`atomic_write` from
    another process could in principle race, but the system's writers are
    single-process per artifact (documented in ``docs/ARCHITECTURE.md``);
    after a real crash the tmp file is garbage by definition.
    """
    removed: list[Path] = []
    for stale in sorted(Path(directory).glob(f"*{TMP_SUFFIX}")):
        try:
            stale.unlink()
            removed.append(stale)
        except OSError:  # pragma: no cover - raced or permission-denied
            continue
    return removed
