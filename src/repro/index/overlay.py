"""Read-only overlay view combining a base index with a frozen delta buffer.

The streaming write path (:mod:`repro.stream`) buffers inserted records in
memory between compactions.  Queries must keep their certified error bounds
while the buffer is non-empty, which works because the buffer's contribution
is *exact*:

* :class:`DeltaSnapshot` — an immutable, key-sorted view of buffered
  (key, measure) records for one flush epoch.  SUM/COUNT contributions are a
  prefix-sum array probed with one ``searchsorted`` per query side; MAX/MIN
  contributions go through a :class:`~repro.index.directory.RangeExtremeTable`
  over the sorted measures.  Both are O(1) NumPy calls for N queries.
* :class:`DirectoryOverlay` — the combined read view: the base index's
  certified estimate plus the snapshot's exact contribution.  The overlay is
  immutable, so shard workers (threads or forked processes) handed an
  overlay all serve the *same* epoch even while the owning updatable index
  keeps absorbing writes.

Because the delta part is exact, the overlay's absolute error equals the
base index's (``|combined - truth| = |base_est - base_truth| <= bound`` for
cumulative aggregates, and the extreme merge is 1-Lipschitz per operand), so
the Lemma 2/3/4/5 guarantee machinery applies to the combined answer
unchanged.
"""

from __future__ import annotations

import numpy as np

from ..config import Aggregate
from ..errors import DataError, NotSupportedError
from ..queries.batch import resolve_batch_certificates, validate_bounds_batch
from ..queries.types import BatchQueryResult, Guarantee, QueryResult, RangeQuery
from .directory import RangeExtremeTable
from .polyfit1d import PolyFitIndex

__all__ = ["DeltaSnapshot", "DirectoryOverlay"]


class DeltaSnapshot:
    """Immutable key-sorted view of buffered records for one flush epoch.

    Construction sorts once; every query after that is O(log m) per bound
    via ``searchsorted`` against the sorted keys plus an O(1) gather from
    the per-epoch payload (prefix sums for SUM/COUNT, a range-extreme table
    for MAX/MIN).  Duplicate keys are kept — the contribution semantics are
    per *record*, matching how the cumulative function would absorb them at
    compaction.
    """

    def __init__(self, keys: np.ndarray, measures: np.ndarray, aggregate: Aggregate) -> None:
        keys = np.asarray(keys, dtype=np.float64)
        measures = np.asarray(measures, dtype=np.float64)
        if keys.ndim != 1 or keys.shape != measures.shape:
            raise DataError("delta keys and measures must be equal-length 1-D arrays")
        order = np.argsort(keys, kind="stable")
        self.keys = np.ascontiguousarray(keys[order])
        self.measures = np.ascontiguousarray(measures[order])
        self.aggregate = aggregate
        if aggregate.is_cumulative:
            self._prefix = np.concatenate(([0.0], np.cumsum(self.measures)))
            self._extremes = None
        else:
            self._prefix = None
            self._extremes = (
                RangeExtremeTable(self.measures, maximize=aggregate is Aggregate.MAX)
                if self.measures.size
                else None
            )

    def __len__(self) -> int:
        return int(self.keys.size)

    @property
    def is_empty(self) -> bool:
        """Whether the snapshot holds no buffered records."""
        return self.keys.size == 0

    def contribution_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Exact per-query contribution of the buffered records.

        SUM/COUNT: the summed measures of buffered records with key in
        ``[low, high]`` (both ends inclusive, matching
        :meth:`~repro.functions.cumulative.CumulativeFunction.range_sum`).
        MAX/MIN: the extreme buffered measure in range, NaN when no buffered
        record falls inside (matching the empty-range convention).
        """
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        if self.aggregate.is_cumulative:
            if self._prefix is None or self.keys.size == 0:
                return np.zeros(lows.shape, dtype=np.float64)
            upper = self._prefix[np.searchsorted(self.keys, highs, side="right")]
            lower = self._prefix[np.searchsorted(self.keys, lows, side="left")]
            return upper - lower
        out = np.full(lows.shape, np.nan, dtype=np.float64)
        if self._extremes is None:
            return out
        lo = np.searchsorted(self.keys, lows, side="left")
        hi = np.searchsorted(self.keys, highs, side="right") - 1
        non_empty = hi >= lo
        if np.any(non_empty):
            out[non_empty] = self._extremes.query(lo[non_empty], hi[non_empty])
        return out

    def size_in_bytes(self) -> int:
        """Footprint of the snapshot arrays (payload included)."""
        total = int(self.keys.nbytes + self.measures.nbytes)
        if self._prefix is not None:
            total += int(self._prefix.nbytes)
        if self._extremes is not None:
            total += self._extremes.size_in_bytes()
        return total


def _combine(base: np.ndarray, delta: np.ndarray, aggregate: Aggregate) -> np.ndarray:
    """Merge the base estimate with the exact delta contribution."""
    if aggregate.is_cumulative:
        return base + delta
    # fmax/fmin ignore a NaN in one operand (empty base range or empty
    # buffered window) and propagate NaN only when both sides are empty,
    # matching the scalar empty-range convention.
    merge = np.fmax if aggregate is Aggregate.MAX else np.fmin
    return merge(base, delta)


class DirectoryOverlay:
    """Frozen combined read view: base index estimate + exact delta part.

    Exposes the same batch interface as the wrapped index
    (``estimate_batch`` / ``exact_batch`` / ``query_batch`` plus the scalar
    ``query`` / ``estimate`` / ``exact``), so :class:`~repro.queries.engine.
    QueryEngine` and :class:`~repro.queries.sharding.ShardedQueryEngine`
    consume it unchanged.  Instances are snapshots: inserts or compactions
    on the owning updatable index never mutate an existing overlay.
    """

    def __init__(self, base: PolyFitIndex, delta: DeltaSnapshot, epoch: int = 0) -> None:
        if delta.aggregate is not base.aggregate:
            raise NotSupportedError(
                f"delta snapshot aggregates {delta.aggregate.value}, "
                f"base index {base.aggregate.value}"
            )
        self._base = base
        self._delta = delta
        self._epoch = int(epoch)

    @property
    def base(self) -> PolyFitIndex:
        """The wrapped immutable base index."""
        return self._base

    @property
    def delta(self) -> DeltaSnapshot:
        """The frozen delta snapshot this overlay serves."""
        return self._delta

    @property
    def epoch(self) -> int:
        """Flush epoch of the owning updatable index when snapshotted."""
        return self._epoch

    @property
    def version(self) -> int:
        """Cache-key version: the frozen epoch (the view never mutates)."""
        return self._epoch

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the overlay answers."""
        return self._base.aggregate

    @property
    def certified_bound(self) -> float:
        """Certified absolute bound — the base's, since the delta is exact."""
        return self._base.certified_bound

    # ------------------------------------------------------------------ #
    # Batch interface
    # ------------------------------------------------------------------ #

    def estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Combined approximate answers for N ranges."""
        lows, highs = validate_bounds_batch(lows, highs)
        base = self._base.estimate_batch(lows, highs)
        if self._delta.is_empty:
            return base
        return _combine(base, self._delta.contribution_batch(lows, highs), self.aggregate)

    def exact_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Combined exact answers for N ranges."""
        lows, highs = validate_bounds_batch(lows, highs)
        base = self._base.exact_batch(lows, highs)
        if self._delta.is_empty:
            return base
        return _combine(base, self._delta.contribution_batch(lows, highs), self.aggregate)

    def query_batch(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        guarantee: Guarantee | None = None,
    ) -> BatchQueryResult:
        """Answer N queries with the same guarantee semantics as the base.

        The certified bound is unchanged by the exact delta part, so the
        Lemma 3/5 relative certificate applies to the combined value; failing
        queries take the combined exact fallback.
        """
        lows, highs = validate_bounds_batch(lows, highs)
        approx = self.estimate_batch(lows, highs)
        return resolve_batch_certificates(
            approx,
            error_bound=self.certified_bound,
            guarantee=guarantee,
            exact_for_mask=lambda mask: self.exact_batch(lows[mask], highs[mask]),
            absolute_fallback=False,
        )

    # ------------------------------------------------------------------ #
    # Scalar interface (QueryEngine compatibility)
    # ------------------------------------------------------------------ #

    def _require_aggregate(self, query: RangeQuery) -> None:
        if query.aggregate is not self.aggregate:
            raise NotSupportedError(
                f"overlay answers {self.aggregate.value} queries, "
                f"got {query.aggregate.value}"
            )

    def estimate(self, query: RangeQuery) -> float:
        """Combined approximate answer for one range."""
        self._require_aggregate(query)
        return float(self.estimate_batch([query.low], [query.high])[0])

    def exact(self, query: RangeQuery) -> float:
        """Combined exact answer for one range."""
        self._require_aggregate(query)
        return float(self.exact_batch([query.low], [query.high])[0])

    def query(self, query: RangeQuery, guarantee: Guarantee | None = None) -> QueryResult:
        """Answer one query with guarantee handling (via the batch path)."""
        self._require_aggregate(query)
        return self.query_batch([query.low], [query.high], guarantee).to_results()[0]

    def size_in_bytes(self) -> int:
        """Base payload plus the snapshot arrays."""
        return self._base.size_in_bytes() + self._delta.size_in_bytes()
