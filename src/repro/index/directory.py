"""Flat cell-directory core shared by the one-key and two-key PolyFit indexes.

Both PolyFit indexes answer a query by *locating* the cell (1-D segment or
2-D quadtree leaf) covering a point and *evaluating* that cell's polynomial
model.  This module gives the two indexes one flat-array implementation of
that directory so batch queries run as O(1) NumPy calls instead of per-point
Python work, and so the hot read path lives entirely in contiguous read-only
arrays (the representation threads and mmap can share):

* :class:`CellDirectory` — the common layout: a sorted ``searchsorted``-able
  key per cell, cell boundary arrays, certified per-cell error bounds and
  exact-fallback markers.
* :class:`SegmentDirectory` — the 1-D specialization built from the greedy
  segmentation's segment list; keys are segment lower bounds and the
  polynomial payload is a :class:`~repro.fitting.polynomial.PolynomialBank`.
* :class:`QuadDirectory` — the 2-D specialization: the quadtree's leaves
  linearized in Morton/Z-order (a *linear quadtree*).  Locating N points is a
  vectorized midpoint descent to the finest leaf depth (bit-exact with the
  pointer tree's ``locate``), one Morton interleave and one ``searchsorted``
  into the sorted leaf keys; evaluation gathers coefficient rows into a
  single nested-Horner pass, with exact cells answered by a vectorized
  nearest-grid-sample gather.
* :class:`SegmentExtremeDirectory` — per-segment prefix/suffix extreme
  arrays plus range-extreme tables that make the MAX/MIN batch path O(1)
  NumPy calls as well.
* :class:`RectangleExtremeTree` — the 2-D analogue: a dyadic x-rank merge
  structure whose levels carry y-sorted blocks with range-extreme tables,
  answering N rectangle MAX/MIN queries in O(log^2 n) NumPy passes while
  staying bit-identical to the scalar leaf-merge oracle.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import Aggregate
from ..errors import QueryError, SegmentationError
from ..fitting.polynomial import PolynomialBank, SurfaceBank
from ..fitting.quadtree import QuadCell, linearize_quadtree, morton_interleave2
from ..fitting.segmentation import Segment

__all__ = [
    "CellDirectory",
    "SegmentDirectory",
    "QuadDirectory",
    "QuadLeafExtremes",
    "RectangleExtremeTree",
    "SegmentExtremeDirectory",
    "RangeExtremeTable",
]


class CellDirectory:
    """Common flat layout over the cells of a piecewise-polynomial index.

    Attributes
    ----------
    keys:
        ``(h,)`` sorted locate keys — segment lower bounds (1-D) or Morton
        codes of the linearized quadtree leaves (2-D).  Cell location is one
        ``searchsorted`` over this array.
    lows, highs:
        Cell boundary arrays; ``(h,)`` key spans in 1-D, ``(h, 2)`` rectangle
        corners in 2-D.
    errors:
        ``(h,)`` certified per-cell minimax error bounds (0 for exact cells).
    exact_mask:
        ``(h,)`` markers for cells answered exactly from stored samples
        instead of a fitted polynomial.
    """

    def __init__(
        self,
        keys: np.ndarray,
        lows: np.ndarray,
        highs: np.ndarray,
        errors: np.ndarray,
        exact_mask: np.ndarray,
    ) -> None:
        self.keys = np.ascontiguousarray(keys)
        self.lows = np.ascontiguousarray(lows, dtype=np.float64)
        self.highs = np.ascontiguousarray(highs, dtype=np.float64)
        self.errors = np.ascontiguousarray(errors, dtype=np.float64)
        self.exact_mask = np.ascontiguousarray(exact_mask, dtype=bool)
        h = self.keys.shape[0]
        if any(a.shape[0] != h for a in (self.lows, self.highs, self.errors, self.exact_mask)):
            raise QueryError("directory arrays must have one entry per cell")
        if h == 0:
            raise QueryError("directory must cover at least one cell")

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    @property
    def num_cells(self) -> int:
        """Number of cells in the directory."""
        return len(self)

    @property
    def num_exact_cells(self) -> int:
        """Cells answered from stored samples instead of a fitted polynomial."""
        return int(np.count_nonzero(self.exact_mask))

    def size_in_bytes(self) -> int:
        """Footprint of the common flat arrays."""
        return int(
            self.keys.nbytes
            + self.lows.nbytes
            + self.highs.nbytes
            + self.errors.nbytes
            + self.exact_mask.nbytes
        )


class SegmentDirectory(CellDirectory):
    """Flat searchable directory over 1-D segment key spans.

    Keys falling in the gap between two segments (possible because the
    sampled target function has gaps between consecutive data keys) map to
    the earlier segment, matching step-function semantics; keys outside the
    covered span clamp to the first/last segment.
    """

    def __init__(self, segments: Sequence[Segment]) -> None:
        segments = list(segments)
        if not segments:
            raise QueryError("cannot build a directory from zero segments")
        super().__init__(
            keys=np.array([s.key_low for s in segments], dtype=np.float64),
            lows=np.array([s.key_low for s in segments], dtype=np.float64),
            highs=np.array([s.key_high for s in segments], dtype=np.float64),
            errors=np.array([s.max_error for s in segments], dtype=np.float64),
            exact_mask=np.zeros(len(segments), dtype=bool),
        )
        self.segments = segments
        self.starts = np.array([s.start for s in segments], dtype=np.intp)
        self.stops = np.array([s.stop for s in segments], dtype=np.intp)
        self.bank = PolynomialBank.from_polynomials([s.polynomial for s in segments])
        self.extremes: SegmentExtremeDirectory | None = None

    @classmethod
    def from_segments(cls, segments: Sequence[Segment]) -> "SegmentDirectory":
        """Build the flat directory from a fitted segment list."""
        return cls(segments)

    def locate(self, key: float) -> int:
        """Index of the segment whose span contains ``key``."""
        position = int(np.searchsorted(self.keys, key, side="right")) - 1
        return int(np.clip(position, 0, len(self) - 1))

    def locate_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`locate`: one ``searchsorted`` for all keys."""
        positions = np.searchsorted(self.keys, keys, side="right") - 1
        return np.clip(positions, 0, len(self) - 1)

    def covering_range(self, low: float, high: float) -> tuple[int, int]:
        """Indices (first, last) of segments intersecting ``[low, high]``."""
        return self.locate(low), self.locate(high)

    def attach_extremes(
        self, sample_keys: np.ndarray, measures: np.ndarray, aggregate: Aggregate
    ) -> None:
        """Build the MAX/MIN extreme payload over the sampled target function.

        Evaluates every segment's polynomial at its own sampled keys with one
        flat bank pass, then derives the per-segment prefix/suffix extreme
        arrays and range-extreme tables the vectorized extreme path consumes.
        Idempotent for the same aggregate; re-attaching under the opposite
        extremum is rejected (the payload's merge direction is baked in).
        """
        if not aggregate.is_extremum:
            raise QueryError("extreme payload applies to MAX/MIN directories only")
        maximize = aggregate is Aggregate.MAX
        if self.extremes is not None:
            if self.extremes.maximize is not maximize:
                raise QueryError(
                    "directory already carries extremes for the opposite aggregate"
                )
            return
        rows = np.repeat(np.arange(len(self), dtype=np.intp), self.stops - self.starts)
        if rows.size != sample_keys.size:
            raise QueryError("segments do not partition the sampled keys")
        poly_values = self.bank.evaluate(rows, sample_keys)
        segment_extremes = np.empty(len(self), dtype=np.float64)
        for row, (start, stop) in enumerate(zip(self.starts, self.stops)):
            window = measures[start:stop]
            segment_extremes[row] = window.max() if maximize else window.min()
        self.extremes = SegmentExtremeDirectory(
            starts=self.starts,
            stops=self.stops,
            poly_values=poly_values,
            segment_extremes=segment_extremes,
            maximize=maximize,
        )

    def size_in_bytes(self) -> int:
        """Footprint of the flat arrays (boundary, error and coefficient)."""
        return super().size_in_bytes() + self.bank.size_in_bytes()


class QuadDirectory(CellDirectory):
    """Linear quadtree: the 2-D leaf directory flattened into Morton order.

    The pointer quadtree remains the build-time structure and the scalar
    oracle; this directory is the read-optimized view batch queries consume.
    ``keys`` holds each leaf's Morton code at the finest leaf depth, so
    locating N points is a vectorized descent (bit-exact with the pointer
    tree's midpoint comparisons), one bit interleave, and one
    ``searchsorted``.

    Exact cells reference the cumulative-function sample grid the surfaces
    were fitted on: each stores its inclusive index rectangle
    ``(ix0, ix1, iy0, iy1)`` into ``grid_x``/``grid_y``, and the nearest
    stored sample of a point decomposes into independent nearest-index
    lookups per axis (the samples form a product grid), which vectorizes.
    """

    def __init__(
        self,
        *,
        keys: np.ndarray,
        lows: np.ndarray,
        highs: np.ndarray,
        errors: np.ndarray,
        exact_mask: np.ndarray,
        depth: int,
        root_bounds: tuple[float, float, float, float],
        surfaces: SurfaceBank,
        exact_ranges: np.ndarray,
        grid_x: np.ndarray,
        grid_y: np.ndarray,
        grid_cf: np.ndarray,
    ) -> None:
        super().__init__(keys=keys.astype(np.uint64), lows=lows, highs=highs,
                         errors=errors, exact_mask=exact_mask)
        if self.keys.size > 1 and not np.all(self.keys[1:] > self.keys[:-1]):
            # from_quadtree guarantees Z-order; this guards deserialized or
            # hand-built payloads, whose searchsorted lookups would otherwise
            # silently map points to wrong leaves.
            raise QueryError("leaf Morton keys must be strictly increasing")
        if surfaces.num_surfaces != len(self):
            raise QueryError("surface bank must have one row per cell")
        exact_ranges = np.ascontiguousarray(exact_ranges, dtype=np.intp)
        if exact_ranges.shape != (len(self), 4):
            raise QueryError("exact_ranges must be (num_cells, 4)")
        self.depth = int(depth)
        self.root_bounds = tuple(float(b) for b in root_bounds)
        self.surfaces = surfaces
        # Dyadic boundaries of the depth-level virtual grid (endpoints
        # included), built with the same recursive-midpoint arithmetic as the
        # tree so locating against them reproduces the descent bit-exactly
        # (one O(2^depth) array per axis; deep trees fall back to the level
        # loop).  When the boundaries are close enough to uniform — validated
        # here, true for every non-pathological domain — the cell index is an
        # O(1) floor-scale candidate corrected by at most one step, instead
        # of a searchsorted.
        xmin, xmax, ymin, ymax = self.root_bounds
        self._x_boundaries = _dyadic_boundaries(xmin, xmax, self.depth)
        self._y_boundaries = _dyadic_boundaries(ymin, ymax, self.depth)
        self._x_scale = _validated_grid_scale(self._x_boundaries, xmin, xmax, self.depth)
        self._y_scale = _validated_grid_scale(self._y_boundaries, ymin, ymax, self.depth)
        # Dense Morton-code -> leaf-row cache for shallow trees: one gather
        # replaces the searchsorted over leaf keys.
        if self.depth <= _MAX_ROW_TABLE_DEPTH:
            all_codes = np.arange(4 ** self.depth, dtype=np.uint64)
            table = np.searchsorted(self.keys, all_codes, side="right") - 1
            self._row_table = np.clip(table, 0, len(self) - 1).astype(np.int32)
        else:
            self._row_table = None
        self.exact_ranges = exact_ranges
        self.grid_x = np.ascontiguousarray(grid_x, dtype=np.float64)
        self.grid_y = np.ascontiguousarray(grid_y, dtype=np.float64)
        self.grid_cf = np.ascontiguousarray(grid_cf, dtype=np.float64)
        spans = exact_ranges[self.exact_mask]
        self.num_exact_samples = int(
            ((spans[:, 1] - spans[:, 0] + 1) * (spans[:, 3] - spans[:, 2] + 1)).sum()
        ) if spans.size else 0
        # Optional rectangle MAX/MIN payload (attach_extremes), mirroring the
        # 1-D directory's lazily attached extreme payload.
        self.point_extremes: QuadLeafExtremes | None = None

    @classmethod
    def from_quadtree(
        cls,
        root: QuadCell,
        grid_x: np.ndarray,
        grid_y: np.ndarray,
        grid_cf: np.ndarray,
    ) -> "QuadDirectory":
        """Linearize a built quadtree over its fitting grid into flat arrays."""
        leaves, codes, depth = linearize_quadtree(root)
        h = len(leaves)
        lows = np.array([[leaf.x_low, leaf.y_low] for leaf in leaves], dtype=np.float64)
        highs = np.array([[leaf.x_high, leaf.y_high] for leaf in leaves], dtype=np.float64)
        errors = np.array([leaf.max_error for leaf in leaves], dtype=np.float64)
        exact_mask = np.array([leaf.is_exact for leaf in leaves], dtype=bool)
        exact_ranges = np.full((h, 4), -1, dtype=np.intp)
        for row, leaf in enumerate(leaves):
            if not leaf.is_exact:
                continue
            us, vs, _ = leaf.exact_points
            ix0 = int(np.searchsorted(grid_x, us.min(), side="left"))
            ix1 = int(np.searchsorted(grid_x, us.max(), side="left"))
            iy0 = int(np.searchsorted(grid_y, vs.min(), side="left"))
            iy1 = int(np.searchsorted(grid_y, vs.max(), side="left"))
            if (ix1 - ix0 + 1) * (iy1 - iy0 + 1) != us.size:
                raise SegmentationError(
                    "exact leaf samples do not form a contiguous grid rectangle"
                )
            exact_ranges[row] = (ix0, ix1, iy0, iy1)
        surfaces = SurfaceBank.from_surfaces([leaf.surface for leaf in leaves])
        return cls(
            keys=codes,
            lows=lows,
            highs=highs,
            errors=errors,
            exact_mask=exact_mask,
            depth=depth,
            root_bounds=(root.x_low, root.x_high, root.y_low, root.y_high),
            surfaces=surfaces,
            exact_ranges=exact_ranges,
            grid_x=grid_x,
            grid_y=grid_y,
            grid_cf=grid_cf,
        )

    def locate_batch(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Rows of the leaves covering N points — pure NumPy, no descent loop.

        Each point is mapped to its virtual-grid cell at the finest leaf
        depth, Morton-encoded, and binary-searched against the sorted leaf
        keys.  The grid coordinate comes from one ``searchsorted`` per axis
        over the precomputed dyadic boundary arrays, which hold the *same*
        floating-point midpoint values the pointer tree splits on, so ties
        at shared cell edges resolve identically to :meth:`QuadCell.locate`
        (points on an edge go to the low-side cell).  Very deep trees fall
        back to a vectorized midpoint descent whose loop runs once per tree
        LEVEL (<= 32), never per point.
        """
        us = np.asarray(us, dtype=np.float64)
        vs = np.asarray(vs, dtype=np.float64)
        if us.shape != vs.shape:
            raise QueryError("us and vs must have matching shapes")
        if self._x_boundaries is not None and self._y_boundaries is not None:
            gx = _axis_cells(us, self._x_boundaries, self._x_scale).astype(np.uint64)
            gy = _axis_cells(vs, self._y_boundaries, self._y_scale).astype(np.uint64)
        else:
            gx, gy = self._locate_descent(us, vs)
        codes = morton_interleave2(gx, gy)
        if self._row_table is not None:
            return self._row_table[codes].astype(np.intp)
        rows = np.searchsorted(self.keys, codes, side="right") - 1
        return np.clip(rows, 0, len(self) - 1)

    def _locate_descent(self, us: np.ndarray, vs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Virtual-grid coordinates by vectorized midpoint descent (fallback)."""
        xmin, xmax, ymin, ymax = self.root_bounds
        x_lo = np.full(us.shape, xmin)
        x_hi = np.full(us.shape, xmax)
        y_lo = np.full(us.shape, ymin)
        y_hi = np.full(us.shape, ymax)
        gx = np.zeros(us.shape, dtype=np.uint64)
        gy = np.zeros(us.shape, dtype=np.uint64)
        one = np.uint64(1)
        for _ in range(self.depth):
            x_mid = (x_lo + x_hi) / 2.0
            right = us > x_mid
            gx = (gx << one) | right.astype(np.uint64)
            x_lo = np.where(right, x_mid, x_lo)
            x_hi = np.where(right, x_hi, x_mid)
            y_mid = (y_lo + y_hi) / 2.0
            upper = vs > y_mid
            gy = (gy << one) | upper.astype(np.uint64)
            y_lo = np.where(upper, y_mid, y_lo)
            y_hi = np.where(upper, y_hi, y_mid)
        return gx, gy

    def evaluate_batch(self, rows: np.ndarray, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Evaluate each point's cell model — fitted and exact cells batched.

        Fitted cells go through one gathered nested-Horner pass over the
        surface bank.  Exact cells snap each point to its cell's nearest
        stored grid sample: the candidate set reduces to the <=4 neighbours
        from per-axis ``searchsorted`` (clamped to the cell's index
        rectangle), with ties broken exactly like the scalar ``np.argmin``
        over the cell's flattened sample grid.
        """
        rows = np.asarray(rows, dtype=np.intp)
        us = np.asarray(us, dtype=np.float64)
        vs = np.asarray(vs, dtype=np.float64)
        out = np.empty(us.shape, dtype=np.float64)
        exact = self.exact_mask[rows]
        fitted = ~exact
        if np.any(fitted):
            out[fitted] = self.surfaces.evaluate(rows[fitted], us[fitted], vs[fitted])
        if np.any(exact):
            r = rows[exact]
            u = us[exact]
            v = vs[exact]
            ranges = self.exact_ranges[r]
            p = np.searchsorted(self.grid_x, u)
            i0 = np.clip(p - 1, ranges[:, 0], ranges[:, 1])
            i1 = np.clip(p, ranges[:, 0], ranges[:, 1])
            q = np.searchsorted(self.grid_y, v)
            j0 = np.clip(q - 1, ranges[:, 2], ranges[:, 3])
            j1 = np.clip(q, ranges[:, 2], ranges[:, 3])
            du0 = (self.grid_x[i0] - u) ** 2
            du1 = (self.grid_x[i1] - u) ** 2
            dv0 = (self.grid_y[j0] - v) ** 2
            dv1 = (self.grid_y[j1] - v) ** 2
            # Candidates in the cell's flattened (i, j) sample order so the
            # first-minimum tie-break matches the scalar argmin exactly.
            distances = np.stack((du0 + dv0, du0 + dv1, du1 + dv0, du1 + dv1))
            choice = np.argmin(distances, axis=0)
            ii = np.where(choice >= 2, i1, i0)
            jj = np.where(choice % 2 == 1, j1, j0)
            out[exact] = self.grid_cf[ii, jj]
        return out

    def attach_extremes(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        measures: np.ndarray,
        aggregate: Aggregate,
    ) -> "QuadLeafExtremes":
        """Build the rectangle MAX/MIN payload over a point set.

        The 1-D :class:`SegmentExtremeDirectory` pattern lifted to the leaf
        grid: every point is assigned to its covering leaf with one
        vectorized :meth:`locate_batch` pass, the per-leaf extreme measures
        become the stored payload (exact — the 2-D analogue of the 1-D
        per-segment true extremes), and a CSR grouping of the points by leaf
        row serves the partially covered boundary leaves.  Idempotent for
        the same aggregate; re-attaching the opposite extremum is rejected.
        """
        if not aggregate.is_extremum:
            raise QueryError("extreme payload applies to MAX/MIN only")
        maximize = aggregate is Aggregate.MAX
        if self.point_extremes is not None:
            if self.point_extremes.maximize is not maximize:
                raise QueryError(
                    "directory already carries extremes for the opposite aggregate"
                )
            return self.point_extremes
        rows = self.locate_batch(xs, ys)
        self.point_extremes = QuadLeafExtremes(
            xs=np.asarray(xs, dtype=np.float64),
            ys=np.asarray(ys, dtype=np.float64),
            measures=np.asarray(measures, dtype=np.float64),
            rows=rows,
            num_cells=len(self),
            maximize=maximize,
        )
        return self.point_extremes

    def range_extreme(
        self, x_low: float, x_high: float, y_low: float, y_high: float
    ) -> float:
        """Exact rectangle MAX/MIN via the per-leaf extreme payload (scalar).

        Leaves fully inside the query rectangle contribute their stored
        extreme; partially covered boundary leaves scan only their own
        points (CSR slice).  NaN for an empty rectangle, matching the 1-D
        empty-range convention.  Requires :meth:`attach_extremes`.
        """
        if x_high < x_low or y_high < y_low:
            raise QueryError("invalid rectangle bounds")
        if self.point_extremes is None:
            raise QueryError("call attach_extremes() before range_extreme()")
        lows = self.lows
        highs = self.highs
        intersecting = (
            (lows[:, 0] <= x_high)
            & (highs[:, 0] >= x_low)
            & (lows[:, 1] <= y_high)
            & (highs[:, 1] >= y_low)
        )
        covered = (
            intersecting
            & (lows[:, 0] >= x_low)
            & (highs[:, 0] <= x_high)
            & (lows[:, 1] >= y_low)
            & (highs[:, 1] <= y_high)
        )
        return self.point_extremes.merge(
            covered, np.nonzero(intersecting & ~covered)[0], x_low, x_high, y_low, y_high
        )

    def range_extreme_batch(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
        *,
        force_scalar: bool = False,
        kernel: str = "numpy",
    ) -> np.ndarray:
        """Exact rectangle MAX/MIN for N rectangles — fully vectorized.

        Answers through the payload's :class:`RectangleExtremeTree` (built
        lazily on first call): a dyadic decomposition of each query's x-rank
        window into <= 2 blocks per level, each resolved by one bisection
        into the level's y-order and one range-extreme table gather, so the
        whole batch runs in O(log^2 n) NumPy passes with no per-query loop.
        MAX/MIN over the same point subset is the same float whatever the
        cover, so answers are bit-identical to :meth:`range_extreme`
        (including NaN for empty rectangles).  ``force_scalar=True`` keeps
        the per-query oracle loop reachable for pinning tests and benches;
        ``kernel="numba"`` routes through the compiled scan kernel instead
        of the level tables (same floats, see
        :meth:`QuadLeafExtremes.range_extreme_batch`).
        """
        x_lows = np.atleast_1d(np.asarray(x_lows, dtype=np.float64))
        x_highs = np.atleast_1d(np.asarray(x_highs, dtype=np.float64))
        y_lows = np.atleast_1d(np.asarray(y_lows, dtype=np.float64))
        y_highs = np.atleast_1d(np.asarray(y_highs, dtype=np.float64))
        if not (x_lows.shape == x_highs.shape == y_lows.shape == y_highs.shape):
            raise QueryError("rectangle bound arrays must have matching shapes")
        if np.any(x_highs < x_lows) or np.any(y_highs < y_lows):
            raise QueryError("invalid rectangle bounds")
        if self.point_extremes is None:
            raise QueryError("call attach_extremes() before range_extreme_batch()")
        if force_scalar:
            out = np.empty(x_lows.size, dtype=np.float64)
            for i, bounds in enumerate(zip(x_lows, x_highs, y_lows, y_highs)):
                out[i] = self.range_extreme(*bounds)
            return out
        return self.point_extremes.range_extreme_batch(
            x_lows, x_highs, y_lows, y_highs, kernel=kernel
        )

    def size_in_bytes(self) -> int:
        """Footprint of the flat directory (8 bytes per stored float).

        Counts the linearized leaf keys, cell boundaries, certified error
        bounds, exact markers, the coefficient tensor with its scaling
        vectors, the exact-cell index rectangles, and — mirroring the
        pointer tree's Figure-19 accounting — 3 floats per sample retained
        by an exact cell.  The full CF sample grid outside exact cells is
        build scaffolding and is excluded, like the 1-D exact fallback.
        """
        return int(
            super().size_in_bytes()
            + self.surfaces.size_in_bytes()
            + self.exact_ranges.nbytes
            + 3 * 8 * self.num_exact_samples
        )

    def to_dict(self) -> dict:
        """Serialize the flat arrays to plain Python types."""
        return {
            "keys": [int(code) for code in self.keys],
            "lows": self.lows.tolist(),
            "highs": self.highs.tolist(),
            "errors": self.errors.tolist(),
            "exact_mask": self.exact_mask.tolist(),
            "depth": self.depth,
            "root_bounds": list(self.root_bounds),
            "surfaces": self.surfaces.to_dict(),
            "exact_ranges": self.exact_ranges.tolist(),
        }

    @classmethod
    def from_dict(
        cls,
        payload: dict,
        grid_x: np.ndarray,
        grid_y: np.ndarray,
        grid_cf: np.ndarray,
    ) -> "QuadDirectory":
        """Rebuild from :meth:`to_dict` output plus the (recomputed) CF grid."""
        return cls(
            keys=np.array([int(code) for code in payload["keys"]], dtype=np.uint64),
            lows=np.asarray(payload["lows"], dtype=np.float64),
            highs=np.asarray(payload["highs"], dtype=np.float64),
            errors=np.asarray(payload["errors"], dtype=np.float64),
            exact_mask=np.asarray(payload["exact_mask"], dtype=bool),
            depth=int(payload["depth"]),
            root_bounds=tuple(payload["root_bounds"]),
            surfaces=SurfaceBank.from_dict(payload["surfaces"]),
            exact_ranges=np.asarray(payload["exact_ranges"], dtype=np.intp),
            grid_x=grid_x,
            grid_y=grid_y,
            grid_cf=grid_cf,
        )


class QuadLeafExtremes:
    """Per-leaf extreme payload for rectangle MAX/MIN over a 2-D point set.

    Stores the exact extreme measure of every leaf plus a CSR grouping of
    the points by leaf row (points sorted by leaf, one offsets array), so a
    rectangle query resolves fully covered leaves from the stored extremes
    and scans only the boundary leaves' own points — the leaf-grid analogue
    of the 1-D interior-table + boundary-segment merge.
    """

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        measures: np.ndarray,
        rows: np.ndarray,
        num_cells: int,
        maximize: bool,
    ) -> None:
        xs = np.ascontiguousarray(xs, dtype=np.float64)
        ys = np.ascontiguousarray(ys, dtype=np.float64)
        measures = np.ascontiguousarray(measures, dtype=np.float64)
        if not (xs.ndim == 1 and xs.shape == ys.shape == measures.shape):
            raise QueryError("points and measures must be equal-length 1-D arrays")
        rows = np.asarray(rows, dtype=np.intp)
        order = np.argsort(rows, kind="stable")
        self.xs = xs[order]
        self.ys = ys[order]
        self.measures = measures[order]
        self.offsets = np.zeros(num_cells + 1, dtype=np.intp)
        counts = np.bincount(rows, minlength=num_cells)
        np.cumsum(counts, out=self.offsets[1:])
        self.maximize = bool(maximize)
        fill = -np.inf if maximize else np.inf
        self.leaf_extremes = np.full(num_cells, fill, dtype=np.float64)
        if rows.size:
            combine_at = np.maximum.at if maximize else np.minimum.at
            combine_at(self.leaf_extremes, rows, measures)
        self._fill = fill
        self._tree: RectangleExtremeTree | None = None

    def range_extreme_batch(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
        *,
        kernel: str = "numpy",
    ) -> np.ndarray:
        """Vectorized rectangle extremes over the payload's point set.

        Lazily builds the :class:`RectangleExtremeTree` (so scalar-only use
        pays nothing) and reuses it across calls.  ``kernel="numba"`` runs
        the compiled x-window scan kernel over the tree's sorted point
        arrays instead of the level tables; extremes over the same point
        subset are the same float either way, so the backends are
        bit-identical (``"auto"`` resolves via the package-wide rule).
        """
        if self._tree is None:
            self._tree = RectangleExtremeTree(
                self.xs, self.ys, self.measures, self.maximize
            )
        if kernel != "numpy":
            from ..kernels import resolve_kernel

            kernel = resolve_kernel(kernel)
        if kernel == "numba":
            from ..kernels import fused2d

            xs, ys, measures = self._tree.point_arrays()
            return fused2d.run_rectangle_extreme(
                xs, ys, measures, self.maximize,
                x_lows, x_highs, y_lows, y_highs,
            )
        return self._tree.query(x_lows, x_highs, y_lows, y_highs)

    def merge(
        self,
        covered: np.ndarray,
        partial_rows: np.ndarray,
        x_low: float,
        x_high: float,
        y_low: float,
        y_high: float,
    ) -> float:
        """Merge stored extremes of covered leaves with boundary-leaf scans."""
        reduce = np.max if self.maximize else np.min
        best = self._fill
        occupied = covered & (self.offsets[1:] > self.offsets[:-1])
        if np.any(occupied):
            best = float(reduce(self.leaf_extremes[occupied]))
        for row in partial_rows:
            start, stop = self.offsets[row], self.offsets[row + 1]
            if stop <= start:
                continue
            inside = (
                (self.xs[start:stop] >= x_low)
                & (self.xs[start:stop] <= x_high)
                & (self.ys[start:stop] >= y_low)
                & (self.ys[start:stop] <= y_high)
            )
            if np.any(inside):
                value = float(reduce(self.measures[start:stop][inside]))
                best = max(best, value) if self.maximize else min(best, value)
        if not np.isfinite(best):
            return float("nan")
        return best

    def size_in_bytes(self) -> int:
        """Footprint of the payload arrays."""
        return int(
            self.xs.nbytes
            + self.ys.nbytes
            + self.measures.nbytes
            + self.offsets.nbytes
            + self.leaf_extremes.nbytes
            + (self._tree.size_in_bytes() if self._tree is not None else 0)
        )


class RectangleExtremeTree:
    """Batch rectangle MAX/MIN over a 2-D point set without per-query loops.

    The 2-D analogue of :class:`SegmentExtremeDirectory`: points are sorted
    by x, and every dyadic level re-sorts aligned x-rank blocks (64-point
    base blocks, doubling up to a block covering everything) by y, storing
    the level's measures under a :class:`RangeExtremeTable` in that y-order.
    A rectangle query selects its x-window with two ``searchsorted`` calls,
    covers the window with <= 2 aligned blocks per level (the canonical
    dyadic decomposition) plus two masked base-block partials, and resolves
    each block with integer ``searchsorted`` calls into the level's sorted
    ``(block, y-rank)`` composites followed by one table query — O(log n)
    C-level passes for the whole batch.

    Exactness: MAX/MIN over a point subset is the same float under any
    cover (even an overlapping one), so answers are bit-identical to the
    brute-force scan and to the scalar leaf-merge oracle — including the
    NaN convention for rectangles containing no point.  Memory is roughly
    ``4 * n * num_levels`` floats; levels start at 64-point blocks to keep
    the multiplier at ``~4 * log2(n / 64)``.
    """

    #: log2 of the base block size.  X-window pieces narrower than a base
    #: block (head/tail remainders and level-0 emissions) are answered by a
    #: fixed-width masked gather over the x-order, so no y-sorted level is
    #: stored for spans <= 32.
    BASE_SHIFT = 5

    #: Queries are processed in chunks of this size so the widest transient
    #: (the ``2*chunk x 32`` fused head/tail gather) stays under ~17 MiB.
    CHUNK = 32_768

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        measures: np.ndarray,
        maximize: bool,
    ) -> None:
        xs = np.ascontiguousarray(xs, dtype=np.float64)
        ys = np.ascontiguousarray(ys, dtype=np.float64)
        measures = np.ascontiguousarray(measures, dtype=np.float64)
        if not (xs.ndim == 1 and xs.shape == ys.shape == measures.shape):
            raise QueryError("points and measures must be equal-length 1-D arrays")
        order = np.argsort(xs, kind="stable")
        self._xs = xs[order]
        self._maximize = bool(maximize)
        self._combine = np.maximum if maximize else np.minimum
        self._fill = -np.inf if maximize else np.inf
        n = self._xs.size
        base = 1 << self.BASE_SHIFT
        # NaN/fill padding lets the fixed-width gathers index past the end
        # without clamping; padded lanes fail every y-window comparison.
        self._ys_padded = np.concatenate([ys[order], np.full(base, np.nan)])
        self._measures_padded = np.concatenate(
            [measures[order], np.full(base, self._fill)]
        )
        self._levels: list[tuple[np.ndarray, RangeExtremeTable]] = []
        if n == 0:
            self._num_levels = 0
            return
        num_blocks = -(-n // base)
        self._num_levels = int(num_blocks).bit_length()
        x_ranks = np.arange(n, dtype=np.int64)
        ys_sorted = self._ys_padded[:n]
        measures_sorted = self._measures_padded[:n]
        # Global y-ranks: within any block, rank order equals y order (the
        # rank permutation sorts y), so the composite ``(block << shift) |
        # rank`` is globally sorted per level and an in-block y-window
        # endpoint is one integer ``searchsorted`` — no per-query bisection.
        y_order = np.argsort(ys_sorted, kind="stable")
        y_ranks = np.empty(n, dtype=np.int64)
        y_ranks[y_order] = np.arange(n, dtype=np.int64)
        self._ys_by_y = ys_sorted[y_order]
        self._rank_shift = int(n).bit_length()
        for level in range(1, self._num_levels):
            block_ids = x_ranks >> (self.BASE_SHIFT + level)
            composite = (block_ids << self._rank_shift) | y_ranks
            level_order = np.argsort(composite)
            self._levels.append(
                (
                    composite[level_order],
                    RangeExtremeTable(measures_sorted[level_order], self._maximize),
                )
            )

    def query(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
    ) -> np.ndarray:
        """Extremes over N closed rectangles; NaN where no point falls inside."""
        x_lows = np.atleast_1d(np.asarray(x_lows, dtype=np.float64))
        x_highs = np.atleast_1d(np.asarray(x_highs, dtype=np.float64))
        y_lows = np.atleast_1d(np.asarray(y_lows, dtype=np.float64))
        y_highs = np.atleast_1d(np.asarray(y_highs, dtype=np.float64))
        total = x_lows.size
        if self._xs.size == 0:
            return np.full(total, np.nan)
        out = np.empty(total, dtype=np.float64)
        for start in range(0, total, self.CHUNK):
            stop = min(start + self.CHUNK, total)
            sl = slice(start, stop)
            out[sl] = self._query_chunk(
                x_lows[sl], x_highs[sl], y_lows[sl], y_highs[sl]
            )
        return out

    def _query_chunk(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
    ) -> np.ndarray:
        base = 1 << self.BASE_SHIFT
        lo = np.searchsorted(self._xs, x_lows, side="left")
        hi = np.searchsorted(self._xs, x_highs, side="right")
        best = np.full(x_lows.shape, self._fill, dtype=np.float64)
        # Partial base blocks at the window's head and tail (masked gathers).
        first_block = -(-lo // base)
        last_block = hi // base
        head_stop = np.minimum(hi, first_block * base)
        tail_start = np.maximum(head_stop, last_block * base)
        partial_values = self._window_values(
            np.concatenate([lo, tail_start]),
            np.concatenate([head_stop, hi]),
            np.concatenate([y_lows, y_lows]),
            np.concatenate([y_highs, y_highs]),
        )
        n_queries = x_lows.size
        best = self._combine(best, partial_values[:n_queries])
        best = self._combine(best, partial_values[n_queries:])
        # The y-window endpoints in global y-rank space, shared by every
        # level (the per-level composite searchsorted consumes ranks).
        r_left = np.searchsorted(self._ys_by_y, y_lows, side="left").astype(np.int64)
        r_right = np.searchsorted(self._ys_by_y, y_highs, side="right").astype(np.int64)
        # Canonical dyadic cover of the fully contained base-block range,
        # emitting <= 2 aligned blocks per level (classic bottom-up walk);
        # both sides of a level resolve in one gather-or-table pass, then
        # scatter separately (one query may emit on both sides of a level).
        left = first_block
        right = np.maximum(last_block, first_block)
        for level in range(self._num_levels):
            take = (left < right) & ((left & 1) == 1)
            rows_l = np.nonzero(take)[0]
            blocks_l = left[rows_l]
            left = left + take
            take = (left < right) & ((right & 1) == 1)
            right = right - take
            rows_r = np.nonzero(take)[0]
            blocks_r = right[rows_r]
            if rows_l.size or rows_r.size:
                emit_rows = np.concatenate([rows_l, rows_r])
                blocks = np.concatenate([blocks_l, blocks_r])
                if level == 0:
                    shift = self.BASE_SHIFT
                    starts = blocks << shift
                    stops = np.minimum((blocks + 1) << shift, self._xs.size)
                    values = self._window_values(
                        starts, stops, y_lows[emit_rows], y_highs[emit_rows]
                    )
                else:
                    values = self._level_values(
                        level, blocks, r_left[emit_rows], r_right[emit_rows]
                    )
                split = rows_l.size
                best[rows_l] = self._combine(best[rows_l], values[:split])
                best[rows_r] = self._combine(best[rows_r], values[split:])
            left >>= 1
            right >>= 1
        return np.where(np.isfinite(best), best, np.nan)

    def _window_values(
        self,
        starts: np.ndarray,
        stops: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
    ) -> np.ndarray:
        """Extremes over x-rank windows ``[starts, stops)`` (width <= 64).

        One masked fixed-width gather over the padded x-order; windows with
        no qualifying point yield the fill identity.
        """
        values = np.full(starts.shape, self._fill, dtype=np.float64)
        have = np.nonzero(stops > starts)[0]
        if have.size == 0:
            return values
        s = starts[have]
        width = int((stops[have] - s).max())
        idx = s[:, None] + np.arange(width, dtype=np.intp)
        ys = self._ys_padded[idx]
        inside = (
            (idx < stops[have, None])
            & (ys >= y_lows[have, None])
            & (ys <= y_highs[have, None])
        )
        reduce = np.maximum.reduce if self._maximize else np.minimum.reduce
        values[have] = reduce(
            self._measures_padded[idx], axis=1, where=inside, initial=self._fill
        )
        return values

    def _level_values(
        self,
        level: int,
        blocks: np.ndarray,
        r_left: np.ndarray,
        r_right: np.ndarray,
    ) -> np.ndarray:
        """Extremes over one level's aligned blocks clipped to the y-windows.

        ``r_left``/``r_right`` are the y-window endpoints as global y-ranks.
        The level array holds ``(block << rank_shift) | rank`` composites in
        ascending order, and the points of block ``b`` with rank below ``r``
        are exactly the composites below ``(b << rank_shift) + r``, so both
        window endpoints are plain integer ``searchsorted`` calls.
        """
        composite, table = self._levels[level - 1]
        keys = blocks.astype(np.int64) << self._rank_shift
        lo_pos = np.searchsorted(composite, keys + r_left, side="left")
        hi_pos = np.searchsorted(composite, keys + r_right, side="left")
        values = np.full(blocks.shape, self._fill, dtype=np.float64)
        nonempty = np.nonzero(hi_pos > lo_pos)[0]
        if nonempty.size:
            values[nonempty] = table.query(lo_pos[nonempty], hi_pos[nonempty] - 1)
        return values

    def point_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The x-sorted ``(xs, ys, measures)`` triple (padding stripped).

        The compiled scan kernel consumes these directly: any backend
        selecting the extreme over the same x-window / y-filter subset
        returns the same float, so sharing the sorted arrays keeps every
        backend pinned to one point order.
        """
        n = self._xs.size
        return self._xs, self._ys_padded[:n], self._measures_padded[:n]

    def size_in_bytes(self) -> int:
        """Footprint of the level stack plus the x-sorted point arrays."""
        total = self._xs.nbytes + self._ys_padded.nbytes + self._measures_padded.nbytes
        total += self._ys_by_y.nbytes if self._levels else 0
        for composite, table in self._levels:
            # composite counted twice: the table holds its own same-length
            # copy of the level's measures.
            total += 2 * composite.nbytes + table.size_in_bytes()
        return int(total)


#: Finest virtual-grid depth for which the per-axis dyadic boundary arrays
#: are materialized (2^depth + 1 floats per axis); deeper trees use the
#: per-level descent instead.
_MAX_BOUNDARY_DEPTH = 20

#: Finest depth for which the dense Morton-code -> leaf-row cache (4^depth
#: int32 entries) is materialized; deeper trees binary-search the leaf keys.
_MAX_ROW_TABLE_DEPTH = 10


def _dyadic_boundaries(low: float, high: float, depth: int) -> np.ndarray | None:
    """Split values of the depth-level dyadic grid over ``[low, high]``.

    Built by the same repeated ``(a + b) / 2`` midpoint arithmetic the
    quadtree uses, so each value is bit-identical to the corresponding tree
    split.  Includes both endpoints (``2^depth + 1`` values).  Returns
    ``None`` when the grid is too deep to materialize or the boundaries fail
    to be strictly increasing (degenerate domains), in which case callers
    must use the descent fallback.
    """
    if depth > _MAX_BOUNDARY_DEPTH:
        return None
    bounds = np.array([low, high], dtype=np.float64)
    for _ in range(depth):
        mids = (bounds[:-1] + bounds[1:]) / 2.0
        merged = np.empty(bounds.size + mids.size, dtype=np.float64)
        merged[0::2] = bounds
        merged[1::2] = mids
        bounds = merged
    if bounds.size > 1 and not np.all(bounds[1:] > bounds[:-1]):
        return None
    return bounds


def _validated_grid_scale(
    boundaries: np.ndarray | None, low: float, high: float, depth: int
) -> float | None:
    """Scale factor for O(1) arithmetic cell candidates, or ``None``.

    The dyadic boundaries deviate from the ideal uniform grid only by
    floating-point rounding, so ``floor((u - low) * scale)`` is the true
    cell index up to one step — *provided* every boundary value itself maps
    no further than one cell off, which this validates.  When validation
    fails (pathological domains) callers fall back to ``searchsorted``.
    """
    if boundaries is None or not high > low:
        return None
    num_cells = boundaries.size - 1
    scale = num_cells / (high - low)
    candidates = np.floor((boundaries - low) * scale)
    indices = np.arange(num_cells + 1, dtype=np.float64)
    if np.all(candidates >= indices - 1) and np.all(candidates <= indices):
        return float(scale)
    return None


def _axis_cells(coords: np.ndarray, boundaries: np.ndarray, scale: float | None) -> np.ndarray:
    """Cell index per coordinate on one axis of the dyadic virtual grid.

    The tie rule matches the tree descent: cell ``k`` owns the half-open
    span ``(B[k], B[k+1]]``, with out-of-range coordinates clamped to the
    first/last cell.  With a validated ``scale`` the index is an arithmetic
    candidate corrected by at most one step against the exact boundary
    values; otherwise one ``searchsorted`` counts the interior boundaries
    strictly below each coordinate.
    """
    num_cells = boundaries.size - 1
    if scale is None:
        cells = np.searchsorted(boundaries[1:-1], coords, side="left")
        return cells.astype(np.intp)
    cells = np.floor((coords - boundaries[0]) * scale).astype(np.intp)
    np.clip(cells, 0, num_cells - 1, out=cells)
    cells -= coords <= boundaries[cells]
    np.clip(cells, 0, num_cells - 1, out=cells)
    cells += coords > boundaries[cells + 1]
    np.clip(cells, 0, num_cells - 1, out=cells)
    return cells


class RangeExtremeTable:
    """Vectorized inclusive range-extreme queries over a fixed value array.

    Block decomposition with block size ``BLOCK``: per-block extremes carry a
    sparse table for the full blocks strictly inside a window, in-block
    prefix/suffix extreme arrays answer the partial end blocks, and windows
    inside a single block reduce over a masked fixed-width gather.  Every
    path is O(1) NumPy calls for N windows.
    """

    BLOCK = 32

    def __init__(self, values: np.ndarray, maximize: bool) -> None:
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise QueryError("values must be a non-empty 1-D array")
        self._values = values
        self._maximize = bool(maximize)
        self._combine = np.maximum if maximize else np.minimum
        fill = -np.inf if maximize else np.inf
        block = self.BLOCK
        n = values.size
        num_blocks = -(-n // block)
        padded = np.full(num_blocks * block, fill, dtype=np.float64)
        padded[:n] = values
        grid = padded.reshape(num_blocks, block)
        accumulate = np.maximum.accumulate if maximize else np.minimum.accumulate
        # Fill-padded copy for the fixed-width same-block gather: one spare
        # block lets a gather starting at the last element stay in bounds.
        self._values_padded = np.concatenate([padded, np.full(block, fill)])
        self._block_extremes = grid.max(axis=1) if maximize else grid.min(axis=1)
        self._prefix_in_block = accumulate(grid, axis=1).reshape(-1)[:n]
        self._suffix_in_block = accumulate(grid[:, ::-1], axis=1)[:, ::-1].reshape(-1)[:n]
        self._table = self._build_sparse_table(self._block_extremes)
        self._fill = fill

    def _build_sparse_table(self, values: np.ndarray) -> np.ndarray:
        """``table[k, i]`` = extreme over ``values[i : i + 2**k]`` (clamped)."""
        n = values.size
        levels = max(1, int(np.log2(n)) + 1)
        table = np.empty((levels, n), dtype=np.float64)
        table[0] = values
        for k in range(1, levels):
            span = 1 << (k - 1)
            table[k, : n - span] = self._combine(table[k - 1, : n - span], table[k - 1, span:])
            table[k, n - span:] = table[k - 1, n - span:]
        return table

    def _sparse_query(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Range extreme over whole blocks ``[lo, hi]`` (inclusive, lo <= hi)."""
        length = hi - lo + 1
        k = np.floor(np.log2(length)).astype(np.intp)
        offset = hi - (np.left_shift(1, k)) + 1
        return self._combine(self._table[k, lo], self._table[k, offset])

    def query(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Extremes over the inclusive index windows ``[lo[i], hi[i]]``."""
        lo = np.asarray(lo, dtype=np.intp)
        hi = np.asarray(hi, dtype=np.intp)
        if lo.shape != hi.shape:
            raise QueryError("lo and hi must have matching shapes")
        if lo.size and (lo.min() < 0 or hi.max() >= self._values.size or np.any(hi < lo)):
            raise QueryError("window indices out of range")
        block = self.BLOCK
        b_lo = lo // block
        b_hi = hi // block
        out = np.empty(lo.shape, dtype=np.float64)
        same = b_lo == b_hi
        if np.any(same):
            win_lo = lo[same]
            win_hi = hi[same]
            idx = win_lo[:, None] + np.arange(block, dtype=np.intp)[None, :]
            reduce = np.maximum.reduce if self._maximize else np.minimum.reduce
            out[same] = reduce(
                self._values_padded[idx],
                axis=1,
                where=idx <= win_hi[:, None],
                initial=self._fill,
            )
        spanning = ~same
        if np.any(spanning):
            win_lo = lo[spanning]
            win_hi = hi[spanning]
            value = self._combine(self._suffix_in_block[win_lo], self._prefix_in_block[win_hi])
            first_full = b_lo[spanning] + 1
            last_full = b_hi[spanning] - 1
            has_middle = last_full >= first_full
            if np.any(has_middle):
                middle = self._sparse_query(first_full[has_middle], last_full[has_middle])
                value[has_middle] = self._combine(value[has_middle], middle)
            out[spanning] = value
        return out

    def size_in_bytes(self) -> int:
        """Footprint of the table arrays (excluding the values themselves)."""
        return int(
            self._block_extremes.nbytes
            + self._prefix_in_block.nbytes
            + self._suffix_in_block.nbytes
            + self._table.nbytes
        )


class SegmentExtremeDirectory:
    """Flat extreme payload for the MAX/MIN batch path.

    Stores, over the sampled target function of a MAX/MIN index:

    * per-segment *prefix* extreme array — ``prefix[k]`` is the extreme of
      the covering segment's polynomial values over sample indices
      ``[start(seg(k)), k]`` — and the matching *suffix* array, which answer
      the two boundary segments of a spanning query in one gather each;
    * a range-extreme table over the per-segment TRUE measure extremes for
      the fully covered interior segments (replacing the per-query aggregate
      tree descent);
    * a range-extreme table over the polynomial values for queries whose
      window falls inside a single segment (arbitrary sub-windows).
    """

    def __init__(
        self,
        starts: np.ndarray,
        stops: np.ndarray,
        poly_values: np.ndarray,
        segment_extremes: np.ndarray,
        maximize: bool,
    ) -> None:
        poly_values = np.ascontiguousarray(poly_values, dtype=np.float64)
        self._maximize = bool(maximize)
        self._combine = np.maximum if maximize else np.minimum
        accumulate = np.maximum.accumulate if maximize else np.minimum.accumulate
        self.prefix = np.empty(poly_values.size, dtype=np.float64)
        self.suffix = np.empty(poly_values.size, dtype=np.float64)
        for start, stop in zip(starts, stops):
            window = poly_values[start:stop]
            self.prefix[start:stop] = accumulate(window)
            self.suffix[start:stop] = accumulate(window[::-1])[::-1]
        self.segment_extremes = np.ascontiguousarray(segment_extremes, dtype=np.float64)
        # The raw per-sample polynomial values, kept alongside the tables so
        # the fused scalar kernels can serve single-segment windows from the
        # same operands the table path reduces over.
        self.poly_values = poly_values
        self._interior = RangeExtremeTable(self.segment_extremes, maximize)
        self._values = RangeExtremeTable(poly_values, maximize)

    @property
    def maximize(self) -> bool:
        """Whether the payload merges with max (MAX index) or min (MIN)."""
        return self._maximize

    def query(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        first: np.ndarray,
        last: np.ndarray,
    ) -> np.ndarray:
        """Batch extreme over sample windows ``[lo, hi]`` (inclusive).

        ``first``/``last`` are the segments covering the window's endpoints.
        Spanning windows combine the first segment's suffix extreme, the last
        segment's prefix extreme and (when at least one segment is fully
        covered) the interior table over true extremes; single-segment
        windows reduce over the polynomial-value table.  Matches the scalar
        merge of :meth:`PolyFitIndex._approximate_extreme` value for value.
        """
        lo = np.asarray(lo, dtype=np.intp)
        hi = np.asarray(hi, dtype=np.intp)
        first = np.asarray(first, dtype=np.intp)
        last = np.asarray(last, dtype=np.intp)
        out = np.empty(lo.shape, dtype=np.float64)
        same = first == last
        spanning = ~same
        if np.any(spanning):
            value = self._combine(self.suffix[lo[spanning]], self.prefix[hi[spanning]])
            covered = last[spanning] - first[spanning] > 1
            if np.any(covered):
                interior = self._interior.query(
                    first[spanning][covered] + 1, last[spanning][covered] - 1
                )
                value[covered] = self._combine(value[covered], interior)
            out[spanning] = value
        if np.any(same):
            out[same] = self._values.query(lo[same], hi[same])
        return out

    def size_in_bytes(self) -> int:
        """Footprint of the extreme payload arrays."""
        return int(
            self.prefix.nbytes
            + self.suffix.nbytes
            + self.segment_extremes.nbytes
            + self._interior.size_in_bytes()
            + self._values.size_in_bytes()
        )
