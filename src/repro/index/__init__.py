"""PolyFit index structures — the paper's primary contribution.

* :mod:`guarantees` — the delta-derivation and certification rules of
  Lemmas 2-7 (how a requested absolute/relative error budget translates into
  the per-segment fitting budget, and when a relative-error answer can be
  certified without falling back to the exact method).
* :mod:`directory` — the shared flat cell-directory core: sorted locate
  keys, cell boundaries, coefficient banks, exact markers and certified
  error bounds as contiguous arrays, specialized for 1-D segment lists
  (:class:`SegmentDirectory`) and Morton-linearized quadtree leaves
  (:class:`QuadDirectory`).
* :mod:`polyfit1d` — :class:`PolyFitIndex`, the one-key index supporting
  COUNT, SUM, MIN and MAX queries.
* :mod:`polyfit2d` — :class:`PolyFit2DIndex`, the two-key COUNT/SUM index
  built on quadtree-segmented polynomial surfaces.
* :mod:`overlay` — the read-only overlay view the streaming write path
  (:mod:`repro.stream`) serves queries from: the base directory's certified
  estimate combined with a frozen, exact delta-buffer snapshot.
* :mod:`serialization` — JSON round-tripping of built indexes.
* :mod:`codec` — the zero-copy binary format: one mappable raw-buffer file
  per index, loaded with ``mmap`` so shard worker processes share the
  directory pages instead of re-parsing floats.
"""

from .directory import (
    CellDirectory,
    QuadDirectory,
    QuadLeafExtremes,
    RangeExtremeTable,
    SegmentDirectory,
    SegmentExtremeDirectory,
)
from .guarantees import (
    delta_for_absolute,
    delta_for_relative,
    certify_relative,
    certified_absolute_bound,
    CORNER_FACTORS,
)
from .polyfit1d import PolyFitIndex
from .polyfit2d import PolyFit2DIndex
from .serialization import index_to_dict, index_from_dict, save_index, load_index
from .codec import save_index_binary, load_index_binary
from .overlay import DeltaSnapshot, DirectoryOverlay

__all__ = [
    "save_index_binary",
    "load_index_binary",
    "DeltaSnapshot",
    "DirectoryOverlay",
    "CellDirectory",
    "SegmentDirectory",
    "QuadDirectory",
    "QuadLeafExtremes",
    "RangeExtremeTable",
    "SegmentExtremeDirectory",
    "delta_for_absolute",
    "delta_for_relative",
    "certify_relative",
    "certified_absolute_bound",
    "CORNER_FACTORS",
    "PolyFitIndex",
    "PolyFit2DIndex",
    "index_to_dict",
    "index_from_dict",
    "save_index",
    "load_index",
]
