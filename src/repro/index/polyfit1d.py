"""The one-key PolyFit index.

:class:`PolyFitIndex` is the paper's primary structure for a single key:

1. Build the target function (``CFsum`` for SUM/COUNT, ``DFmax``/``DFmin``
   for MAX/MIN) from the raw (key, measure) records.
2. Segment it with Greedy Segmentation under a per-segment budget ``delta``
   derived from the requested guarantee (Lemmas 2/4) or supplied directly.
3. Place a flat sorted array of segment boundaries (searched with
   ``numpy.searchsorted`` — the analogue of the short root-to-leaf path of
   Figure 6) over the ``h`` segments; for MAX/MIN additionally store a sparse
   aggregate tree over per-segment extremes so whole segments inside the
   query range are resolved without touching their polynomial.

Query answering follows Section V:

* SUM/COUNT — ``A = P_Iu(uq) - P_Il(lq)``, error at most ``2 * delta``.
* MAX/MIN — exact tree descent over fully covered segments plus closed-form
  polynomial extrema on the two boundary segments clipped to the query range
  (Equation 17), error at most ``delta``.

Relative-error queries (Problem 2) are answered through the certificate of
Lemmas 3/5 with an automatic fallback to the exact baseline when the
certificate fails.
"""

from __future__ import annotations

import numpy as np

from ..baselines.exact import KeyCumulativeArray
from ..baselines.aggregate_tree import AggregateSegmentTree
from ..config import Aggregate, IndexConfig
from ..errors import DataError, GuaranteeNotSatisfiedError, NotSupportedError, QueryError
from ..fitting.segmentation import Segment, greedy_segmentation
from ..functions.cumulative import CumulativeFunction, build_cumulative_function
from ..functions.key_measure import KeyMeasureFunction, build_key_measure_function
from ..kernels import fused1d, resolve_kernel
from ..queries.batch import resolve_batch_certificates, validate_bounds_batch
from ..queries.types import BatchQueryResult, Guarantee, QueryResult, RangeQuery
from ..config import GuaranteeKind
from .directory import SegmentDirectory
from .guarantees import certified_absolute_bound, certify_relative, delta_for_absolute

__all__ = ["PolyFitIndex"]

# Retained import name for older callers; the flat directory now lives in
# repro.index.directory as the 1-D specialization of the shared cell core.
_SegmentDirectory = SegmentDirectory


class PolyFitIndex:
    """Piecewise-polynomial index for one-key range aggregate queries.

    Use :meth:`build` (from raw records plus a guarantee/delta) or
    :meth:`from_function` (from an already-constructed target function).

    Parameters are not meant to be mutated after construction; the index is a
    static structure, matching the paper's static setting.
    """

    def __init__(
        self,
        aggregate: Aggregate,
        delta: float,
        segments: list[Segment],
        directory: SegmentDirectory,
        cumulative: CumulativeFunction | None,
        key_measure: KeyMeasureFunction | None,
        segment_extreme_tree: AggregateSegmentTree | None,
        exact_fallback: KeyCumulativeArray | None,
        config: IndexConfig,
    ) -> None:
        self._aggregate = aggregate
        self._delta = float(delta)
        self._segments = segments
        self._directory = directory
        self._cumulative = cumulative
        self._key_measure = key_measure
        self._segment_extreme_tree = segment_extreme_tree
        self._exact_fallback = exact_fallback
        self._config = config
        self._kernel_choice = "auto"
        # The certified bound depends only on construction-time quantities;
        # computing it once here keeps it off the per-query hot path.
        self._certified_bound = certified_absolute_bound(self._delta, aggregate, num_keys=1)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        keys: np.ndarray,
        measures: np.ndarray | None = None,
        aggregate: Aggregate = Aggregate.COUNT,
        *,
        delta: float | None = None,
        guarantee: Guarantee | None = None,
        config: IndexConfig | None = None,
    ) -> "PolyFitIndex":
        """Build a PolyFit index from raw (key, measure) records.

        Parameters
        ----------
        keys, measures:
            The dataset.  ``measures`` may be omitted for COUNT.
        aggregate:
            Which aggregate this index answers (COUNT, SUM, MIN or MAX).
        delta:
            Per-segment fitting budget.  Either ``delta`` or an *absolute*
            ``guarantee`` must be provided; for relative-error workloads pass
            ``delta`` directly (the paper uses delta = 50 for one key).
        guarantee:
            An absolute guarantee from which delta is derived via
            Lemma 2 (SUM/COUNT) or Lemma 4 (MAX/MIN).
        config:
            Polynomial degree, segmentation method and fan-out.

        Returns
        -------
        PolyFitIndex
        """
        config = config or IndexConfig()
        if delta is None:
            if guarantee is None:
                raise QueryError("provide either delta or an absolute guarantee")
            if guarantee.kind is not GuaranteeKind.ABSOLUTE:
                raise QueryError(
                    "only absolute guarantees determine delta at build time; "
                    "pass delta explicitly for relative-error workloads"
                )
            delta = delta_for_absolute(guarantee.epsilon, aggregate, num_keys=1)

        keys = np.asarray(keys, dtype=np.float64)
        if measures is None:
            if aggregate is not Aggregate.COUNT:
                raise DataError(f"{aggregate.value} requires measures")
            measures = np.ones_like(keys)
        measures = np.asarray(measures, dtype=np.float64)

        if aggregate.is_cumulative:
            cumulative = build_cumulative_function(keys, measures, aggregate)
            function_keys, function_values = cumulative.keys, cumulative.values
            key_measure = None
        else:
            key_measure = build_key_measure_function(keys, measures, aggregate)
            function_keys, function_values = key_measure.keys, key_measure.measures
            cumulative = None

        segments = greedy_segmentation(
            function_keys,
            function_values,
            delta=delta,
            degree=config.fit.degree,
            use_exponential_search=config.segmentation.method != "greedy",
            solver=config.fit.solver,
            early_accept=config.segmentation.early_accept,
        )
        directory = SegmentDirectory.from_segments(segments)

        segment_extreme_tree = None
        exact_fallback = None
        if aggregate.is_extremum:
            assert key_measure is not None
            # Segments tile [0, n), so one reduceat over the segment starts
            # yields every per-segment extreme without a Python-level loop.
            starts = np.array([segment.start for segment in segments], dtype=np.intp)
            reducer = np.maximum if aggregate is Aggregate.MAX else np.minimum
            per_segment_extremes = reducer.reduceat(key_measure.measures, starts)
            segment_extreme_tree = AggregateSegmentTree(
                keys=np.arange(len(segments), dtype=np.float64),
                measures=per_segment_extremes,
                aggregate=aggregate,
            )
        else:
            assert cumulative is not None
            exact_fallback = KeyCumulativeArray.from_cumulative(cumulative)

        return cls(
            aggregate=aggregate,
            delta=delta,
            segments=segments,
            directory=directory,
            cumulative=cumulative,
            key_measure=key_measure,
            segment_extreme_tree=segment_extreme_tree,
            exact_fallback=exact_fallback,
            config=config,
        )

    @classmethod
    def from_function(
        cls,
        function: CumulativeFunction | KeyMeasureFunction,
        *,
        delta: float,
        config: IndexConfig | None = None,
    ) -> "PolyFitIndex":
        """Build a PolyFit index from an already-constructed target function."""
        config = config or IndexConfig()
        if isinstance(function, CumulativeFunction):
            keys, values = function.keys, function.values
            aggregate = function.aggregate
        elif isinstance(function, KeyMeasureFunction):
            keys, values = function.keys, function.measures
            aggregate = function.aggregate
        else:  # pragma: no cover - defensive
            raise DataError(f"unsupported function type {type(function)!r}")

        index = cls.build(
            keys=keys,
            measures=None if aggregate is Aggregate.COUNT else values,
            aggregate=aggregate,
            delta=delta,
            config=config,
        )
        return index

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the index answers."""
        return self._aggregate

    @property
    def delta(self) -> float:
        """Per-segment fitting budget used at construction."""
        return self._delta

    @property
    def certified_bound(self) -> float:
        """Construction-time certified absolute error bound (Lemma 2 / 4)."""
        return self._certified_bound

    @property
    def num_segments(self) -> int:
        """Number of fitted segments (``h`` in Figure 6)."""
        return len(self._segments)

    @property
    def segments(self) -> list[Segment]:
        """The fitted segments (read-only view)."""
        return list(self._segments)

    @property
    def config(self) -> IndexConfig:
        """Configuration used to build the index."""
        return self._config

    @property
    def degree(self) -> int:
        """Polynomial degree of the segments."""
        return self._config.fit.degree

    @property
    def kernel(self) -> str:
        """Resolved batch-kernel backend: ``"numba"`` or ``"numpy"``."""
        return resolve_kernel(self._kernel_choice)

    def set_kernel(self, choice: str) -> None:
        """Select the batch-kernel backend (``"auto"``/``"numba"``/``"numpy"``).

        ``"numba"`` routes batch estimates and relative-certificate queries
        through the fused compiled kernels of :mod:`repro.kernels`;
        ``"numpy"`` pins the multi-pass vectorized path (the pinnable
        oracle); ``"auto"`` (the default) picks numba when importable.
        Scalar queries always use the NumPy/scalar path.
        """
        resolve_kernel(choice)  # validate eagerly, including availability
        self._kernel_choice = choice

    def size_in_bytes(self) -> int:
        """Approximate in-memory footprint of the *index payload*.

        Counts the stored float parameters (segment boundaries and polynomial
        coefficients, plus per-segment extremes for MAX/MIN) at 8 bytes each,
        mirroring how the paper reports index size (Figure 19).  The exact
        fallback structure is excluded (it is the baseline structure every
        method needs for uncertified relative queries), as is the lazily
        built O(n) batch extreme payload — an optional acceleration cache,
        not part of the learned index payload the figure compares.
        """
        floats = 0
        for segment in self._segments:
            floats += 2  # key_low, key_high
            floats += segment.polynomial.num_parameters
        if self._segment_extreme_tree is not None:
            floats += self.num_segments  # one extreme per segment
        return floats * 8

    # ------------------------------------------------------------------ #
    # Query answering
    # ------------------------------------------------------------------ #

    def query(self, query: RangeQuery, guarantee: Guarantee | None = None) -> QueryResult:
        """Answer an approximate range aggregate query.

        Parameters
        ----------
        query:
            The range and aggregate.  The aggregate must match the one the
            index was built for.
        guarantee:
            Optional requested guarantee.  Absolute guarantees are checked
            against the construction-time budget; relative guarantees use the
            certificate of Lemma 3/5 and fall back to the exact method when
            it fails.

        Returns
        -------
        QueryResult
        """
        if query.aggregate is not self._aggregate:
            raise NotSupportedError(
                f"index built for {self._aggregate.value} cannot answer "
                f"{query.aggregate.value} queries"
            )
        approx = self._approximate(query)
        bound = self._certified_bound

        if guarantee is None:
            return QueryResult(value=approx, guaranteed=True, error_bound=bound)

        if guarantee.kind is GuaranteeKind.ABSOLUTE:
            if bound <= guarantee.epsilon + 1e-12:
                return QueryResult(value=approx, guaranteed=True, error_bound=bound)
            # The index was built with a looser budget than requested.
            return QueryResult(value=approx, guaranteed=False, error_bound=bound)

        # Relative guarantee: certify via Lemma 3 / 5, else exact fallback.
        if certify_relative(approx, self._delta, guarantee.epsilon, self._aggregate, num_keys=1):
            return QueryResult(value=approx, guaranteed=True, error_bound=bound)
        exact = self._exact(query)
        return QueryResult(value=exact, guaranteed=True, exact_fallback=True, error_bound=0.0)

    def query_value(self, low: float, high: float) -> float:
        """Convenience: the raw approximate value for ``[low, high]``."""
        return self._approximate(RangeQuery(low=low, high=high, aggregate=self._aggregate))

    def estimate(self, query: RangeQuery) -> float:
        """The approximate answer without any certification logic."""
        return self._approximate(query)

    # ------------------------------------------------------------------ #
    # Batch query answering
    # ------------------------------------------------------------------ #

    def estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Approximate answers for N ranges ``[lows[i], highs[i]]`` at once.

        SUM/COUNT runs entirely on flat arrays: two vectorized
        ``searchsorted`` calls snap all bounds to sampled keys, the segment
        directory is probed once for every corner, and the gathered
        coefficient rows are evaluated with a single Horner pass
        (:meth:`PolynomialBank.evaluate`) — O(1) NumPy calls for the whole
        workload.  MAX/MIN vectorizes the snapping and segment location and
        resolves the per-query boundary/interior merge individually (window
        sizes differ per query).
        """
        lows, highs = validate_bounds_batch(lows, highs)
        return self._estimate_batch_validated(lows, highs)

    def _estimate_batch_validated(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Dispatch already-validated bound arrays to the batch evaluators."""
        if self.kernel == "numba":
            return self._fused_batch(lows, highs, np.inf)[0]
        return self._estimate_batch_validated_numpy(lows, highs)

    def _estimate_batch_validated_numpy(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> np.ndarray:
        """The multi-pass NumPy batch path, regardless of the kernel knob.

        This is the pinnable oracle the kernel bit-identity tests compare
        against.
        """
        if self._aggregate.is_cumulative:
            return self._approximate_cumulative_batch(lows, highs)
        return self._approximate_extreme_batch(lows, highs)

    def _key_span(self) -> tuple[float, float]:
        """Lowest and highest sampled key of the target function."""
        function = self._cumulative if self._aggregate.is_cumulative else self._key_measure
        assert function is not None
        return float(function.keys[0]), float(function.keys[-1])

    def _fused_batch(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        threshold: float,
        *,
        compiled: bool | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Answer a validated batch through the fused compiled kernels.

        Returns ``(values, certified)`` where ``certified`` is the Lemma 3/5
        relative certificate against ``threshold`` computed inside the same
        pass (all-False for the infinite threshold estimate-only callers
        pass).  Bit-identical to the multi-pass NumPy path by construction —
        the kernels replicate its floating-point operations one for one.
        """
        if self._aggregate.is_cumulative:
            assert self._cumulative is not None
            bank = self._directory.bank
            return fused1d.run_cumulative(
                self._cumulative.keys,
                self._directory.keys,
                bank.coeffs,
                bank.shifts,
                bank.scales,
                lows,
                highs,
                threshold,
                compiled=compiled,
            )
        assert self._key_measure is not None
        extremes = self._extremes()
        return fused1d.run_extreme(
            self._key_measure.keys,
            self._directory.keys,
            extremes.prefix,
            extremes.suffix,
            extremes.segment_extremes,
            extremes.poly_values,
            extremes.maximize,
            lows,
            highs,
            threshold,
            compiled=compiled,
        )

    def exact_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Exact answers for N ranges via the fallback structures."""
        lows, highs = validate_bounds_batch(lows, highs)
        if self._aggregate.is_cumulative:
            assert self._cumulative is not None
            return self._cumulative.range_sum_batch(lows, highs)
        assert self._key_measure is not None
        return self._key_measure.range_extreme_batch(lows, highs)

    def query_batch(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        guarantee: Guarantee | None = None,
    ) -> BatchQueryResult:
        """Answer N queries with the same semantics as :meth:`query`.

        The guarantee logic is fully vectorized: the certified bound is a
        construction-time constant, the Lemma 3/5 relative certificate is one
        array comparison, and only the failing subset takes the masked
        exact-fallback pass.  Queries inherit the index's aggregate.
        """
        lows, highs = validate_bounds_batch(lows, highs)
        certified = None
        if (
            guarantee is not None
            and guarantee.kind is not GuaranteeKind.ABSOLUTE
            and self.kernel == "numba"
        ):
            # Fuse the Lemma 3/5 certificate into the same compiled pass;
            # the threshold expression matches resolve_batch_certificates.
            threshold = self._certified_bound * (1.0 + 1.0 / guarantee.epsilon)
            approx, certified = self._fused_batch(lows, highs, threshold)
        else:
            approx = self._estimate_batch_validated(lows, highs)
        # PolyFit semantics for an unmet absolute guarantee: answer with the
        # approximation flagged un-guaranteed (the index was built with a
        # looser budget), never the exact method (absolute_fallback=False).
        return resolve_batch_certificates(
            approx,
            error_bound=self._certified_bound,
            guarantee=guarantee,
            exact_for_mask=lambda mask: self.exact_batch(lows[mask], highs[mask]),
            absolute_fallback=False,
            certified=certified,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _approximate(self, query: RangeQuery) -> float:
        if self._aggregate.is_cumulative:
            return self._approximate_cumulative(query)
        return self._approximate_extreme(query)

    def _approximate_cumulative(self, query: RangeQuery) -> float:
        # Snap the query bounds to the sampled keys of the cumulative
        # function before evaluating the segment polynomials: the bounded
        # delta-error constraint (Definition 3) holds at the sampled keys, so
        # evaluating there makes the Lemma 2 bound valid for arbitrary
        # real-valued query bounds, not just bounds drawn from the dataset.
        assert self._cumulative is not None
        keys = self._cumulative.keys
        # Upper corner: last sampled key <= high (inclusive range).
        upper_idx = int(np.searchsorted(keys, query.high, side="right")) - 1
        if upper_idx < 0:
            return 0.0
        # Lower corner: last sampled key strictly below low, so a record at
        # exactly `low` is included in the range (matching the exact method).
        lower_idx = int(np.searchsorted(keys, query.low, side="left")) - 1

        upper_value = self._evaluate_at_sample(upper_idx)
        lower_value = 0.0 if lower_idx < 0 else self._evaluate_at_sample(lower_idx)
        return upper_value - lower_value

    def _evaluate_at_sample(self, sample_index: int) -> float:
        """Evaluate the covering segment's polynomial at a sampled key."""
        assert self._cumulative is not None
        key = float(self._cumulative.keys[sample_index])
        segment = self._segments[self._directory.locate(key)]
        return float(segment.polynomial(key))

    def _approximate_cumulative_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorized counterpart of :meth:`_approximate_cumulative`.

        The same two-corner evaluation (``P(uq) - P(lq)`` after snapping to
        sampled keys), done for every query at once: one ``searchsorted`` per
        side, one directory probe per side, one Horner pass over the gathered
        coefficient rows.
        """
        assert self._cumulative is not None
        keys = self._cumulative.keys
        upper_idx = np.searchsorted(keys, highs, side="right") - 1
        lower_idx = np.searchsorted(keys, lows, side="left") - 1

        sample_keys = np.concatenate(
            (keys[np.clip(upper_idx, 0, None)], keys[np.clip(lower_idx, 0, None)])
        )
        rows = self._directory.locate_batch(sample_keys)
        corner_values = self._directory.bank.evaluate(rows, sample_keys)
        n = highs.size
        upper_values = np.where(upper_idx >= 0, corner_values[:n], 0.0)
        lower_values = np.where(lower_idx >= 0, corner_values[n:], 0.0)
        # A query entirely below the first sampled key has no records.
        return np.where(upper_idx < 0, 0.0, upper_values - lower_values)

    def _approximate_extreme(self, query: RangeQuery) -> float:
        assert self._key_measure is not None
        # Snap the bounds to the sampled keys so the query range matches the
        # records actually selected by the exact semantics (and so an empty
        # range is detected as such).
        keys = self._key_measure.keys
        low_idx = int(np.searchsorted(keys, query.low, side="left"))
        high_idx = int(np.searchsorted(keys, query.high, side="right")) - 1
        if high_idx < low_idx:
            return float("nan")
        snapped_low = float(keys[low_idx])
        snapped_high = float(keys[high_idx])
        query = RangeQuery(snapped_low, snapped_high, query.aggregate)

        first, last = self._directory.covering_range(query.low, query.high)
        maximize = self._aggregate is Aggregate.MAX
        best = -np.inf if maximize else np.inf

        def merge(value: float) -> None:
            nonlocal best
            best = max(best, value) if maximize else min(best, value)

        def merge_boundary(segment_index: int) -> None:
            # Evaluate the boundary segment's polynomial at the sampled keys
            # that fall inside the query range.  Each evaluation deviates from
            # the true measure by at most delta (Definition 3), so the merged
            # extreme deviates by at most delta as well (Lemma 4).  Evaluating
            # at sampled keys rather than maximizing the continuous polynomial
            # (Eq. 17) avoids counting overshoot between samples against the
            # guarantee.  The in-range keys form a contiguous slice, found by
            # binary search.
            segment = self._segments[segment_index]
            keys_in_segment = keys[segment.start: segment.stop]
            lo = int(np.searchsorted(keys_in_segment, query.low, side="left"))
            hi = int(np.searchsorted(keys_in_segment, query.high, side="right"))
            if hi <= lo:
                return
            values = np.asarray(segment.polynomial(keys_in_segment[lo:hi]))
            merge(float(values.max() if maximize else values.min()))

        merge_boundary(first)
        if last != first:
            merge_boundary(last)
        if last - first > 1 and self._segment_extreme_tree is not None:
            # Fully covered middle segments: use their exact stored extremes
            # through the aggregate tree (Section V-B).
            covered = self._segment_extreme_tree.range_extreme(first + 1, last - 1)
            merge(covered)

        if not np.isfinite(best):
            # Empty range (no data keys inside): match the exact baseline.
            return float("nan")
        return float(best)

    def _approximate_extreme_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Batch counterpart of :meth:`_approximate_extreme` — O(1) NumPy calls.

        Snapping to sampled keys and locating the covering segments is two
        ``searchsorted`` passes; the boundary-segment merges then come from
        the directory's per-segment prefix/suffix extreme arrays (one gather
        per side) and the fully covered interior from its range-extreme table
        over the stored per-segment extremes — no per-query Python work.
        """
        assert self._key_measure is not None
        keys = self._key_measure.keys
        lo_idx = np.searchsorted(keys, lows, side="left")
        hi_idx = np.searchsorted(keys, highs, side="right") - 1
        out = np.full(lows.shape, np.nan, dtype=np.float64)
        non_empty = hi_idx >= lo_idx
        if not np.any(non_empty):
            return out

        lo = lo_idx[non_empty]
        hi = hi_idx[non_empty]
        first = self._directory.locate_batch(keys[lo])
        last = self._directory.locate_batch(keys[hi])
        extremes = self._extremes()
        out[non_empty] = extremes.query(lo, hi, first, last)
        return out

    def _extremes(self):
        """The directory's extreme payload, built lazily on first batch use.

        The prefix/suffix arrays and range-extreme tables are O(n) doubles —
        a batch-only acceleration cache, so scalar-only users (and every
        deserialization) never pay for it.
        """
        assert self._key_measure is not None
        if self._directory.extremes is None:
            self._directory.attach_extremes(
                self._key_measure.keys, self._key_measure.measures, self._aggregate
            )
        return self._directory.extremes

    def _exact(self, query: RangeQuery) -> float:
        if self._aggregate.is_cumulative:
            assert self._cumulative is not None
            return self._cumulative.range_sum(query.low, query.high)
        assert self._key_measure is not None
        return self._key_measure.range_extreme(query.low, query.high)

    def exact(self, query: RangeQuery) -> float:
        """Exact answer via the fallback structures (used by tests/benches)."""
        if query.aggregate is not self._aggregate:
            raise NotSupportedError("aggregate mismatch")
        return self._exact(query)

    def require_guarantee(self, query: RangeQuery, guarantee: Guarantee) -> float:
        """Answer and raise if the guarantee cannot be certified (no fallback)."""
        approx = self._approximate(query)
        bound = self._certified_bound
        if guarantee.kind is GuaranteeKind.ABSOLUTE:
            if bound > guarantee.epsilon + 1e-12:
                raise GuaranteeNotSatisfiedError(
                    f"index delta {self._delta} certifies only +/-{bound}, "
                    f"requested eps_abs={guarantee.epsilon}"
                )
            return approx
        if not certify_relative(approx, self._delta, guarantee.epsilon, self._aggregate, 1):
            raise GuaranteeNotSatisfiedError(
                "relative-error certificate failed; use query() for automatic fallback"
            )
        return approx
