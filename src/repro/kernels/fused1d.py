"""Fused one-key batch kernels: locate + gather + Horner + certificate.

Each kernel answers one query per loop iteration with plain scalar
arithmetic, replicating the exact floating-point operations of the NumPy
multi-pass path in :class:`~repro.index.polyfit1d.PolyFitIndex`:

* bisections use ``np.searchsorted``'s comparison semantics (NaN sorts
  last, ``side='left'``/``'right'`` tie rules);
* polynomial evaluation is the same descending-column Horner recurrence as
  :meth:`~repro.fitting.polynomial.PolynomialBank.evaluate`;
* the SUM/COUNT answer is the same ``upper - lower`` subtraction with a
  literal ``0.0`` lower corner below the first sample;
* the MAX/MIN merge combines the same prefix/suffix/interior values as
  :class:`~repro.index.directory.SegmentExtremeDirectory` (max/min over a
  fixed operand set is the same float under any evaluation order);
* the Lemma 3/5 certificate is the same ``value >= threshold`` compare
  (NaN fails it, matching the ``errstate``-guarded NumPy compare).

The functions are written to be Numba-compilable but remain executable as
plain Python, which is how the bit-identity tests pin them where numba is
not installed.  Compiled variants are built lazily on first use.
"""

from __future__ import annotations

import numpy as np

from ._numba import NUMBA_AVAILABLE, jit_parallel, jit_scalar, prange

__all__ = ["run_cumulative", "run_extreme"]


def _lt_py(a: float, b: float) -> bool:
    # np.searchsorted's total order: NaN compares greater than any number.
    return a < b or (b != b and a == a)


_lt = jit_scalar(_lt_py)


def _bisect_left_py(values: np.ndarray, target: float) -> int:
    lo = 0
    hi = values.shape[0]
    while lo < hi:
        mid = (lo + hi) >> 1
        if _lt(values[mid], target):
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_right_py(values: np.ndarray, target: float) -> int:
    lo = 0
    hi = values.shape[0]
    while lo < hi:
        mid = (lo + hi) >> 1
        if _lt(target, values[mid]):
            hi = mid
        else:
            lo = mid + 1
    return lo


_bisect_left = jit_scalar(_bisect_left_py)
_bisect_right = jit_scalar(_bisect_right_py)


def _locate_row_py(dir_keys: np.ndarray, key: float) -> int:
    # SegmentDirectory.locate: searchsorted right minus one, clamped.
    row = _bisect_right(dir_keys, key) - 1
    if row < 0:
        row = 0
    elif row >= dir_keys.shape[0]:
        row = dir_keys.shape[0] - 1
    return row


_locate_row = jit_scalar(_locate_row_py)


def _eval_segment_py(
    coeffs: np.ndarray,
    shifts: np.ndarray,
    scales: np.ndarray,
    dir_keys: np.ndarray,
    key: float,
) -> float:
    row = _locate_row(dir_keys, key)
    t = (key - shifts[row]) / scales[row]
    width = coeffs.shape[1]
    result = coeffs[row, width - 1]
    for column in range(width - 2, -1, -1):
        result = result * t + coeffs[row, column]
    return result


_eval_segment = jit_scalar(_eval_segment_py)


def cumulative_kernel(
    sample_keys: np.ndarray,
    dir_keys: np.ndarray,
    coeffs: np.ndarray,
    shifts: np.ndarray,
    scales: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
    threshold: float,
    values: np.ndarray,
    certified: np.ndarray,
) -> None:
    """Fused SUM/COUNT pass: snap, locate, Horner, subtract, certify."""
    for i in prange(lows.shape[0]):
        upper_idx = _bisect_right(sample_keys, highs[i]) - 1
        if upper_idx < 0:
            values[i] = 0.0
            certified[i] = 0.0 >= threshold
            continue
        upper = _eval_segment(coeffs, shifts, scales, dir_keys, sample_keys[upper_idx])
        lower_idx = _bisect_left(sample_keys, lows[i]) - 1
        if lower_idx >= 0:
            lower = _eval_segment(
                coeffs, shifts, scales, dir_keys, sample_keys[lower_idx]
            )
        else:
            lower = 0.0
        value = upper - lower
        values[i] = value
        certified[i] = value >= threshold


def extreme_kernel(
    sample_keys: np.ndarray,
    dir_keys: np.ndarray,
    prefix: np.ndarray,
    suffix: np.ndarray,
    segment_extremes: np.ndarray,
    poly_values: np.ndarray,
    maximize: bool,
    lows: np.ndarray,
    highs: np.ndarray,
    threshold: float,
    values: np.ndarray,
    certified: np.ndarray,
) -> None:
    """Fused MAX/MIN pass: snap, locate, boundary/interior merge, certify."""
    for i in prange(lows.shape[0]):
        lo = _bisect_left(sample_keys, lows[i])
        hi = _bisect_right(sample_keys, highs[i]) - 1
        if hi < lo:
            values[i] = np.nan
            certified[i] = False
            continue
        first = _locate_row(dir_keys, sample_keys[lo])
        last = _locate_row(dir_keys, sample_keys[hi])
        if first == last:
            best = poly_values[lo]
            for k in range(lo + 1, hi + 1):
                value = poly_values[k]
                if maximize:
                    if value > best:
                        best = value
                else:
                    if value < best:
                        best = value
        else:
            head = suffix[lo]
            tail = prefix[hi]
            best = max(head, tail) if maximize else min(head, tail)
            for segment in range(first + 1, last):
                value = segment_extremes[segment]
                if maximize:
                    if value > best:
                        best = value
                else:
                    if value < best:
                        best = value
        values[i] = best
        certified[i] = best >= threshold


_COMPILED: dict[str, object] = {}


def _compiled(name: str, source) -> object:
    function = _COMPILED.get(name)
    if function is None:
        function = jit_parallel(source)
        _COMPILED[name] = function
    return function


def run_cumulative(
    sample_keys: np.ndarray,
    dir_keys: np.ndarray,
    coeffs: np.ndarray,
    shifts: np.ndarray,
    scales: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
    threshold: float = np.inf,
    *,
    compiled: bool | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Answer N SUM/COUNT ranges in one fused pass.

    Returns ``(values, certified)`` where ``certified`` is the Lemma 3
    relative certificate ``values >= threshold`` (all-False for the default
    infinite threshold — estimate-only callers ignore it).  ``compiled``
    defaults to whether numba is importable; passing ``False`` executes the
    plain-Python kernel source (the bit-identity pinning path).
    """
    n = lows.shape[0]
    values = np.empty(n, dtype=np.float64)
    certified = np.empty(n, dtype=np.bool_)
    use_compiled = NUMBA_AVAILABLE if compiled is None else compiled
    kernel = _compiled("cumulative", cumulative_kernel) if use_compiled else cumulative_kernel
    kernel(
        sample_keys, dir_keys, coeffs, shifts, scales,
        lows, highs, float(threshold), values, certified,
    )
    return values, certified


def run_extreme(
    sample_keys: np.ndarray,
    dir_keys: np.ndarray,
    prefix: np.ndarray,
    suffix: np.ndarray,
    segment_extremes: np.ndarray,
    poly_values: np.ndarray,
    maximize: bool,
    lows: np.ndarray,
    highs: np.ndarray,
    threshold: float = np.inf,
    *,
    compiled: bool | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Answer N MAX/MIN ranges in one fused pass; see :func:`run_cumulative`."""
    n = lows.shape[0]
    values = np.empty(n, dtype=np.float64)
    certified = np.empty(n, dtype=np.bool_)
    use_compiled = NUMBA_AVAILABLE if compiled is None else compiled
    kernel = _compiled("extreme", extreme_kernel) if use_compiled else extreme_kernel
    kernel(
        sample_keys, dir_keys, prefix, suffix, segment_extremes, poly_values,
        bool(maximize), lows, highs, float(threshold), values, certified,
    )
    return values, certified
