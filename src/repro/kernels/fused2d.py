"""Fused two-key batch kernels: 4-corner COUNT/SUM and rectangle MAX/MIN.

The corner kernel replicates :meth:`PolyFit2DIndex.estimate_batch` exactly,
per query: the below-domain zero rule and upper clamp, the dyadic-grid cell
location (validated floor-scale candidate corrected by one step, interior
``searchsorted``, or the midpoint descent — whichever the directory itself
uses), the Morton interleave, the ``searchsorted`` over leaf keys, nested
Horner over the gathered surface row (or the nearest-grid-sample rule with
the scalar ``argmin`` tie-break for exact cells), and the left-associated
inclusion-exclusion ``((c1 - c2) - c3) + c4``.

The extreme kernel answers rectangle MAX/MIN by scanning the x-sorted
window of the point set: max/min over the same closed-rectangle subset is
the same float whatever algorithm selects it, so results are bit-identical
to both the scalar leaf-merge oracle and the vectorized
:class:`~repro.index.directory.RectangleExtremeTree` (NaN for empty
rectangles included).

Written to be Numba-compilable while remaining executable as plain Python;
compiled variants are built lazily on first use.
"""

from __future__ import annotations

import numpy as np

from ._numba import NUMBA_AVAILABLE, jit_parallel, jit_scalar, prange
from .fused1d import _bisect_left, _bisect_right

__all__ = ["run_corners", "run_rectangle_extreme"]


def _axis_cell_py(
    coord: float, boundaries: np.ndarray, scale: float, depth: int
) -> int:
    # QuadDirectory._axis_cells, one coordinate at a time.  ``scale <= 0``
    # encodes "no validated uniform scale" (use the interior bisection);
    # an empty boundary array encodes "too deep to materialize" and is
    # handled by the caller via the midpoint descent.
    num_cells = boundaries.shape[0] - 1
    if scale > 0.0:
        cell = int(np.floor((coord - boundaries[0]) * scale))
        if cell < 0:
            cell = 0
        elif cell > num_cells - 1:
            cell = num_cells - 1
        if coord <= boundaries[cell]:
            cell -= 1
        if cell < 0:
            cell = 0
        if coord > boundaries[cell + 1]:
            cell += 1
        if cell > num_cells - 1:
            cell = num_cells - 1
        return cell
    lo = 1
    hi = num_cells
    while lo < hi:
        mid = (lo + hi) >> 1
        if boundaries[mid] < coord:
            lo = mid + 1
        else:
            hi = mid
    return lo - 1


_axis_cell = jit_scalar(_axis_cell_py)


def _descend_cell_py(coord: float, low: float, high: float, depth: int) -> int:
    # QuadDirectory._locate_descent, one axis of one point.
    cell = 0
    for _ in range(depth):
        mid = (low + high) / 2.0
        if coord > mid:
            cell = (cell << 1) | 1
            low = mid
        else:
            cell = cell << 1
            high = mid
    return cell


_descend_cell = jit_scalar(_descend_cell_py)


def _morton2_py(gx: int, gy: int, depth: int) -> int:
    # morton_interleave2 bit placement: gx bit k -> 2k, gy bit k -> 2k + 1.
    code = 0
    for bit in range(depth):
        code |= ((gx >> bit) & 1) << (2 * bit)
        code |= ((gy >> bit) & 1) << (2 * bit + 1)
    return code


_morton2 = jit_scalar(_morton2_py)


def _bisect_right_int_py(values: np.ndarray, target: int) -> int:
    lo = 0
    hi = values.shape[0]
    while lo < hi:
        mid = (lo + hi) >> 1
        if values[mid] <= target:
            lo = mid + 1
        else:
            hi = mid
    return lo


_bisect_right_int = jit_scalar(_bisect_right_int_py)


def _corner_value_py(
    u: float,
    v: float,
    xmin: float,
    xmax: float,
    ymin: float,
    ymax: float,
    rxmin: float,
    rxmax: float,
    rymin: float,
    rymax: float,
    depth: int,
    x_boundaries: np.ndarray,
    y_boundaries: np.ndarray,
    x_scale: float,
    y_scale: float,
    leaf_keys: np.ndarray,
    exact_mask: np.ndarray,
    exact_ranges: np.ndarray,
    coeffs: np.ndarray,
    shift_u: np.ndarray,
    scale_u: np.ndarray,
    shift_v: np.ndarray,
    scale_v: np.ndarray,
    grid_x: np.ndarray,
    grid_y: np.ndarray,
    grid_cf: np.ndarray,
) -> float:
    if u < xmin or v < ymin:
        return 0.0
    if u > xmax:
        u = xmax
    if v > ymax:
        v = ymax
    if x_boundaries.shape[0] > 0:
        gx = _axis_cell(u, x_boundaries, x_scale, depth)
        gy = _axis_cell(v, y_boundaries, y_scale, depth)
    else:
        gx = _descend_cell(u, rxmin, rxmax, depth)
        gy = _descend_cell(v, rymin, rymax, depth)
    code = _morton2(gx, gy, depth)
    row = _bisect_right_int(leaf_keys, code) - 1
    if row < 0:
        row = 0
    elif row >= leaf_keys.shape[0]:
        row = leaf_keys.shape[0] - 1
    if exact_mask[row]:
        ix0 = exact_ranges[row, 0]
        ix1 = exact_ranges[row, 1]
        iy0 = exact_ranges[row, 2]
        iy1 = exact_ranges[row, 3]
        p = _bisect_left(grid_x, u)
        i0 = min(max(p - 1, ix0), ix1)
        i1 = min(max(p, ix0), ix1)
        q = _bisect_left(grid_y, v)
        j0 = min(max(q - 1, iy0), iy1)
        j1 = min(max(q, iy0), iy1)
        du0 = (grid_x[i0] - u) ** 2
        du1 = (grid_x[i1] - u) ** 2
        dv0 = (grid_y[j0] - v) ** 2
        dv1 = (grid_y[j1] - v) ** 2
        best = du0 + dv0
        choice = 0
        candidate = du0 + dv1
        if candidate < best:
            best = candidate
            choice = 1
        candidate = du1 + dv0
        if candidate < best:
            best = candidate
            choice = 2
        candidate = du1 + dv1
        if candidate < best:
            choice = 3
        ii = i1 if choice >= 2 else i0
        jj = j1 if choice % 2 == 1 else j0
        return grid_cf[ii, jj]
    s = (u - shift_u[row]) / scale_u[row]
    t = (v - shift_v[row]) / scale_v[row]
    width = coeffs.shape[1]
    result = 0.0
    for i in range(width - 1, -1, -1):
        inner = coeffs[row, i, width - 1]
        for j in range(width - 2, -1, -1):
            inner = inner * t + coeffs[row, i, j]
        result = result * s + inner
    return result


_corner_value = jit_scalar(_corner_value_py)


def corner_kernel(
    xmin: float,
    xmax: float,
    ymin: float,
    ymax: float,
    rxmin: float,
    rxmax: float,
    rymin: float,
    rymax: float,
    depth: int,
    x_boundaries: np.ndarray,
    y_boundaries: np.ndarray,
    x_scale: float,
    y_scale: float,
    leaf_keys: np.ndarray,
    exact_mask: np.ndarray,
    exact_ranges: np.ndarray,
    coeffs: np.ndarray,
    shift_u: np.ndarray,
    scale_u: np.ndarray,
    shift_v: np.ndarray,
    scale_v: np.ndarray,
    grid_x: np.ndarray,
    grid_y: np.ndarray,
    grid_cf: np.ndarray,
    x_lows: np.ndarray,
    x_highs: np.ndarray,
    y_lows: np.ndarray,
    y_highs: np.ndarray,
    threshold: float,
    values: np.ndarray,
    certified: np.ndarray,
) -> None:
    """Fused 4-corner inclusion-exclusion pass with Lemma 7 certificates."""
    for i in prange(x_lows.shape[0]):
        c1 = _corner_value(
            x_highs[i], y_highs[i], xmin, xmax, ymin, ymax, rxmin, rxmax, rymin, rymax, depth,
            x_boundaries, y_boundaries, x_scale, y_scale,
            leaf_keys, exact_mask, exact_ranges,
            coeffs, shift_u, scale_u, shift_v, scale_v,
            grid_x, grid_y, grid_cf,
        )
        c2 = _corner_value(
            x_lows[i], y_highs[i], xmin, xmax, ymin, ymax, rxmin, rxmax, rymin, rymax, depth,
            x_boundaries, y_boundaries, x_scale, y_scale,
            leaf_keys, exact_mask, exact_ranges,
            coeffs, shift_u, scale_u, shift_v, scale_v,
            grid_x, grid_y, grid_cf,
        )
        c3 = _corner_value(
            x_highs[i], y_lows[i], xmin, xmax, ymin, ymax, rxmin, rxmax, rymin, rymax, depth,
            x_boundaries, y_boundaries, x_scale, y_scale,
            leaf_keys, exact_mask, exact_ranges,
            coeffs, shift_u, scale_u, shift_v, scale_v,
            grid_x, grid_y, grid_cf,
        )
        c4 = _corner_value(
            x_lows[i], y_lows[i], xmin, xmax, ymin, ymax, rxmin, rxmax, rymin, rymax, depth,
            x_boundaries, y_boundaries, x_scale, y_scale,
            leaf_keys, exact_mask, exact_ranges,
            coeffs, shift_u, scale_u, shift_v, scale_v,
            grid_x, grid_y, grid_cf,
        )
        value = ((c1 - c2) - c3) + c4
        values[i] = value
        certified[i] = value >= threshold


def rectangle_extreme_kernel(
    xs: np.ndarray,
    ys: np.ndarray,
    measures: np.ndarray,
    maximize: bool,
    x_lows: np.ndarray,
    x_highs: np.ndarray,
    y_lows: np.ndarray,
    y_highs: np.ndarray,
    out: np.ndarray,
) -> None:
    """Rectangle MAX/MIN by x-window scan over the x-sorted point arrays."""
    for i in prange(x_lows.shape[0]):
        lo = _bisect_left(xs, x_lows[i])
        hi = _bisect_right(xs, x_highs[i])
        y_low = y_lows[i]
        y_high = y_highs[i]
        best = -np.inf if maximize else np.inf
        for k in range(lo, hi):
            y = ys[k]
            if y_low <= y <= y_high:
                value = measures[k]
                if maximize:
                    if value > best:
                        best = value
                else:
                    if value < best:
                        best = value
        out[i] = best if np.isfinite(best) else np.nan


_COMPILED: dict[str, object] = {}


def _compiled(name: str, source) -> object:
    function = _COMPILED.get(name)
    if function is None:
        function = jit_parallel(source)
        _COMPILED[name] = function
    return function


def run_corners(
    payload: tuple,
    x_lows: np.ndarray,
    x_highs: np.ndarray,
    y_lows: np.ndarray,
    y_highs: np.ndarray,
    threshold: float = np.inf,
    *,
    compiled: bool | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Answer N rectangle COUNT/SUM queries in one fused pass.

    ``payload`` is the flat-array tuple packed by
    :meth:`PolyFit2DIndex._kernel_payload`.  Returns ``(values, certified)``
    like the 1-D kernels; ``compiled=False`` executes the plain-Python
    kernel source for bit-identity pinning.
    """
    n = x_lows.shape[0]
    values = np.empty(n, dtype=np.float64)
    certified = np.empty(n, dtype=np.bool_)
    use_compiled = NUMBA_AVAILABLE if compiled is None else compiled
    kernel = _compiled("corners", corner_kernel) if use_compiled else corner_kernel
    kernel(
        *payload, x_lows, x_highs, y_lows, y_highs,
        float(threshold), values, certified,
    )
    return values, certified


def run_rectangle_extreme(
    xs: np.ndarray,
    ys: np.ndarray,
    measures: np.ndarray,
    maximize: bool,
    x_lows: np.ndarray,
    x_highs: np.ndarray,
    y_lows: np.ndarray,
    y_highs: np.ndarray,
    *,
    compiled: bool | None = None,
) -> np.ndarray:
    """Rectangle MAX/MIN for N queries; ``xs`` must be sorted ascending."""
    out = np.empty(x_lows.shape[0], dtype=np.float64)
    use_compiled = NUMBA_AVAILABLE if compiled is None else compiled
    kernel = (
        _compiled("rectangle_extreme", rectangle_extreme_kernel)
        if use_compiled
        else rectangle_extreme_kernel
    )
    kernel(xs, ys, measures, bool(maximize), x_lows, x_highs, y_lows, y_highs, out)
    return out
