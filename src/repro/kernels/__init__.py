"""Fused batch-query kernels for the PolyFit hot path.

The batch read path of both PolyFit indexes is a chain of separate NumPy
passes (searchsorted snap, directory locate, coefficient gather, Horner,
certificate compare), each materializing a full-size temporary.  This
package fuses the chain into a single compiled pass per query — Numba
``@njit(parallel=True, cache=True)`` when numba is importable — with a
bit-identical pure-NumPy fallback selected at import time.

Backend selection is a three-way knob, threaded from
``QueryEngine.for_index(kernel=...)`` down to the indexes:

* ``"auto"`` — numba when importable, else the NumPy multi-pass path;
* ``"numba"`` — force the compiled kernels (error when numba is missing);
* ``"numpy"`` — pin the multi-pass NumPy path (the pinnable oracle).

The kernel *source* functions in :mod:`.fused1d` / :mod:`.fused2d` are
plain Python: they replicate the NumPy path's floating-point operations
element for element (same bisection semantics as ``np.searchsorted``, same
Horner recurrence order, same inclusion-exclusion association), so tests
can pin bit-identity by executing them uncompiled even where numba is not
installed.  Numba only changes *how fast* the same operations run.
"""

from __future__ import annotations

from ..errors import QueryError
from ._numba import NUMBA_AVAILABLE, numba_version

__all__ = [
    "KERNEL_CHOICES",
    "NUMBA_AVAILABLE",
    "resolve_kernel",
    "runtime_info",
]

#: Valid values for every ``kernel=`` knob in the library.
KERNEL_CHOICES = ("auto", "numba", "numpy")


def resolve_kernel(choice: str) -> str:
    """Resolve a ``kernel=`` knob value to a concrete backend name.

    ``"auto"`` selects ``"numba"`` exactly when numba is importable.
    Requesting ``"numba"`` without numba installed is an error rather than
    a silent downgrade — the knob exists so benchmarks and tests can rely
    on which backend actually ran.
    """
    if choice not in KERNEL_CHOICES:
        raise QueryError(
            f"unknown kernel {choice!r}; expected one of {KERNEL_CHOICES}"
        )
    if choice == "auto":
        return "numba" if NUMBA_AVAILABLE else "numpy"
    if choice == "numba" and not NUMBA_AVAILABLE:
        raise QueryError("kernel='numba' requested but numba is not importable")
    return choice


def runtime_info() -> dict:
    """Describe the kernel runtime for benchmark artifacts.

    Every ``BENCH_*.json`` payload embeds this so recorded numbers carry
    which backend produced them.
    """
    return {
        "numba_available": NUMBA_AVAILABLE,
        "numba_version": numba_version(),
        "default_kernel": resolve_kernel("auto"),
    }
