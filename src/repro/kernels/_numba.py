"""Import-gated numba shims shared by the kernel modules.

Numba is an optional dependency: when it is importable the kernel source
functions are compiled with ``@njit(parallel=True, cache=True)`` on first
use; when it is not, ``prange`` degrades to ``range`` so the same source
functions run as plain Python (slow, but bit-identical — which is what the
pinning tests execute).
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
    from numba import prange
except ImportError:  # pragma: no cover - the local default
    _numba = None
    prange = range

NUMBA_AVAILABLE = _numba is not None

__all__ = ["NUMBA_AVAILABLE", "prange", "jit_scalar", "jit_parallel", "numba_version"]


def numba_version() -> str | None:
    """The installed numba version, or ``None`` when numba is absent."""
    return None if _numba is None else str(_numba.__version__)


def jit_scalar(function):
    """Compile a scalar helper with ``@njit(cache=True)`` when possible.

    Without numba the function is returned unchanged, so kernel sources
    calling it keep working as plain Python.
    """
    if _numba is None:
        return function
    return _numba.njit(cache=True)(function)


def jit_parallel(function):
    """Compile a per-query kernel with ``@njit(parallel=True, cache=True)``.

    Raises when numba is missing; callers must gate on
    :data:`NUMBA_AVAILABLE` (the resolve logic in the package root does).
    """
    if _numba is None:  # pragma: no cover - defensive
        raise RuntimeError("numba is not importable; cannot compile kernels")
    return _numba.njit(parallel=True, cache=True)(function)
