"""Observability layer: metrics registry, sampled tracing, slow-query log.

Dependency-free (stdlib + numpy) so it can instrument every layer of the
system — serving front, coalescer, engine host, result cache, shard pools,
fleet router, WAL, and compaction — without pulling a client library into
the hot path.  See ``docs/OBSERVABILITY.md`` for the metric catalogue.
"""

from repro.obs.metrics import (
    EXPOSITION_CONTENT_TYPE,
    DEFAULT_LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NullInstrument,
    counter_family,
    exposed_metric_names,
    gauge_family,
    histogram_family,
    log_buckets,
    validate_exposition,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import Span, Trace, Tracer

__all__ = [
    "EXPOSITION_CONTENT_TYPE",
    "DEFAULT_LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "CounterFamily",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NullInstrument",
    "counter_family",
    "exposed_metric_names",
    "gauge_family",
    "histogram_family",
    "log_buckets",
    "validate_exposition",
    "SlowQueryLog",
    "Span",
    "Trace",
    "Tracer",
]
