"""Sampled query tracing: Trace/Span records with a bounded ring buffer.

A ``Tracer`` makes the sampling decision at query admission time (seeded
``random.Random`` so tests are deterministic), hands back a ``Trace`` for
sampled queries and ``None`` otherwise — the ``None`` fast path is a single
rng draw, which is what keeps 1%-sampling overhead negligible.  Spans are
appended by whichever layer handles the query (coalescer wait → pin →
cache probe → fan-out → shard exec → merge); appends are lock-protected so
shard worker threads can record concurrently.  Finished traces land in a
``deque(maxlen=capacity)`` ring buffer and can be exported as JSON lines.

The clock is injectable (monotonic seconds) so tests can script exact
timelines.
"""

from __future__ import annotations

import itertools
import json
import random
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["Span", "Trace", "Tracer"]


class Span:
    """One timed step inside a trace."""

    __slots__ = ("name", "start", "end", "attrs")

    def __init__(self, name: str, start: float, end: float, attrs: dict | None = None) -> None:
        self.name = name
        self.start = start
        self.end = end
        self.attrs = attrs or {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_payload(self) -> dict:
        out = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration_ms": (self.end - self.start) * 1e3,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class Trace:
    """An ordered list of spans for one sampled query."""

    __slots__ = ("trace_id", "name", "started", "ended", "attrs", "_spans", "_clock", "_lock")

    def __init__(self, trace_id: int, name: str, clock: Callable[[], float], attrs: dict | None = None) -> None:
        self.trace_id = trace_id
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self.started = clock()
        self.ended: float | None = None

    def add_span(self, name: str, start: float, end: float, **attrs: object) -> Span:
        span = Span(name, start, end, dict(attrs) if attrs else None)
        with self._lock:
            self._spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        start = self._clock()
        span = Span(name, start, start, dict(attrs) if attrs else None)
        try:
            yield span
        finally:
            span.end = self._clock()
            with self._lock:
                self._spans.append(span)

    def now(self) -> float:
        return self._clock()

    @property
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    @property
    def duration(self) -> float:
        end = self.ended if self.ended is not None else self._clock()
        return end - self.started

    def to_payload(self) -> dict:
        payload = {
            "trace_id": self.trace_id,
            "name": self.name,
            "started": self.started,
            "duration_ms": self.duration * 1e3,
            "spans": [s.to_payload() for s in self.spans],
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        return payload


class Tracer:
    """Sampling decision + bounded storage for finished traces."""

    def __init__(
        self,
        sample_rate: float = 0.0,
        capacity: int = 256,
        clock: Callable[[], float] = time.perf_counter,
        seed: int | None = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sample_rate = float(sample_rate)
        self.capacity = int(capacity)
        self.clock = clock
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._ring: list[Trace] = []
        self._ids = itertools.count(1)
        self.sampled_total = 0
        self.finished_total = 0

    def start(self, name: str, **attrs: object) -> Trace | None:
        """Begin a trace if this query wins the sampling draw, else None."""
        rate = self.sample_rate
        if rate <= 0.0:
            return None
        with self._lock:
            if rate < 1.0 and self._rng.random() >= rate:
                return None
            self.sampled_total += 1
            trace_id = next(self._ids)
        return Trace(trace_id, name, self.clock, dict(attrs) if attrs else None)

    def finish(self, trace: Trace | None) -> None:
        if trace is None:
            return
        trace.ended = self.clock()
        with self._lock:
            self.finished_total += 1
            self._ring.append(trace)
            if len(self._ring) > self.capacity:
                del self._ring[: len(self._ring) - self.capacity]

    def traces(self) -> list[Trace]:
        with self._lock:
            return list(self._ring)

    def payloads(self) -> list[dict]:
        return [t.to_payload() for t in self.traces()]

    def export_jsonl(self) -> str:
        return "".join(json.dumps(p, sort_keys=True) + "\n" for p in self.payloads())

    def dump(self, path: str) -> int:
        payloads = self.payloads()
        with open(path, "w", encoding="utf-8") as fh:
            for p in payloads:
                fh.write(json.dumps(p, sort_keys=True) + "\n")
        return len(payloads)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
