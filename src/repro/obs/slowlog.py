"""Threshold-based slow-query log with a bounded ring buffer.

The serving front records one entry per request whose wall time exceeds
``threshold_ms``.  Entries keep a compact summary (endpoint, status,
latency, and whatever detail the caller attaches — epoch, batch size,
guarantee) rather than the full request body, so a burst of slow batches
cannot balloon memory.  Thread-safe; exposed over ``GET /slowlog`` and the
``repro metrics --slowlog`` CLI.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    def __init__(
        self,
        threshold_ms: float,
        capacity: int = 128,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold_ms = float(threshold_ms)
        self.capacity = int(capacity)
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: list[dict] = []
        self.total = 0

    def record(
        self,
        endpoint: str,
        duration_s: float,
        *,
        status: int | None = None,
        detail: dict | None = None,
    ) -> bool:
        """Record the request if it was slow; returns True when recorded."""
        duration_ms = duration_s * 1e3
        if duration_ms < self.threshold_ms:
            return False
        entry = {
            "ts": self._clock(),
            "endpoint": endpoint,
            "duration_ms": duration_ms,
        }
        if status is not None:
            entry["status"] = int(status)
        if detail:
            entry["detail"] = dict(detail)
        with self._lock:
            self.total += 1
            self._entries.append(entry)
            if len(self._entries) > self.capacity:
                del self._entries[: len(self._entries) - self.capacity]
        return True

    def entries(self) -> list[dict]:
        with self._lock:
            return [dict(e) for e in self._entries]

    def export_jsonl(self) -> str:
        return "".join(json.dumps(e, sort_keys=True) + "\n" for e in self.entries())

    def as_dict(self) -> dict:
        return {
            "threshold_ms": self.threshold_ms,
            "capacity": self.capacity,
            "total": self.total,
            "entries": self.entries(),
        }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
