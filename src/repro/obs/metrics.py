"""Dependency-free, thread-safe metrics primitives with Prometheus exposition.

The layer model is deliberately small:

- An *instrument* (``Counter`` / ``Gauge`` / ``Histogram``) holds values and
  is safe to touch from any thread (event loop, flusher executor, shard
  pools).
- A *family* (``CounterFamily`` / ``GaugeFamily`` / ``HistogramFamily``)
  owns a metric name plus a fixed set of label names and hands out one
  instrument per label-value combination via ``labels(...)``.  A family with
  no label names proxies the instrument API directly (``fam.inc()``), so
  call sites stay terse.
- A ``MetricsRegistry`` aggregates families for exposition.  Each layer of
  the system (coalescer, cache, WAL, ...) creates its own families at
  construction time so counts are per-instance; the serving front registers
  them all — optionally under extra constant labels such as
  ``{"index": "default"}`` — and renders the union as Prometheus text
  (format 0.0.4) or as a JSON snapshot for ``/stats``.

Instrumentation can be disabled wholesale: the ``*_family`` constructors
return a shared no-op ``NullInstrument`` when ``enabled=False``, which
absorbs every instrument call and is skipped by ``register``.  That is what
``benchmarks/bench_observability.py`` uses as the uninstrumented baseline.

Histograms use log-spaced (geometric) buckets because the latencies we
track span microseconds (cache hits) to seconds (compaction); percentile
readout interpolates linearly inside the winning bucket.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "MetricsRegistry",
    "NullInstrument",
    "NULL_INSTRUMENT",
    "counter_family",
    "gauge_family",
    "histogram_family",
    "log_buckets",
    "validate_exposition",
    "DEFAULT_LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "EXPOSITION_CONTENT_TYPE",
]

EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def log_buckets(lo: float, hi: float, count: int) -> tuple[float, ...]:
    """``count`` geometrically spaced bucket upper bounds from lo to hi."""
    if lo <= 0 or hi <= lo or count < 2:
        raise ValueError("log_buckets needs 0 < lo < hi and count >= 2")
    ratio = (hi / lo) ** (1.0 / (count - 1))
    out = [lo * ratio**i for i in range(count)]
    out[-1] = hi  # kill accumulated fp drift on the top bound
    return tuple(out)


# 10 us .. 10 s, ~1.78x per step: wide enough for cache hits and compaction.
DEFAULT_LATENCY_BUCKETS = log_buckets(1e-5, 10.0, 25)
# Power-of-two-ish size buckets for batch sizes / buffer fills.
SIZE_BUCKETS = tuple(float(2**i) for i in range(17))  # 1 .. 65536


# ---------------------------------------------------------------------------
# instruments


class Counter:
    """Monotonically increasing float counter."""

    __slots__ = ("_lock", "_value")

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        """Zero the counter (lifecycle resets, e.g. ``cache.clear()``).

        Prometheus scrapers treat a counter dropping to zero as a process
        restart, which is the right read for an explicit cache reset.
        """
        with self._lock:
            self._value = 0.0

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Settable instantaneous value."""

    __slots__ = ("_lock", "_value")

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    Bucket ``i`` counts observations ``v <= bounds[i]`` (le-style); one
    overflow bucket catches everything above the top bound.  ``observe`` is
    a bisect + increment under a lock; ``observe_many`` bins a whole vector
    with ``np.searchsorted`` so per-batch instrumentation stays O(batch)
    with a single lock acquisition.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count", "_max")

    enabled = True

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._max = 0.0

    @property
    def bucket_bounds(self) -> tuple[float, ...]:
        return self._bounds

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    def observe_many(self, values: Iterable[float]) -> None:
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=np.float64)
        if arr.size == 0:
            return
        idx = np.searchsorted(np.asarray(self._bounds), arr, side="left")
        binned = np.bincount(idx, minlength=len(self._counts))
        total = float(arr.sum())
        peak = float(arr.max())
        with self._lock:
            for i, n in enumerate(binned):
                if n:
                    self._counts[i] += int(n)
            self._sum += total
            self._count += int(arr.size)
            if peak > self._max:
                self._max = peak

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs ending with (+inf, count)."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self._bounds, counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + counts[-1]))
        return out

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile (0..100) by in-bucket interpolation."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            peak = self._max
        if total == 0:
            return 0.0
        target = (q / 100.0) * total
        running = 0
        for i, n in enumerate(counts):
            if n == 0:
                continue
            lower = self._bounds[i - 1] if 0 < i <= len(self._bounds) else 0.0
            upper = self._bounds[i] if i < len(self._bounds) else peak
            if running + n >= target:
                frac = (target - running) / n
                return lower + frac * (max(upper, lower) - lower)
            running += n
        return peak

    def percentiles(self, qs: Sequence[float] = (50, 95, 99)) -> dict[str, float]:
        return {f"p{q:g}": self.percentile(q) for q in qs}

    @property
    def value(self) -> float:
        """Mean observation — convenience for JSON snapshots."""
        return self._sum / self._count if self._count else 0.0


class NullInstrument:
    """Absorbs the full instrument/family API as no-ops (disabled metrics)."""

    __slots__ = ()

    enabled = False
    value = 0.0
    count = 0
    sum = 0.0

    def labels(self, **_labelvalues: object) -> "NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass

    def reset(self) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def percentiles(self, qs: Sequence[float] = (50, 95, 99)) -> dict[str, float]:
        return {f"p{q:g}": 0.0 for q in qs}


NULL_INSTRUMENT = NullInstrument()


# ---------------------------------------------------------------------------
# families


_PROXIED = (
    "inc",
    "dec",
    "reset",
    "set",
    "set_max",
    "observe",
    "observe_many",
    "percentile",
    "percentiles",
    "cumulative_counts",
    "value",
    "count",
    "sum",
)


class MetricFamily:
    """A named metric plus its per-label-combination child instruments."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        labelnames = tuple(labelnames)
        for ln in labelnames:
            if not _LABEL_RE.match(ln) or ln.startswith("__"):
                raise ValueError(f"invalid label name: {ln!r}")
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.enabled = True
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def _new_child(self) -> object:  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labelvalues: object):
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._new_child())
        return child

    def _solo(self):
        """The single child of a label-less family (for proxied calls)."""
        if self.labelnames:
            raise ValueError(f"{self.name} is labeled; use .labels(...)")
        return self.labels()

    def __getattr__(self, item: str):
        if item in _PROXIED:
            return getattr(self._solo(), item)
        raise AttributeError(item)

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return list(self._children.items())


class CounterFamily(MetricFamily):
    kind = "counter"

    def _new_child(self) -> Counter:
        return Counter()


class GaugeFamily(MetricFamily):
    kind = "gauge"

    def _new_child(self) -> Gauge:
        return Gauge()


class HistogramFamily(MetricFamily):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        self._buckets = tuple(float(b) for b in buckets)

    def _new_child(self) -> Histogram:
        return Histogram(self._buckets)


def counter_family(
    name: str, help: str, labelnames: Sequence[str] = (), *, enabled: bool = True
):
    """Create a :class:`CounterFamily`, or the shared null when disabled."""
    return CounterFamily(name, help, labelnames) if enabled else NULL_INSTRUMENT


def gauge_family(
    name: str, help: str, labelnames: Sequence[str] = (), *, enabled: bool = True
):
    """Create a :class:`GaugeFamily`, or the shared null when disabled."""
    return GaugeFamily(name, help, labelnames) if enabled else NULL_INSTRUMENT


def histogram_family(
    name: str,
    help: str,
    labelnames: Sequence[str] = (),
    *,
    buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    enabled: bool = True,
):
    """Create a :class:`HistogramFamily`, or the shared null when disabled."""
    if not enabled:
        return NULL_INSTRUMENT
    return HistogramFamily(name, help, labelnames, buckets)


# ---------------------------------------------------------------------------
# registry + exposition


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(v: float) -> str:
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _render_labels(pairs: Sequence[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


class MetricsRegistry:
    """Aggregates metric families and renders them for scraping.

    Families may be registered from several instances under the same metric
    name (e.g. one ``repro_cache_hits_total`` per hosted index) as long as
    the kinds agree; ``extra_labels`` distinguish the sources.  Registration
    of a null (disabled) family is a silent no-op, as is re-registering the
    same family object with the same extra labels.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: list[tuple[MetricFamily, tuple[tuple[str, str], ...]]] = []
        self._kinds: dict[str, str] = {}

    def register(self, family, extra_labels: dict[str, str] | None = None):
        if not getattr(family, "enabled", False):
            return family
        extra = tuple(sorted((str(k), str(v)) for k, v in (extra_labels or {}).items()))
        with self._lock:
            seen = self._kinds.get(family.name)
            if seen is not None and seen != family.kind:
                raise ValueError(
                    f"metric {family.name!r} registered as both {seen} and {family.kind}"
                )
            self._kinds[family.name] = family.kind
            if (family, extra) not in [(f, e) for f, e in self._entries]:
                self._entries.append((family, extra))
        return family

    def register_all(self, families, extra_labels: dict[str, str] | None = None) -> None:
        """Register many families; ``(family, labels)`` pairs are accepted so
        a layer can attach its own constant labels (e.g. a fleet tagging each
        partition's families) that merge with the caller's ``extra_labels``."""
        for item in families:
            if isinstance(item, tuple):
                fam, own = item
                merged = {**(extra_labels or {}), **own}
                self.register(fam, merged)
            else:
                self.register(item, extra_labels)

    # Convenience constructors: create + register in one call.
    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()):
        return self.register(counter_family(name, help, labelnames))

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()):
        return self.register(gauge_family(name, help, labelnames))

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        return self.register(histogram_family(name, help, labelnames, buckets=buckets))

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [fam for fam, _ in self._entries]

    def names(self) -> list[str]:
        seen: list[str] = []
        for fam in self.families():
            if fam.name not in seen:
                seen.append(fam.name)
        return seen

    def _grouped(self):
        with self._lock:
            entries = list(self._entries)
        groups: dict[str, list[tuple[MetricFamily, tuple[tuple[str, str], ...]]]] = {}
        for fam, extra in entries:
            groups.setdefault(fam.name, []).append((fam, extra))
        return groups

    def exposition(self) -> str:
        """Render every registered family as Prometheus text format 0.0.4."""
        lines: list[str] = []
        for name, members in self._grouped().items():
            first = members[0][0]
            lines.append(f"# HELP {name} {_escape_help(first.help)}")
            lines.append(f"# TYPE {name} {first.kind}")
            for fam, extra in members:
                for labelvalues, child in fam.children():
                    base = list(extra) + list(zip(fam.labelnames, labelvalues))
                    if fam.kind == "histogram":
                        for bound, cum in child.cumulative_counts():
                            le = _format_value(bound)
                            pairs = base + [("le", le)]
                            lines.append(
                                f"{name}_bucket{_render_labels(pairs)} {cum}"
                            )
                        lines.append(
                            f"{name}_sum{_render_labels(base)} {_format_value(child.sum)}"
                        )
                        lines.append(f"{name}_count{_render_labels(base)} {child.count}")
                    else:
                        lines.append(
                            f"{name}{_render_labels(base)} {_format_value(child.value)}"
                        )
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict:
        """JSON-friendly view: the same instruments `/metrics` renders."""
        out: dict[str, dict] = {}
        for name, members in self._grouped().items():
            first = members[0][0]
            samples = []
            for fam, extra in members:
                for labelvalues, child in fam.children():
                    labels = dict(extra)
                    labels.update(zip(fam.labelnames, labelvalues))
                    if fam.kind == "histogram":
                        entry = {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                        }
                        entry.update(child.percentiles())
                    else:
                        entry = {"labels": labels, "value": child.value}
                    samples.append(entry)
            out[name] = {"kind": first.kind, "help": first.help, "samples": samples}
        return out


# ---------------------------------------------------------------------------
# exposition validation (shared by tests, the bench gate, and metrics_smoke)


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{.*\})?"
    r" (?P<value>[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf)|NaN)"
    r"(?: [0-9]+)?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"')


def _parse_label_block(block: str) -> dict[str, str] | None:
    """Parse ``{a="x",b="y"}``; None when the block violates the grammar."""
    assert block.startswith("{") and block.endswith("}")
    inner = block[1:-1]
    pos = 0
    out: dict[str, str] = {}
    while pos < len(inner):
        m = _LABEL_PAIR_RE.match(inner, pos)
        if not m:
            return None
        out[m.group(1)] = m.group(2)
        pos = m.end()
        if pos < len(inner):
            if inner[pos] != ",":
                return None
            pos += 1
    return out


def validate_exposition(text: str) -> list[str]:
    """Check Prometheus text-format 0.0.4 rules; returns a list of problems.

    Verifies line grammar, label syntax/escaping, TYPE-before-samples,
    sample names matching their declared family (including histogram
    ``_bucket``/``_sum``/``_count`` suffixes), cumulative non-decreasing
    bucket counts, and a ``+Inf`` bucket equal to ``_count``.
    """
    problems: list[str] = []
    types: dict[str, str] = {}
    bucket_series: dict[str, list[tuple[float, float]]] = {}
    hist_counts: dict[str, float] = {}

    def base_name(sample: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if sample.endswith(suffix) and sample[: -len(suffix)] in types:
                return sample[: -len(suffix)]
        return sample

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                problems.append(f"line {lineno}: malformed HELP line")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _NAME_RE.match(parts[2]):
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            if parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {lineno}: unknown metric type {parts[3]!r}")
            if parts[2] in types:
                problems.append(f"line {lineno}: duplicate TYPE for {parts[2]}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # comment
        m = _SAMPLE_RE.match(line)
        if not m:
            problems.append(f"line {lineno}: malformed sample line: {line!r}")
            continue
        name = m.group("name")
        labels: dict[str, str] = {}
        if m.group("labels"):
            parsed = _parse_label_block(m.group("labels"))
            if parsed is None:
                problems.append(f"line {lineno}: malformed label block: {line!r}")
                continue
            labels = parsed
        family = base_name(name)
        if family not in types:
            problems.append(f"line {lineno}: sample {name!r} has no TYPE declaration")
            continue
        kind = types[family]
        if kind == "histogram":
            if name == f"{family}_bucket":
                if "le" not in labels:
                    problems.append(f"line {lineno}: histogram bucket missing le label")
                    continue
                le = math.inf if labels["le"] == "+Inf" else float(labels["le"])
                series_key = family + repr(sorted((k, v) for k, v in labels.items() if k != "le"))
                bucket_series.setdefault(series_key, []).append((le, float(m.group("value"))))
            elif name == f"{family}_count":
                series_key = family + repr(sorted(labels.items()))
                hist_counts[series_key] = float(m.group("value"))
            elif name != f"{family}_sum":
                problems.append(f"line {lineno}: unexpected histogram sample {name!r}")
        elif name != family:
            problems.append(f"line {lineno}: sample {name!r} does not match family {family!r}")

    for key, series in bucket_series.items():
        bounds = [b for b, _ in series]
        counts = [c for _, c in series]
        if bounds != sorted(bounds):
            problems.append(f"{key}: bucket bounds not sorted")
        if any(c2 < c1 for c1, c2 in zip(counts, counts[1:])):
            problems.append(f"{key}: bucket counts not cumulative")
        if not bounds or not math.isinf(bounds[-1]):
            problems.append(f"{key}: missing +Inf bucket")
        elif key in hist_counts and counts[-1] != hist_counts[key]:
            problems.append(f"{key}: +Inf bucket != _count")
    return problems


def _iter_sample_names(text: str) -> Iterator[str]:
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) == 4:
                yield parts[2]


def exposed_metric_names(text: str) -> list[str]:
    """Family names declared by # TYPE lines in an exposition payload."""
    out: list[str] = []
    for name in _iter_sample_names(text):
        if name not in out:
            out.append(name)
    return out
