"""Key-range ownership map for a horizontally partitioned index fleet.

A :class:`PartitionMap` is the one piece of routing state the whole fleet
shares: ``k`` sorted split keys dividing the real line into ``k + 1``
half-open ownership ranges.  Partition ``i`` owns keys in
``[splits[i-1], splits[i])`` (the first partition extends to ``-inf``, the
last to ``+inf``), so every finite key has exactly one owner and ownership
is resolvable with a single ``searchsorted`` for any number of keys at
once — the map is to partitions what the flat
:class:`~repro.index.directory.CellDirectory` locate array is to segments.

Query planning uses the same array: a range ``[low, high]`` (both ends
inclusive, matching :class:`~repro.queries.types.RangeQuery`) overlaps
exactly the partitions ``locate(low) .. locate(high)``, and the clip of the
range against partition ``i`` is
``[max(low, lower_bound(i)), min(high, inclusive_upper_bound(i))]`` where
the inclusive upper bound is the largest float below the split key.  The
clipped sub-ranges tile the query range without overlap, which is what
makes the scatter-gather merge exact (COUNT/SUM contributions add;
MAX/MIN contributions combine with NaN-aware fmax/fmin).

Maps are immutable: :meth:`with_split` / :meth:`with_merge` return new maps,
so a frozen fleet snapshot keeps routing against the map it was taken with
even while the live fleet rebalances.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError

__all__ = ["PartitionMap"]


class PartitionMap:
    """Sorted split keys -> partition ids, binary-searchable and serializable.

    Parameters
    ----------
    splits:
        Strictly increasing, finite split keys.  An empty array is valid and
        describes a single partition owning the whole key line.
    """

    def __init__(self, splits: np.ndarray | list[float]) -> None:
        splits = np.asarray(splits, dtype=np.float64)
        if splits.ndim != 1:
            raise DataError("split keys must form a 1-D array")
        if splits.size and not np.all(np.isfinite(splits)):
            raise DataError("split keys must be finite")
        if splits.size > 1 and not np.all(np.diff(splits) > 0):
            raise DataError("split keys must be strictly increasing")
        self._splits = np.ascontiguousarray(splits)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def splits(self) -> np.ndarray:
        """The split keys (read-only view; length ``num_partitions - 1``)."""
        view = self._splits.view()
        view.flags.writeable = False
        return view

    @property
    def num_partitions(self) -> int:
        """Number of ownership ranges (``len(splits) + 1``)."""
        return int(self._splits.size) + 1

    def __len__(self) -> int:
        return self.num_partitions

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionMap):
            return NotImplemented
        return bool(np.array_equal(self._splits, other._splits))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartitionMap(splits={self._splits.tolist()!r})"

    # ------------------------------------------------------------------ #
    # Ownership and bounds
    # ------------------------------------------------------------------ #

    def locate(self, keys: np.ndarray | float) -> np.ndarray:
        """Owning partition id for each key (vectorized binary search).

        A key equal to a split key belongs to the partition *above* it
        (ownership ranges are closed below, open above).
        """
        return np.searchsorted(self._splits, np.asarray(keys, dtype=np.float64),
                               side="right")

    def _check_pid(self, pid: int) -> int:
        pid = int(pid)
        if not 0 <= pid < self.num_partitions:
            raise DataError(
                f"partition id {pid} out of range [0, {self.num_partitions})"
            )
        return pid

    def lower_bound(self, pid: int) -> float:
        """Inclusive lower edge of partition ``pid`` (``-inf`` for the first)."""
        pid = self._check_pid(pid)
        return float(self._splits[pid - 1]) if pid else -np.inf

    def upper_bound(self, pid: int) -> float:
        """Exclusive upper edge of partition ``pid`` (``+inf`` for the last)."""
        pid = self._check_pid(pid)
        if pid == self.num_partitions - 1:
            return np.inf
        return float(self._splits[pid])

    def inclusive_upper_bound(self, pid: int) -> float:
        """Largest key value partition ``pid`` can own (for range clipping).

        The largest representable float strictly below the split key, so a
        clipped query ``[max(low, lower), min(high, inclusive_upper)]`` keeps
        both ends inclusive without ever touching the neighbour's keys.
        """
        upper = self.upper_bound(pid)
        return upper if np.isinf(upper) else float(np.nextafter(upper, -np.inf))

    def clip(
        self, pid: int, lows: np.ndarray, highs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Clip query ranges against partition ``pid``'s ownership range.

        Returns new (lows, highs) arrays; callers select overlapping queries
        first (via :meth:`locate` on both bounds), so the clipped ranges are
        always non-empty (``low <= high``).
        """
        return (
            np.maximum(np.asarray(lows, dtype=np.float64), self.lower_bound(pid)),
            np.minimum(np.asarray(highs, dtype=np.float64),
                       self.inclusive_upper_bound(pid)),
        )

    # ------------------------------------------------------------------ #
    # Rebalancing (immutable updates)
    # ------------------------------------------------------------------ #

    def with_split(self, pid: int, key: float) -> "PartitionMap":
        """New map where partition ``pid`` is split at ``key``.

        ``key`` becomes a new split key and must lie strictly inside the
        partition's open range (above its lower edge, below its upper edge);
        keys ``>= key`` move to the new right-hand partition ``pid + 1``.
        """
        pid = self._check_pid(pid)
        key = float(key)
        if not np.isfinite(key):
            raise DataError("split key must be finite")
        if not self.lower_bound(pid) < key < self.upper_bound(pid):
            raise DataError(
                f"split key {key} outside partition {pid}'s open range "
                f"({self.lower_bound(pid)}, {self.upper_bound(pid)})"
            )
        return PartitionMap(np.insert(self._splits, pid, key))

    def with_merge(self, pid: int) -> "PartitionMap":
        """New map where partitions ``pid`` and ``pid + 1`` are merged.

        Drops the split key between them; the merged partition keeps id
        ``pid`` and owns the union of both ranges.
        """
        pid = self._check_pid(pid)
        if pid >= self.num_partitions - 1:
            raise DataError(f"partition {pid} has no right neighbour to merge with")
        return PartitionMap(np.delete(self._splits, pid))

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_payload(self) -> list[float]:
        """JSON-compatible form (the split keys)."""
        return [float(key) for key in self._splits]

    @classmethod
    def from_payload(cls, payload: list[float]) -> "PartitionMap":
        """Inverse of :meth:`to_payload`."""
        return cls(np.asarray(payload, dtype=np.float64))
