"""The fleet facade: partitioned ownership, routed reads, rebalanced writes.

:class:`IndexFleet` composes the fleet pieces into one index-shaped object:

* a :class:`~repro.fleet.map.PartitionMap` owns routing,
* one :class:`~repro.fleet.partition.Partition` per range owns storage
  (its own updatable index, buffer, compaction policy and epoch),
* a :class:`~repro.fleet.router.FleetRouter` over a consistent set of
  frozen partition views answers batches with the scatter-gather merge,
* a :class:`~repro.fleet.policy.FleetPolicy` decides when :meth:`split` /
  :meth:`merge` rebalance by size.

Reads never pause for writes: :meth:`snapshot` returns a frozen
:class:`FleetSnapshot` (map + views + router, all immutable), and a
compaction, split or merge only swaps what the *next* snapshot sees.  The
facade exposes the same surface as a single updatable index
(``query_batch`` / ``estimate_batch`` / ``exact_batch``, ``insert`` /
``compact``, ``snapshot`` / ``epoch`` / ``version``), so
:class:`~repro.serve.host.EngineHost` hosts a fleet without knowing it is
one.

:class:`Fleet2D` is the static two-key variant: x-axis partitions of
:class:`~repro.index.polyfit2d.PolyFit2DIndex`, rectangle clipping on the
x side only, cumulative merge (2-D PolyFit answers COUNT/SUM).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..config import Aggregate, IndexConfig
from ..errors import DataError, QueryError
from ..index.guarantees import delta_for_absolute
from ..index.polyfit2d import PolyFit2DIndex
from ..queries.batch import resolve_batch_certificates, validate_bounds_batch
from ..queries.types import BatchQueryResult, Guarantee, QueryResult, RangeQuery
from ..config import GuaranteeKind
from .map import PartitionMap
from .partition import Partition
from .policy import FleetPolicy
from .router import FleetMetrics, FleetRouter

__all__ = ["IndexFleet", "FleetSnapshot", "Fleet2D"]


class FleetSnapshot:
    """One immutable serving view of a fleet: map + frozen views + router.

    Captures the fleet's epoch/version at creation, so pinned readers keep
    answering one consistent state while the live fleet mutates.  Exposes
    the batch query trio with single-index semantics.
    """

    def __init__(
        self,
        router: FleetRouter,
        *,
        epoch: int,
        version: int,
    ) -> None:
        self._router = router
        self._epoch = int(epoch)
        self._version = int(version)

    @property
    def epoch(self) -> int:
        """Fleet epoch this snapshot serves (structural changes + compactions)."""
        return self._epoch

    @property
    def version(self) -> int:
        """Fleet write version this snapshot serves (every mutation bumps it)."""
        return self._version

    @property
    def partition_map(self) -> PartitionMap:
        """Routing state frozen into this snapshot."""
        return self._router.partition_map

    @property
    def num_partitions(self) -> int:
        """Number of partitions served."""
        return self._router.num_partitions

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the snapshot answers."""
        return self._router.aggregate

    def estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Merged approximate answers for N ranges."""
        return self._router.estimate_batch(lows, highs)

    def exact_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Merged exact answers for N ranges."""
        return self._router.exact_batch(lows, highs)

    def error_bounds_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Per-query certified bounds of the merged answers."""
        return self._router.error_bounds_batch(lows, highs)

    #: Callers may pass ``trace=`` through ``query_batch`` (duck-typed
    #: capability check used by the serving host).
    supports_trace = True

    def query_batch(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        guarantee: Guarantee | None = None,
        trace=None,
    ) -> BatchQueryResult:
        """Answer N queries with certificates over the merged values."""
        return self._router.query_batch(lows, highs, guarantee, trace=trace)

    def close(self) -> None:
        """Release the router's sharded pools (idempotent)."""
        self._router.close()


class IndexFleet:
    """Horizontally partitioned updatable index with scatter-gather routing.

    Build with :meth:`build` (records plus either explicit ``splits`` or a
    ``num_partitions`` count that picks balanced distinct-key quantiles).
    The fleet then behaves like one big updatable index — queries merge
    partial answers under certified bounds, writes route by key, and
    oversize partitions split (undersize neighbours merge) under the
    :class:`~repro.fleet.policy.FleetPolicy` without pausing reads.
    """

    def __init__(
        self,
        partition_map: PartitionMap,
        partitions: list[Partition],
        aggregate: Aggregate,
        *,
        delta: float,
        config: IndexConfig | None = None,
        policy: FleetPolicy | None = None,
        num_shards: int = 1,
        executor: str = "serial",
        failure_policy: str = "fail_fast",
    ) -> None:
        if len(partitions) != partition_map.num_partitions:
            raise DataError(
                f"partition map expects {partition_map.num_partitions} "
                f"partitions, got {len(partitions)}"
            )
        self._map = partition_map
        self._partitions = list(partitions)
        self._aggregate = aggregate
        self._delta = float(delta)
        self._config = config
        self._policy = policy or FleetPolicy()
        self._num_shards = int(num_shards)
        self._executor = executor
        if failure_policy not in ("fail_fast", "degrade"):
            raise DataError(
                f"failure_policy must be 'fail_fast' or 'degrade', "
                f"got {failure_policy!r}"
            )
        self._failure_policy = failure_policy
        self._epoch = 0
        self._version = 0
        # One bundle for the fleet's lifetime: routers are rebuilt per
        # snapshot but share these instruments, so fan-out latency and
        # degrade counters accumulate across snapshot swaps.
        self._metrics = FleetMetrics()
        # Current snapshot plus one retired generation, so a reader pinned
        # on the previous snapshot can finish while the next one serves.
        self._snapshots: list[FleetSnapshot] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        keys: np.ndarray,
        measures: np.ndarray | None = None,
        aggregate: Aggregate = Aggregate.COUNT,
        *,
        delta: float | None = None,
        guarantee: Guarantee | None = None,
        config: IndexConfig | None = None,
        policy: FleetPolicy | None = None,
        splits: np.ndarray | list[float] | None = None,
        num_partitions: int = 4,
        num_shards: int = 1,
        executor: str = "serial",
        failure_policy: str = "fail_fast",
    ) -> "IndexFleet":
        """Build a fleet from raw records.

        Parameters
        ----------
        keys, measures:
            The dataset (``measures`` optional for COUNT).
        aggregate:
            COUNT, SUM, MAX or MIN — all partitions answer the same one.
        delta, guarantee:
            Per-segment fitting budget, directly or derived from an
            *absolute* guarantee (Lemmas 2/4), exactly like
            :meth:`~repro.index.polyfit1d.PolyFitIndex.build`.  The budget
            is shared by every partition.
        config:
            Index configuration shared by every partition.
        policy:
            Split/merge/compaction policy (manual-only by default).
        splits:
            Explicit split keys; overrides ``num_partitions``.
        num_partitions:
            When ``splits`` is omitted, partition boundaries are placed at
            balanced quantiles of the *distinct* keys (duplicate-heavy data
            cannot force empty partitions).
        num_shards, executor:
            Query-parallelism applied under the fan-out (each partition
            view wrapped in a :class:`~repro.queries.sharding.
            ShardedQueryEngine` when ``num_shards > 1``).
        """
        if delta is None:
            if guarantee is None:
                raise QueryError("provide either delta or an absolute guarantee")
            if guarantee.kind is not GuaranteeKind.ABSOLUTE:
                raise QueryError(
                    "only absolute guarantees determine delta at build time; "
                    "pass delta explicitly for relative-error workloads"
                )
            delta = delta_for_absolute(guarantee.epsilon, aggregate, num_keys=1)
        keys = np.atleast_1d(np.asarray(keys, dtype=np.float64))
        if keys.size == 0:
            raise DataError("cannot build a fleet from an empty dataset")
        if not np.all(np.isfinite(keys)):
            raise DataError("keys contain NaN or infinite values")
        measures_arr = None
        if measures is not None:
            measures_arr = np.atleast_1d(np.asarray(measures, dtype=np.float64))
            if measures_arr.shape != keys.shape:
                raise DataError("keys and measures must have equal length")
        if splits is None:
            splits = _quantile_splits(keys, num_partitions)
        partition_map = PartitionMap(splits)
        policy = policy or FleetPolicy()
        pids = partition_map.locate(keys)
        partitions = []
        for pid in range(partition_map.num_partitions):
            mask = pids == pid
            partitions.append(
                Partition.from_records(
                    keys[mask],
                    None if measures_arr is None else measures_arr[mask],
                    aggregate,
                    delta=delta,
                    config=config,
                    compaction=policy.compaction,
                )
            )
        return cls(
            partition_map,
            partitions,
            aggregate,
            delta=delta,
            config=config,
            policy=policy,
            num_shards=num_shards,
            executor=executor,
            failure_policy=failure_policy,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the fleet answers."""
        return self._aggregate

    @property
    def delta(self) -> float:
        """Shared per-segment fitting budget."""
        return self._delta

    @property
    def config(self) -> IndexConfig | None:
        """Shared index configuration."""
        return self._config

    @property
    def policy(self) -> FleetPolicy:
        """The split/merge/compaction policy."""
        return self._policy

    @property
    def failure_policy(self) -> str:
        """Partition failure policy routers are built with (see FleetRouter)."""
        return self._failure_policy

    @property
    def partition_map(self) -> PartitionMap:
        """Current routing state."""
        return self._map

    @property
    def partitions(self) -> tuple[Partition, ...]:
        """Current partitions, in key order (read-only view)."""
        return tuple(self._partitions)

    @property
    def num_partitions(self) -> int:
        """Number of partitions."""
        return len(self._partitions)

    @property
    def epoch(self) -> int:
        """Structural epoch: bumped by splits, merges and compactions."""
        return self._epoch

    @property
    def version(self) -> int:
        """Monotone write counter: bumped by every visible mutation."""
        return self._version

    @property
    def buffer_size(self) -> int:
        """Total records sitting in partition delta buffers."""
        return sum(partition.buffer_size for partition in self._partitions)

    @property
    def num_segments(self) -> int:
        """Total base segments across partitions."""
        return sum(partition.num_segments for partition in self._partitions)

    @property
    def num_keys(self) -> int:
        """Total distinct base keys plus buffered records."""
        return sum(partition.num_keys for partition in self._partitions)

    def size_in_bytes(self) -> int:
        """Estimated total in-memory footprint of all partitions."""
        return sum(partition.size_in_bytes() for partition in self._partitions)

    def set_kernel(self, kernel: str) -> None:
        """Select the batch-kernel backend on every partition base index."""
        for partition in self._partitions:
            if partition.index is not None:
                partition.index.base.set_kernel(kernel)

    def stats(self) -> dict[str, Any]:
        """JSON-friendly fleet description (``fleet-stats`` / ``/stats``)."""
        return {
            "aggregate": self._aggregate.value,
            "delta": self._delta,
            "num_partitions": self.num_partitions,
            "splits": self._map.to_payload(),
            "epoch": self._epoch,
            "version": self._version,
            "num_keys": self.num_keys,
            "num_segments": self.num_segments,
            "buffer_size": self.buffer_size,
            "size_in_bytes": self.size_in_bytes(),
            "policy": self._policy.to_payload(),
            "partitions": [
                {
                    "pid": pid,
                    "lower_bound": self._map.lower_bound(pid),
                    "upper_bound": self._map.upper_bound(pid),
                    "empty": partition.is_empty,
                    "num_keys": partition.num_keys,
                    "num_segments": partition.num_segments,
                    "buffer_size": partition.buffer_size,
                    "epoch": partition.epoch,
                    "version": partition.version,
                    "size_in_bytes": partition.size_in_bytes(),
                }
                for pid, partition in enumerate(self._partitions)
            ],
        }

    def metrics_families(self) -> list:
        """Fleet + per-partition metric families for registry registration.

        Partition-level families (compaction, WAL) are tagged with the
        partition id they held at registration time; indexes created by a
        later split/merge pick up fresh families that a re-registration
        would cover, so long-lived servers should scrape the fleet-level
        families for rebalance-proof series.
        """
        fams: list = list(self._metrics.families())
        for pid, partition in enumerate(self._partitions):
            per_index = getattr(partition.index, "metrics_families", None)
            if callable(per_index):
                fams.extend((fam, {"partition": str(pid)}) for fam in per_index())
        return fams

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #

    def snapshot(self) -> FleetSnapshot:
        """Frozen serving view of the current state (cached until a mutation).

        The previous snapshot is retired one generation later (its sharded
        pools closed), mirroring :class:`~repro.serve.host.EngineHost`'s
        keep-2 discipline, so an in-flight batch pinned on it can finish.
        """
        if self._snapshots and self._snapshots[-1].version == self._version:
            return self._snapshots[-1]
        router = FleetRouter(
            self._map,
            [partition.snapshot() for partition in self._partitions],
            self._aggregate,
            num_shards=self._num_shards,
            executor=self._executor,
            failure_policy=self._failure_policy,
            metrics=self._metrics,
        )
        snapshot = FleetSnapshot(router, epoch=self._epoch, version=self._version)
        self._snapshots.append(snapshot)
        while len(self._snapshots) > 2:
            self._snapshots.pop(0).close()
        return snapshot

    def estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Merged approximate answers for N ranges."""
        return self.snapshot().estimate_batch(lows, highs)

    def exact_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Merged exact answers for N ranges."""
        return self.snapshot().exact_batch(lows, highs)

    def query_batch(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        guarantee: Guarantee | None = None,
    ) -> BatchQueryResult:
        """Answer N queries with certificates over the merged values."""
        return self.snapshot().query_batch(lows, highs, guarantee)

    def estimate(self, query: RangeQuery) -> float:
        """Merged approximate answer for one range."""
        return float(self.estimate_batch([query.low], [query.high])[0])

    def exact(self, query: RangeQuery) -> float:
        """Merged exact answer for one range."""
        return float(self.exact_batch([query.low], [query.high])[0])

    def query(
        self, query: RangeQuery, guarantee: Guarantee | None = None
    ) -> QueryResult:
        """Answer one query with single-index guarantee semantics."""
        batch = self.query_batch([query.low], [query.high], guarantee)
        return batch.to_results()[0]

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    def insert(self, keys: np.ndarray, measures: np.ndarray | None = None) -> int:
        """Insert records, routed by key to their owning partitions.

        Returns the number of records inserted.  With ``policy.auto`` the
        fleet rebalances afterwards (oversize partitions split at their
        median distinct key).  Keys are validated up front so a bad chunk
        is rejected whole, never partially applied.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.float64))
        if keys.size == 0:
            return 0
        if not np.all(np.isfinite(keys)):
            raise DataError("inserted keys contain NaN or infinite values")
        measures_arr = None
        if measures is not None:
            measures_arr = np.atleast_1d(np.asarray(measures, dtype=np.float64))
            if measures_arr.shape != keys.shape:
                raise DataError("inserted keys and measures must have equal length")
        pids = self._map.locate(keys)
        total = 0
        for pid in np.unique(pids):
            mask = pids == pid
            total += self._partitions[int(pid)].insert(
                keys[mask], None if measures_arr is None else measures_arr[mask]
            )
        if total:
            self._version += 1
            if self._policy.auto:
                self.rebalance()
        return total

    def compact(self) -> bool:
        """Compact every partition with a non-empty buffer; True if any did."""
        changed = [partition.compact() for partition in self._partitions]
        if any(changed):
            self._epoch += 1
            self._version += 1
            return True
        return False

    # ------------------------------------------------------------------ #
    # Rebalancing
    # ------------------------------------------------------------------ #

    def split(self, pid: int, key: float | None = None) -> float:
        """Split partition ``pid`` at ``key`` (default: median distinct key).

        Rebuilds the two halves from the partition's canonical records and
        returns the split key used.  Only this partition's key range is
        touched; readers pinned on an earlier snapshot are unaffected.
        """
        partition = self._partitions[self._map._check_pid(pid)]  # noqa: SLF001 - shared validation
        keys, measures = partition.records()
        if key is None:
            distinct = np.unique(keys)
            if distinct.size < 2:
                raise DataError(
                    f"partition {pid} has fewer than 2 distinct keys; cannot split"
                )
            key = float(distinct[distinct.size // 2])
        new_map = self._map.with_split(pid, key)  # validates key's range
        left_mask = keys < key
        halves = [
            Partition.from_records(
                keys[mask],
                None if measures is None else measures[mask],
                self._aggregate,
                delta=self._delta,
                config=self._config,
                compaction=self._policy.compaction,
            )
            for mask in (left_mask, ~left_mask)
        ]
        self._partitions[pid : pid + 1] = halves
        self._map = new_map
        self._epoch += 1
        self._version += 1
        return float(key)

    def merge(self, pid: int) -> None:
        """Merge partitions ``pid`` and ``pid + 1`` into one.

        Rebuilds the union from both partitions' canonical records and
        drops the split key between them.
        """
        new_map = self._map.with_merge(pid)  # validates pid has a neighbour
        left, right = self._partitions[pid], self._partitions[pid + 1]
        left_keys, left_measures = left.records()
        right_keys, right_measures = right.records()
        keys = np.concatenate((left_keys, right_keys))
        measures = (
            None
            if left_measures is None
            else np.concatenate((left_measures, right_measures))
        )
        merged = Partition.from_records(
            keys,
            measures,
            self._aggregate,
            delta=self._delta,
            config=self._config,
            compaction=self._policy.compaction,
        )
        self._partitions[pid : pid + 2] = [merged]
        self._map = new_map
        self._epoch += 1
        self._version += 1

    def rebalance(self) -> int:
        """Apply the policy until stable; returns the number of operations.

        Splits run first (each strictly reduces a partition's distinct-key
        count, so the loop terminates), then adjacent merges.  The policy
        constructor guarantees ``merge_keys < max_keys``, so a merge never
        produces an immediately re-splittable partition.
        """
        operations = 0
        pid = 0
        while pid < self.num_partitions:
            partition = self._partitions[pid]
            if self._policy.should_split(
                partition.num_keys, partition.size_in_bytes()
            ):
                try:
                    self.split(pid)
                except DataError:
                    pid += 1  # a single distinct key cannot split further
                    continue
                operations += 1
                continue  # re-examine the left half at the same pid
            pid += 1
        pid = 0
        while pid < self.num_partitions - 1:
            combined = (
                self._partitions[pid].num_keys + self._partitions[pid + 1].num_keys
            )
            if self._policy.should_merge(combined):
                self.merge(pid)
                operations += 1
                continue  # the merged partition may absorb the next neighbour
            pid += 1
        return operations

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release all snapshot pools (idempotent)."""
        while self._snapshots:
            self._snapshots.pop().close()

    def __enter__(self) -> "IndexFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _quantile_splits(keys: np.ndarray, num_partitions: int) -> np.ndarray:
    """Balanced split keys at distinct-key quantiles.

    Working on distinct keys (not raw records) guarantees strictly
    increasing splits; heavy duplication skews partition *record* counts,
    which the size policy then corrects at runtime.  Fewer distinct keys
    than partitions yields as many splits as the data supports.
    """
    if num_partitions < 1:
        raise DataError(f"num_partitions must be >= 1, got {num_partitions}")
    distinct = np.unique(keys)
    if num_partitions == 1 or distinct.size < 2:
        return np.empty(0, dtype=np.float64)
    positions = np.unique(
        (np.arange(1, num_partitions) * distinct.size) // num_partitions
    )
    positions = positions[positions > 0]
    return np.unique(distinct[positions])


class Fleet2D:
    """Static x-partitioned fleet of two-key PolyFit indexes (COUNT/SUM).

    Partitions the plane into vertical slabs by the first key: each slab
    owns its own :class:`~repro.index.polyfit2d.PolyFit2DIndex`, a query
    rectangle is clipped against the slabs it straddles on the x side
    (the y side is never split), and partial answers add — the cumulative
    merge algebra, with per-query bounds summing across straddled slabs.
    """

    def __init__(
        self,
        partition_map: PartitionMap,
        indexes: list[PolyFit2DIndex | None],
        aggregate: Aggregate,
        *,
        delta: float,
    ) -> None:
        if len(indexes) != partition_map.num_partitions:
            raise DataError(
                f"partition map expects {partition_map.num_partitions} indexes, "
                f"got {len(indexes)}"
            )
        self._map = partition_map
        self._indexes = list(indexes)
        self._aggregate = aggregate
        self._delta = float(delta)

    @classmethod
    def build(
        cls,
        xs: np.ndarray,
        ys: np.ndarray,
        measures: np.ndarray | None = None,
        *,
        aggregate: Aggregate = Aggregate.COUNT,
        delta: float | None = None,
        guarantee: Guarantee | None = None,
        splits: np.ndarray | list[float] | None = None,
        num_partitions: int = 2,
        **build_kwargs: Any,
    ) -> "Fleet2D":
        """Build x-axis slabs from point records.

        ``splits``/``num_partitions`` behave as in :meth:`IndexFleet.build`
        but partition the *x* coordinate; remaining keyword arguments are
        forwarded to :meth:`~repro.index.polyfit2d.PolyFit2DIndex.build`.
        Slabs holding no points stay index-less and answer zeros.
        """
        if delta is None:
            if guarantee is None:
                raise QueryError("provide either delta or an absolute guarantee")
            if guarantee.kind is not GuaranteeKind.ABSOLUTE:
                raise QueryError(
                    "only absolute guarantees determine delta at build time; "
                    "pass delta explicitly for relative-error workloads"
                )
            delta = delta_for_absolute(guarantee.epsilon, aggregate, num_keys=2)
        xs = np.atleast_1d(np.asarray(xs, dtype=np.float64))
        ys = np.atleast_1d(np.asarray(ys, dtype=np.float64))
        if xs.shape != ys.shape:
            raise DataError("xs and ys must have equal length")
        if xs.size == 0:
            raise DataError("cannot build a fleet from an empty dataset")
        measures_arr = None
        if measures is not None:
            measures_arr = np.atleast_1d(np.asarray(measures, dtype=np.float64))
            if measures_arr.shape != xs.shape:
                raise DataError("points and measures must have equal length")
        if splits is None:
            splits = _quantile_splits(xs, num_partitions)
        partition_map = PartitionMap(splits)
        pids = partition_map.locate(xs)
        indexes: list[PolyFit2DIndex | None] = []
        for pid in range(partition_map.num_partitions):
            mask = pids == pid
            if not mask.any():
                indexes.append(None)
                continue
            indexes.append(
                PolyFit2DIndex.build(
                    xs[mask],
                    ys[mask],
                    None if measures_arr is None else measures_arr[mask],
                    delta=delta,
                    aggregate=aggregate,
                    **build_kwargs,
                )
            )
        return cls(partition_map, indexes, aggregate, delta=delta)

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the fleet answers (COUNT or SUM)."""
        return self._aggregate

    @property
    def partition_map(self) -> PartitionMap:
        """The x-axis routing state."""
        return self._map

    @property
    def num_partitions(self) -> int:
        """Number of vertical slabs."""
        return len(self._indexes)

    def _plan(self, x_lows: np.ndarray, x_highs: np.ndarray):
        first = self._map.locate(x_lows)
        last = self._map.locate(x_highs)
        plans = []
        for pid in range(self._map.num_partitions):
            if self._indexes[pid] is None:
                continue  # empty slab: contributes the cumulative identity 0
            mask = (first <= pid) & (pid <= last)
            if not mask.any():
                continue
            indices = np.nonzero(mask)[0]
            clip_lows, clip_highs = self._map.clip(
                pid, x_lows[indices], x_highs[indices]
            )
            plans.append((pid, indices, clip_lows, clip_highs))
        return plans

    def _merged(
        self,
        method: str,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
    ) -> np.ndarray:
        x_lows, x_highs = validate_bounds_batch(x_lows, x_highs)
        y_lows, y_highs = validate_bounds_batch(y_lows, y_highs)
        merged = np.zeros(x_lows.size, dtype=np.float64)
        for pid, indices, clip_lows, clip_highs in self._plan(x_lows, x_highs):
            target = getattr(self._indexes[pid], method)
            merged[indices] += target(
                clip_lows, clip_highs, y_lows[indices], y_highs[indices]
            )
        return merged

    def error_bounds_batch(
        self, x_lows: np.ndarray, x_highs: np.ndarray
    ) -> np.ndarray:
        """Per-query certified bounds (sum over straddled non-empty slabs)."""
        x_lows, x_highs = validate_bounds_batch(x_lows, x_highs)
        bounds = np.zeros(x_lows.size, dtype=np.float64)
        for pid, indices, _, _ in self._plan(x_lows, x_highs):
            bounds[indices] += self._indexes[pid].certified_bound
        return bounds

    def estimate_batch(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
    ) -> np.ndarray:
        """Merged approximate answers for N rectangles."""
        return self._merged("estimate_batch", x_lows, x_highs, y_lows, y_highs)

    def exact_batch(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
    ) -> np.ndarray:
        """Merged exact answers for N rectangles."""
        return self._merged("exact_batch", x_lows, x_highs, y_lows, y_highs)

    def query_batch(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
        guarantee: Guarantee | None = None,
    ) -> BatchQueryResult:
        """Answer N rectangle queries with certificates over merged values."""
        x_lows, x_highs = validate_bounds_batch(x_lows, x_highs)
        y_lows, y_highs = validate_bounds_batch(y_lows, y_highs)
        approx = self._merged("estimate_batch", x_lows, x_highs, y_lows, y_highs)
        bounds = self.error_bounds_batch(x_lows, x_highs)
        return resolve_batch_certificates(
            approx,
            error_bound=bounds,
            guarantee=guarantee,
            exact_for_mask=lambda mask: self._merged(
                "exact_batch", x_lows[mask], x_highs[mask], y_lows[mask], y_highs[mask]
            ),
            absolute_fallback=False,
        )
