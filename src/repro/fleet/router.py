"""Scatter-gather query routing over a set of partition read views.

:class:`FleetRouter` turns one batch of range queries into per-partition
sub-batches and merges the partial answers back with the overlay combine
algebra:

* **scatter** — a query ``[low, high]`` overlaps exactly the partitions
  ``locate(low) .. locate(high)`` of the :class:`~repro.fleet.map.
  PartitionMap`; its rectangle is clipped against each partition's
  ownership range, so the clipped sub-ranges tile the query without
  overlap.  Planning is one vectorized ``searchsorted`` pair plus one
  boolean mask per partition — never a per-query loop.
* **gather** — cumulative partials (COUNT/SUM) start from zeros and *add*;
  extreme partials (MAX/MIN) start from NaN and combine with the NaN-aware
  ``np.fmax``/``np.fmin``, so a partition whose clip holds no keys answers
  NaN and simply drops out of the merge instead of poisoning it
  (``fmax(NaN, x) == x``; the merged answer is NaN only when *every*
  overlapping partition is empty over the clip — exactly the monolithic
  empty-range answer).
* **certificates** — the merged error bound is per query: the *sum* of the
  overlapping partitions' certified bounds for cumulative aggregates
  (partial errors add), their *max* for extremes.  The per-query bound
  array feeds the shared :func:`~repro.queries.batch.
  resolve_batch_certificates`, so the merged guarantee stays certified:
  relative certificates compare against the per-query bound and fall back
  to the merged exact answer when uncertified, exactly like a single
  PolyFit index.

Each non-empty partition view can be wrapped in a
:class:`~repro.queries.sharding.ShardedQueryEngine` (``num_shards > 1`` or
a non-serial ``executor``), stacking query-parallel execution under the
data-parallel fan-out.

A router is a frozen plan over frozen views: build it from a consistent
set of partition snapshots and it keeps answering that epoch while the
live fleet compacts or rebalances.

**Failure policy.**  ``failure_policy="fail_fast"`` (the default) propagates
a partition's exception out of the batch — nobody gets a partial answer by
accident.  ``"degrade"`` keeps :meth:`FleetRouter.query_batch` answering
when a partition's scatter call raises: the failed partition's clip
contributes nothing to the merged value, and its worst-case contribution —
captured per partition at router construction (total mass for COUNT/SUM,
global extreme for MAX/MIN) — is folded into the per-query certified bound
instead.  The answer stays *certified*, just looser; affected queries are
flagged ``degraded`` and the failed partition ids are surfaced on the
result.  The plain ``estimate_batch``/``exact_batch`` methods stay
fail-fast even under ``degrade``: they return bare value arrays with no
bound column to widen, so a partial answer there would be a silent wrong
answer — exactly what the durability layer exists to rule out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..config import Aggregate, GuaranteeKind
from ..errors import DataError
from ..obs.metrics import counter_family, histogram_family
from ..queries.batch import resolve_batch_certificates, validate_bounds_batch
from ..queries.sharding import DEFAULT_MIN_QUERIES_PER_SHARD, ShardedQueryEngine
from ..queries.types import BatchQueryResult, Guarantee
from .map import PartitionMap
from .partition import EmptyPartitionView

__all__ = ["FleetMetrics", "FleetRouter", "PartitionPlan"]


class FleetMetrics:
    """Scatter-gather instruments, owned by the live fleet.

    Routers are frozen per fleet snapshot and rebuilt on every version
    bump, so :class:`~repro.fleet.fleet.IndexFleet` creates one bundle and
    threads it into each successive router — fan-out latency and degrade
    counters accumulate across snapshots.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.partition_seconds = histogram_family(
            "repro_fleet_partition_seconds",
            "Per-partition fan-out execution time in seconds",
            ("partition",),
            enabled=enabled,
        )
        self.degraded_answers_total = counter_family(
            "repro_fleet_degraded_answers_total",
            "Queries answered with widened bounds because a partition failed",
            enabled=enabled,
        )
        self.failed_partitions_total = counter_family(
            "repro_fleet_failed_partitions_total",
            "Partition failures observed by degrade-mode scatters",
            enabled=enabled,
        )

    def families(self) -> list:
        fams = [
            self.partition_seconds,
            self.degraded_answers_total,
            self.failed_partitions_total,
        ]
        return [f for f in fams if getattr(f, "enabled", False)]


@dataclass(frozen=True)
class PartitionPlan:
    """Sub-batch for one partition: which queries, with clipped bounds."""

    pid: int
    query_indices: np.ndarray
    lows: np.ndarray
    highs: np.ndarray


class FleetRouter:
    """Plan, fan out, and merge batch queries over partition views.

    Parameters
    ----------
    partition_map:
        Routing state; must have exactly one entry per view.
    views:
        One frozen read view per partition (a
        :class:`~repro.index.overlay.DirectoryOverlay` or an
        :class:`~repro.fleet.partition.EmptyPartitionView`), each exposing
        ``estimate_batch`` / ``exact_batch`` / ``certified_bound``.
    aggregate:
        The fleet's aggregate (decides the merge algebra).
    num_shards, executor, min_queries_per_shard:
        Query-parallelism knobs: with ``num_shards > 1`` or a non-serial
        executor every non-empty view is wrapped in a
        :class:`~repro.queries.sharding.ShardedQueryEngine` with these
        settings (empty views answer O(1) identities and are never
        wrapped).
    failure_policy:
        ``"fail_fast"`` propagates partition exceptions; ``"degrade"``
        answers :meth:`query_batch` around failed partitions with widened
        certified bounds (see the module docstring).
    """

    def __init__(
        self,
        partition_map: PartitionMap,
        views: list,
        aggregate: Aggregate,
        *,
        num_shards: int = 1,
        executor: str = "serial",
        min_queries_per_shard: int = DEFAULT_MIN_QUERIES_PER_SHARD,
        failure_policy: str = "fail_fast",
        metrics: FleetMetrics | None = None,
    ) -> None:
        if len(views) != partition_map.num_partitions:
            raise DataError(
                f"partition map expects {partition_map.num_partitions} views, "
                f"got {len(views)}"
            )
        if failure_policy not in ("fail_fast", "degrade"):
            raise DataError(
                f"failure_policy must be 'fail_fast' or 'degrade', got {failure_policy!r}"
            )
        self._map = partition_map
        self._views = list(views)
        self._aggregate = aggregate
        self._cumulative = aggregate.is_cumulative
        self._combine = np.fmax if aggregate is Aggregate.MAX else np.fmin
        self._failure_policy = failure_policy
        self._metrics = metrics
        self._sharded = num_shards > 1 or executor != "serial"
        self._engines: list = []
        for view in self._views:
            if self._sharded and not isinstance(view, EmptyPartitionView):
                self._engines.append(
                    ShardedQueryEngine.for_index(
                        view,
                        num_shards=num_shards,
                        executor=executor,
                        min_queries_per_shard=min_queries_per_shard,
                    )
                )
            else:
                self._engines.append(view)
        # Per-partition worst-case contributions, captured while the views
        # are healthy: the degrade path widens certified bounds with these
        # when a partition fails mid-query.  ``None`` = unknown (capture
        # itself failed) — affected queries get an infinite bound.
        self._reserves: list[float | None] = (
            [self._capture_reserve(view) for view in self._views]
            if failure_policy == "degrade"
            else []
        )

    def _capture_reserve(self, view) -> float | None:
        """Worst-case contribution of one partition to any query.

        Cumulative aggregates: the partition's total mass ``M`` — a failed
        clip contributes somewhere in ``[0, M]`` (COUNT/SUM measures are
        non-negative), so adding ``M`` to the merged bound covers it.
        Extremes: the partition's global extreme ``E`` — the failed clip's
        extreme cannot exceed ``E`` (MAX) / fall below it (MIN), so the
        merged answer is off by at most ``max(0, E - merged)`` (MAX).
        NaN (an empty extreme partition) means no contribution at all.
        """
        try:
            total = float(
                view.exact_batch(
                    np.array([-np.inf]), np.array([np.inf])
                )[0]
            )
        except Exception:
            return None
        if self._cumulative and not np.isfinite(total):
            return None
        return total

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def failure_policy(self) -> str:
        """``"fail_fast"`` or ``"degrade"``."""
        return self._failure_policy

    @property
    def partition_map(self) -> PartitionMap:
        """The routing state this router was frozen with."""
        return self._map

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the routed fleet answers."""
        return self._aggregate

    @property
    def num_partitions(self) -> int:
        """Number of partitions fanned out over."""
        return len(self._views)

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #

    def plan(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, list[PartitionPlan]]:
        """Clip a query batch into per-partition sub-batches.

        Returns the validated bound arrays plus one
        :class:`PartitionPlan` per partition that at least one query
        overlaps.  The sub-ranges of one query across its plans tile the
        original range without overlap (partition ownership is half-open;
        the clip's inclusive upper bound is the largest float below the
        split key).
        """
        lows, highs = validate_bounds_batch(lows, highs)
        first = self._map.locate(lows)
        last = self._map.locate(highs)
        plans: list[PartitionPlan] = []
        for pid in range(self._map.num_partitions):
            mask = (first <= pid) & (pid <= last)
            if not mask.any():
                continue
            indices = np.nonzero(mask)[0]
            clip_lows, clip_highs = self._map.clip(pid, lows[indices], highs[indices])
            plans.append(PartitionPlan(pid, indices, clip_lows, clip_highs))
        return lows, highs, plans

    # ------------------------------------------------------------------ #
    # Merging
    # ------------------------------------------------------------------ #

    def _observer(self, trace):
        """Per-partition timing hook for the scatter loops (None = no-op)."""
        hist = self._metrics.partition_seconds if self._metrics is not None else None
        if hist is None and trace is None:
            return None, None
        clock = trace.now if trace is not None else time.perf_counter

        def observe(plan: PartitionPlan, t0: float, t1: float) -> None:
            if hist is not None:
                hist.labels(partition=str(plan.pid)).observe(t1 - t0)
            if trace is not None:
                trace.add_span(
                    "partition_exec",
                    t0,
                    t1,
                    partition=plan.pid,
                    queries=int(plan.query_indices.size),
                )

        return clock, observe

    def _scatter(
        self, method: str, plans: list[PartitionPlan], trace=None
    ) -> list[np.ndarray]:
        clock, observe = self._observer(trace)
        if observe is None:
            return [
                getattr(self._engines[plan.pid], method)(plan.lows, plan.highs)
                for plan in plans
            ]
        partials: list[np.ndarray] = []
        for plan in plans:
            t0 = clock()
            partials.append(
                getattr(self._engines[plan.pid], method)(plan.lows, plan.highs)
            )
            observe(plan, t0, clock())
        return partials

    def _scatter_capture(
        self, method: str, plans: list[PartitionPlan], trace=None
    ) -> tuple[list, set[int]]:
        """Degrade-mode scatter: a failing partition yields ``None`` partials.

        Only ``Exception`` is captured — ``BaseException`` (KeyboardInterrupt,
        an injected crash point) still propagates; the degrade policy covers
        partition faults, not process death.
        """
        clock, observe = self._observer(trace)
        partials: list = []
        failed: set[int] = set()
        for plan in plans:
            t0 = clock() if observe is not None else 0.0
            try:
                partials.append(
                    getattr(self._engines[plan.pid], method)(plan.lows, plan.highs)
                )
            except Exception:
                failed.add(plan.pid)
                partials.append(None)
            if observe is not None:
                observe(plan, t0, clock())
        return partials, failed

    def _widen_for_failures(
        self,
        n: int,
        plans: list[PartitionPlan],
        failed: set[int],
        merged: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-query bound widening covering the failed partitions' clips.

        Returns ``(widen, degraded)``: the additional absolute slack per
        query (to *add* for cumulative aggregates, to *max* into the bound
        for extremes) and the mask of queries touching a failed partition.
        The widening is conservative by construction — see
        :meth:`_capture_reserve` for the containment argument.
        """
        widen = np.zeros(n, dtype=np.float64)
        degraded = np.zeros(n, dtype=bool)
        for plan in plans:
            if plan.pid not in failed:
                continue
            selection = plan.query_indices
            degraded[selection] = True
            reserve = self._reserves[plan.pid]
            if reserve is None:
                widen[selection] = np.inf
                continue
            if self._cumulative:
                widen[selection] += reserve
                continue
            if np.isnan(reserve):
                continue  # provably empty partition: nothing was missed
            merged_part = merged[selection]
            if self._aggregate is Aggregate.MAX:
                gap = reserve - merged_part
            else:
                gap = merged_part - reserve
            # A NaN merged value (every healthy partition empty over the
            # clip) cannot bound the failed partition's contribution at all.
            gap = np.where(np.isnan(merged_part), np.inf, gap)
            widen[selection] = np.maximum(widen[selection], np.maximum(gap, 0.0))
        return widen, degraded

    def _combine_widening(self, bounds: np.ndarray, widen: np.ndarray) -> np.ndarray:
        if self._cumulative:
            return bounds + widen
        return np.maximum(bounds, widen)

    def _degraded_exact(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, set[int]]:
        """Exact-as-possible answers for the degrade path's fallback.

        Healthy partitions answer exactly (bound 0); failed partitions
        contribute only widening.  Returns values, per-query bounds,
        the degraded mask, and the failed pid set.
        """
        lows, highs, plans = self.plan(lows, highs)
        n = lows.size
        partials, failed = self._scatter_capture("exact_batch", plans)
        alive = [
            (plan, part) for plan, part in zip(plans, partials) if part is not None
        ]
        values = self._merge_values(n, [p for p, _ in alive], [v for _, v in alive])
        widen, degraded = self._widen_for_failures(n, plans, failed, values)
        bounds = self._combine_widening(np.zeros(n, dtype=np.float64), widen)
        return values, bounds, degraded, failed

    def _merge_values(
        self, n: int, plans: list[PartitionPlan], partials: list[np.ndarray]
    ) -> np.ndarray:
        if self._cumulative:
            merged = np.zeros(n, dtype=np.float64)
            for plan, part in zip(plans, partials):
                merged[plan.query_indices] += part
            return merged
        # NaN is the merge identity: fmax/fmin pick the non-NaN operand, so
        # empty-clip partitions (all-NaN partials) never poison the answer.
        merged = np.full(n, np.nan, dtype=np.float64)
        for plan, part in zip(plans, partials):
            selection = plan.query_indices
            merged[selection] = self._combine(merged[selection], part)
        return merged

    def merged_bounds(self, n: int, plans: list[PartitionPlan]) -> np.ndarray:
        """Per-query certified bound of the merged answers.

        Cumulative partial errors add across the partitions a query
        straddles; extreme partial errors do not accumulate, so the merged
        bound is their max.  Queries overlapping no partition with records
        get bound ``0.0`` (their merged answer is the exact identity).
        """
        bounds = np.zeros(n, dtype=np.float64)
        for plan in plans:
            bound = self._views[plan.pid].certified_bound
            selection = plan.query_indices
            if self._cumulative:
                bounds[selection] += bound
            else:
                bounds[selection] = np.maximum(bounds[selection], bound)
        return bounds

    # ------------------------------------------------------------------ #
    # Batch interface (mirrors a single index's)
    # ------------------------------------------------------------------ #

    def estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Merged approximate answers for N ranges."""
        lows, highs, plans = self.plan(lows, highs)
        return self._merge_values(
            lows.size, plans, self._scatter("estimate_batch", plans)
        )

    def exact_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Merged exact answers for N ranges (each partial is exact)."""
        lows, highs, plans = self.plan(lows, highs)
        return self._merge_values(lows.size, plans, self._scatter("exact_batch", plans))

    def error_bounds_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Per-query certified bounds without answering (planning only)."""
        lows, highs, plans = self.plan(lows, highs)
        return self.merged_bounds(lows.size, plans)

    #: Callers may pass ``trace=`` through ``query_batch`` (duck-typed
    #: capability check used by the serving host).
    supports_trace = True

    def query_batch(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        guarantee: Guarantee | None = None,
        trace=None,
    ) -> BatchQueryResult:
        """Answer N queries with certificates over the merged values.

        Guarantee semantics match a single PolyFit index, evaluated against
        the per-query merged bound: an absolute guarantee is met exactly by
        the queries whose merged bound fits the budget (no exact fallback —
        the fleet was built with a looser budget than requested); a relative
        guarantee certifies per query and answers the failing subset with
        the merged exact path.

        Under ``failure_policy="degrade"`` a failing partition no longer
        aborts the batch: its contribution is dropped from the merged value
        and its captured worst-case contribution widens the affected
        queries' certified bounds, so every certificate the result *does*
        claim still holds.  Affected queries carry ``degraded=True`` and
        the result lists the failed partition ids.
        """
        lows, highs, plans = self.plan(lows, highs)
        n = lows.size
        if self._failure_policy == "degrade":
            partials, failed = self._scatter_capture("estimate_batch", plans, trace)
            if failed:
                return self._query_batch_degraded(
                    lows, highs, plans, partials, failed, guarantee
                )
            approx = self._merge_values(n, plans, partials)
        else:
            approx = self._merge_values(
                n, plans, self._scatter("estimate_batch", plans, trace)
            )
        bounds = self.merged_bounds(n, plans)
        if trace is None:
            return resolve_batch_certificates(
                approx,
                error_bound=bounds,
                guarantee=guarantee,
                exact_for_mask=lambda mask: self.exact_batch(lows[mask], highs[mask]),
                absolute_fallback=False,
            )
        with trace.span("merge", partitions=len(plans)):
            return resolve_batch_certificates(
                approx,
                error_bound=bounds,
                guarantee=guarantee,
                exact_for_mask=lambda mask: self.exact_batch(lows[mask], highs[mask]),
                absolute_fallback=False,
            )

    def _query_batch_degraded(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        plans: list[PartitionPlan],
        partials: list,
        failed: set[int],
        guarantee: Guarantee | None,
    ) -> BatchQueryResult:
        """Certificate resolution when at least one partition failed.

        Mirrors :func:`~repro.queries.batch.resolve_batch_certificates`
        (absolute: no fallback; relative: exact fallback for the uncertified
        subset) with one difference: a fallback touching a failed partition
        cannot reach the true exact answer, so its bound stays at the
        widening instead of dropping to 0 and its certificate is re-checked
        against that residual bound — never claimed for free.
        """
        n = lows.size
        alive = [
            (plan, part) for plan, part in zip(plans, partials) if part is not None
        ]
        approx = self._merge_values(n, [p for p, _ in alive], [v for _, v in alive])
        base_bounds = self.merged_bounds(n, [p for p, _ in alive])
        widen, degraded = self._widen_for_failures(n, plans, failed, approx)
        bounds = self._combine_widening(base_bounds, widen)
        failed_pids = set(failed)
        fallback = np.zeros(n, dtype=bool)
        values = approx
        if guarantee is None:
            guaranteed = np.ones(n, dtype=bool)
        elif guarantee.kind is GuaranteeKind.ABSOLUTE:
            guaranteed = bounds <= guarantee.epsilon + 1e-12
        else:
            with np.errstate(invalid="ignore"):
                certified = approx >= bounds * (1.0 + 1.0 / guarantee.epsilon)
            fallback = ~certified
            guaranteed = np.ones(n, dtype=bool)
            if np.any(fallback):
                values = approx.copy()
                bounds = bounds.copy()
                sub_values, sub_bounds, sub_degraded, sub_failed = self._degraded_exact(
                    lows[fallback], highs[fallback]
                )
                values[fallback] = sub_values
                bounds[fallback] = sub_bounds
                degraded = degraded.copy()
                degraded[fallback] |= sub_degraded
                failed_pids |= sub_failed
                # Exact over the healthy partitions, residual bound from the
                # failed ones: guaranteed iff nothing is missing (bound 0) or
                # the Lemma-3 certificate holds against the residual bound.
                with np.errstate(invalid="ignore"):
                    sub_ok = (sub_bounds == 0.0) | (
                        sub_values >= sub_bounds * (1.0 + 1.0 / guarantee.epsilon)
                    )
                guaranteed[fallback] = sub_ok
        if self._metrics is not None:
            self._metrics.degraded_answers_total.inc(int(degraded.sum()))
            self._metrics.failed_partitions_total.inc(len(failed_pids))
        return BatchQueryResult(
            values,
            guaranteed,
            fallback,
            bounds,
            degraded=degraded,
            failed_partitions=tuple(sorted(failed_pids)),
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release any sharded-engine pools (idempotent)."""
        for engine in self._engines:
            if isinstance(engine, ShardedQueryEngine):
                engine.close()

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
