"""Scatter-gather query routing over a set of partition read views.

:class:`FleetRouter` turns one batch of range queries into per-partition
sub-batches and merges the partial answers back with the overlay combine
algebra:

* **scatter** — a query ``[low, high]`` overlaps exactly the partitions
  ``locate(low) .. locate(high)`` of the :class:`~repro.fleet.map.
  PartitionMap`; its rectangle is clipped against each partition's
  ownership range, so the clipped sub-ranges tile the query without
  overlap.  Planning is one vectorized ``searchsorted`` pair plus one
  boolean mask per partition — never a per-query loop.
* **gather** — cumulative partials (COUNT/SUM) start from zeros and *add*;
  extreme partials (MAX/MIN) start from NaN and combine with the NaN-aware
  ``np.fmax``/``np.fmin``, so a partition whose clip holds no keys answers
  NaN and simply drops out of the merge instead of poisoning it
  (``fmax(NaN, x) == x``; the merged answer is NaN only when *every*
  overlapping partition is empty over the clip — exactly the monolithic
  empty-range answer).
* **certificates** — the merged error bound is per query: the *sum* of the
  overlapping partitions' certified bounds for cumulative aggregates
  (partial errors add), their *max* for extremes.  The per-query bound
  array feeds the shared :func:`~repro.queries.batch.
  resolve_batch_certificates`, so the merged guarantee stays certified:
  relative certificates compare against the per-query bound and fall back
  to the merged exact answer when uncertified, exactly like a single
  PolyFit index.

Each non-empty partition view can be wrapped in a
:class:`~repro.queries.sharding.ShardedQueryEngine` (``num_shards > 1`` or
a non-serial ``executor``), stacking query-parallel execution under the
data-parallel fan-out.

A router is a frozen plan over frozen views: build it from a consistent
set of partition snapshots and it keeps answering that epoch while the
live fleet compacts or rebalances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import Aggregate
from ..errors import DataError
from ..queries.batch import resolve_batch_certificates, validate_bounds_batch
from ..queries.sharding import DEFAULT_MIN_QUERIES_PER_SHARD, ShardedQueryEngine
from ..queries.types import BatchQueryResult, Guarantee
from .map import PartitionMap
from .partition import EmptyPartitionView

__all__ = ["FleetRouter", "PartitionPlan"]


@dataclass(frozen=True)
class PartitionPlan:
    """Sub-batch for one partition: which queries, with clipped bounds."""

    pid: int
    query_indices: np.ndarray
    lows: np.ndarray
    highs: np.ndarray


class FleetRouter:
    """Plan, fan out, and merge batch queries over partition views.

    Parameters
    ----------
    partition_map:
        Routing state; must have exactly one entry per view.
    views:
        One frozen read view per partition (a
        :class:`~repro.index.overlay.DirectoryOverlay` or an
        :class:`~repro.fleet.partition.EmptyPartitionView`), each exposing
        ``estimate_batch`` / ``exact_batch`` / ``certified_bound``.
    aggregate:
        The fleet's aggregate (decides the merge algebra).
    num_shards, executor, min_queries_per_shard:
        Query-parallelism knobs: with ``num_shards > 1`` or a non-serial
        executor every non-empty view is wrapped in a
        :class:`~repro.queries.sharding.ShardedQueryEngine` with these
        settings (empty views answer O(1) identities and are never
        wrapped).
    """

    def __init__(
        self,
        partition_map: PartitionMap,
        views: list,
        aggregate: Aggregate,
        *,
        num_shards: int = 1,
        executor: str = "serial",
        min_queries_per_shard: int = DEFAULT_MIN_QUERIES_PER_SHARD,
    ) -> None:
        if len(views) != partition_map.num_partitions:
            raise DataError(
                f"partition map expects {partition_map.num_partitions} views, "
                f"got {len(views)}"
            )
        self._map = partition_map
        self._views = list(views)
        self._aggregate = aggregate
        self._cumulative = aggregate.is_cumulative
        self._combine = np.fmax if aggregate is Aggregate.MAX else np.fmin
        self._sharded = num_shards > 1 or executor != "serial"
        self._engines: list = []
        for view in self._views:
            if self._sharded and not isinstance(view, EmptyPartitionView):
                self._engines.append(
                    ShardedQueryEngine.for_index(
                        view,
                        num_shards=num_shards,
                        executor=executor,
                        min_queries_per_shard=min_queries_per_shard,
                    )
                )
            else:
                self._engines.append(view)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def partition_map(self) -> PartitionMap:
        """The routing state this router was frozen with."""
        return self._map

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the routed fleet answers."""
        return self._aggregate

    @property
    def num_partitions(self) -> int:
        """Number of partitions fanned out over."""
        return len(self._views)

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #

    def plan(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, list[PartitionPlan]]:
        """Clip a query batch into per-partition sub-batches.

        Returns the validated bound arrays plus one
        :class:`PartitionPlan` per partition that at least one query
        overlaps.  The sub-ranges of one query across its plans tile the
        original range without overlap (partition ownership is half-open;
        the clip's inclusive upper bound is the largest float below the
        split key).
        """
        lows, highs = validate_bounds_batch(lows, highs)
        first = self._map.locate(lows)
        last = self._map.locate(highs)
        plans: list[PartitionPlan] = []
        for pid in range(self._map.num_partitions):
            mask = (first <= pid) & (pid <= last)
            if not mask.any():
                continue
            indices = np.nonzero(mask)[0]
            clip_lows, clip_highs = self._map.clip(pid, lows[indices], highs[indices])
            plans.append(PartitionPlan(pid, indices, clip_lows, clip_highs))
        return lows, highs, plans

    # ------------------------------------------------------------------ #
    # Merging
    # ------------------------------------------------------------------ #

    def _scatter(self, method: str, plans: list[PartitionPlan]) -> list[np.ndarray]:
        return [
            getattr(self._engines[plan.pid], method)(plan.lows, plan.highs)
            for plan in plans
        ]

    def _merge_values(
        self, n: int, plans: list[PartitionPlan], partials: list[np.ndarray]
    ) -> np.ndarray:
        if self._cumulative:
            merged = np.zeros(n, dtype=np.float64)
            for plan, part in zip(plans, partials):
                merged[plan.query_indices] += part
            return merged
        # NaN is the merge identity: fmax/fmin pick the non-NaN operand, so
        # empty-clip partitions (all-NaN partials) never poison the answer.
        merged = np.full(n, np.nan, dtype=np.float64)
        for plan, part in zip(plans, partials):
            selection = plan.query_indices
            merged[selection] = self._combine(merged[selection], part)
        return merged

    def merged_bounds(self, n: int, plans: list[PartitionPlan]) -> np.ndarray:
        """Per-query certified bound of the merged answers.

        Cumulative partial errors add across the partitions a query
        straddles; extreme partial errors do not accumulate, so the merged
        bound is their max.  Queries overlapping no partition with records
        get bound ``0.0`` (their merged answer is the exact identity).
        """
        bounds = np.zeros(n, dtype=np.float64)
        for plan in plans:
            bound = self._views[plan.pid].certified_bound
            selection = plan.query_indices
            if self._cumulative:
                bounds[selection] += bound
            else:
                bounds[selection] = np.maximum(bounds[selection], bound)
        return bounds

    # ------------------------------------------------------------------ #
    # Batch interface (mirrors a single index's)
    # ------------------------------------------------------------------ #

    def estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Merged approximate answers for N ranges."""
        lows, highs, plans = self.plan(lows, highs)
        return self._merge_values(
            lows.size, plans, self._scatter("estimate_batch", plans)
        )

    def exact_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Merged exact answers for N ranges (each partial is exact)."""
        lows, highs, plans = self.plan(lows, highs)
        return self._merge_values(lows.size, plans, self._scatter("exact_batch", plans))

    def error_bounds_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Per-query certified bounds without answering (planning only)."""
        lows, highs, plans = self.plan(lows, highs)
        return self.merged_bounds(lows.size, plans)

    def query_batch(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        guarantee: Guarantee | None = None,
    ) -> BatchQueryResult:
        """Answer N queries with certificates over the merged values.

        Guarantee semantics match a single PolyFit index, evaluated against
        the per-query merged bound: an absolute guarantee is met exactly by
        the queries whose merged bound fits the budget (no exact fallback —
        the fleet was built with a looser budget than requested); a relative
        guarantee certifies per query and answers the failing subset with
        the merged exact path.
        """
        lows, highs, plans = self.plan(lows, highs)
        n = lows.size
        approx = self._merge_values(n, plans, self._scatter("estimate_batch", plans))
        bounds = self.merged_bounds(n, plans)
        return resolve_batch_certificates(
            approx,
            error_bound=bounds,
            guarantee=guarantee,
            exact_for_mask=lambda mask: self.exact_batch(lows[mask], highs[mask]),
            absolute_fallback=False,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release any sharded-engine pools (idempotent)."""
        for engine in self._engines:
            if isinstance(engine, ShardedQueryEngine):
                engine.close()

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
