"""Horizontally partitioned index fleet with scatter-gather routing.

One updatable PolyFit index per key range, a binary-searchable
:class:`PartitionMap` owning the ranges, and a :class:`FleetRouter` that
clips each query batch against partition boundaries, fans the sub-batches
out, and merges partial answers with the overlay combine algebra
(COUNT/SUM add, MAX/MIN NaN-aware fmax/fmin) under per-query certified
bounds.  :class:`IndexFleet` wraps it all behind the surface of a single
updatable index — including ``split``/``merge`` rebalancing by size under
a :class:`FleetPolicy` that never pauses reads — and
:func:`save_fleet`/:func:`load_fleet` persist it as a manifest directory
of per-partition codec files.  See ``docs/ARCHITECTURE.md`` for where the
fleet sits in the system and ``docs/FORMATS.md`` for the manifest format.
"""

from .fleet import Fleet2D, FleetSnapshot, IndexFleet
from .map import PartitionMap
from .partition import EmptyPartitionView, Partition
from .persistence import (
    FLEET_MANIFEST_VERSION,
    MANIFEST_NAME,
    is_fleet_dir,
    load_fleet,
    save_fleet,
)
from .policy import DEFAULT_FLEET_POLICY, FleetPolicy
from .router import FleetRouter, PartitionPlan

__all__ = [
    "PartitionMap",
    "Partition",
    "EmptyPartitionView",
    "FleetPolicy",
    "DEFAULT_FLEET_POLICY",
    "FleetRouter",
    "PartitionPlan",
    "IndexFleet",
    "FleetSnapshot",
    "Fleet2D",
    "MANIFEST_NAME",
    "FLEET_MANIFEST_VERSION",
    "save_fleet",
    "load_fleet",
    "is_fleet_dir",
]
