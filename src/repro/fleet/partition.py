"""One key range of a partitioned fleet: its own index, buffer, and epoch.

A :class:`Partition` owns every record whose key falls in its ownership
range and answers queries for it through its own
:class:`~repro.stream.updatable.UpdatablePolyFitIndex` — its own delta
buffer, its own compaction policy, its own epoch counter.  That per-range
independence is the point of the fleet: compaction or a split stalls one
key range, never the whole domain.

A partition that has never seen a record has no index at all; its
:class:`EmptyPartitionView` answers the overlay algebra's identities
(zeros for COUNT/SUM, NaN for MAX/MIN) with a certified bound of ``0.0``,
so the router's merge absorbs it without special-casing.

:meth:`Partition.records` recovers the canonical (key, measure) records
from the index's target function — COUNT expands integer cumulative steps,
SUM differences the cumulative sums, MAX/MIN read the key-measure table —
plus whatever sits unflushed in the delta buffer.  Split/merge rebalancing
rebuilds neighbour partitions from exactly these records.
"""

from __future__ import annotations

import numpy as np

from ..config import Aggregate, IndexConfig
from ..errors import DataError
from ..index.overlay import DirectoryOverlay
from ..stream.policy import CompactionPolicy
from ..stream.updatable import UpdatablePolyFitIndex

__all__ = ["Partition", "EmptyPartitionView"]


class EmptyPartitionView:
    """Frozen read view of a partition with no records.

    Mirrors the :class:`~repro.index.overlay.DirectoryOverlay` batch surface
    with the merge identities of the overlay algebra: cumulative answers are
    ``0.0`` (adding nothing), extreme answers are ``NaN`` (``fmax``/``fmin``
    ignore NaN operands), and the certified bound is ``0.0`` (an empty range
    is answered exactly).
    """

    def __init__(self, aggregate: Aggregate) -> None:
        self._aggregate = aggregate
        self._fill = 0.0 if aggregate.is_cumulative else np.nan

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate this view answers."""
        return self._aggregate

    @property
    def certified_bound(self) -> float:
        """Empty answers are exact."""
        return 0.0

    @property
    def epoch(self) -> int:
        """An empty partition has never compacted."""
        return 0

    @property
    def version(self) -> int:
        """An empty partition has never mutated."""
        return 0

    def _answers(self, lows: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(lows).size, self._fill, dtype=np.float64)

    def estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Identity answers for N ranges (0.0 cumulative, NaN extreme)."""
        return self._answers(lows)

    def exact_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Exact answers equal the identities for an empty partition."""
        return self._answers(lows)


class Partition:
    """One fleet partition: an updatable index over one key range.

    Parameters
    ----------
    aggregate:
        Aggregate the partition answers (shared across the fleet).
    delta:
        Per-segment fitting budget used when (re)building the partition's
        index (shared across the fleet so per-partition certified bounds are
        uniform and the merged bound is ``delta``-proportional to the number
        of partitions a query straddles).
    config:
        Index configuration (degree, segmentation, fan-out).
    compaction:
        Delta-buffer compaction policy handed to the underlying
        :class:`~repro.stream.updatable.UpdatablePolyFitIndex`.

    The partition does not know its own key range — the fleet's
    :class:`~repro.fleet.map.PartitionMap` owns routing; the partition only
    stores and answers.
    """

    def __init__(
        self,
        aggregate: Aggregate,
        *,
        delta: float,
        config: IndexConfig | None = None,
        compaction: CompactionPolicy | None = None,
    ) -> None:
        self._aggregate = aggregate
        self._delta = float(delta)
        if self._delta <= 0:
            raise DataError(f"delta must be positive, got {self._delta}")
        self._config = config
        self._compaction = compaction or CompactionPolicy()
        self._index: UpdatablePolyFitIndex | None = None
        self._empty_view = EmptyPartitionView(aggregate)

    @classmethod
    def from_records(
        cls,
        keys: np.ndarray,
        measures: np.ndarray | None,
        aggregate: Aggregate,
        *,
        delta: float,
        config: IndexConfig | None = None,
        compaction: CompactionPolicy | None = None,
    ) -> "Partition":
        """Build a partition from raw records (empty arrays are fine)."""
        partition = cls(
            aggregate, delta=delta, config=config, compaction=compaction
        )
        keys = np.asarray(keys, dtype=np.float64)
        if keys.size:
            partition._index = UpdatablePolyFitIndex.build(
                keys,
                measures,
                aggregate=aggregate,
                delta=delta,
                config=config,
                policy=compaction,
            )
        return partition

    @classmethod
    def adopt(
        cls,
        index: UpdatablePolyFitIndex,
        *,
        delta: float | None = None,
        config: IndexConfig | None = None,
    ) -> "Partition":
        """Wrap an already-built updatable index (codec load path)."""
        partition = cls(
            index.aggregate,
            delta=index.delta if delta is None else delta,
            config=config if config is not None else index.config,
            compaction=index.policy,
        )
        partition._index = index
        return partition

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the partition answers."""
        return self._aggregate

    @property
    def delta(self) -> float:
        """Per-segment fitting budget used for (re)builds."""
        return self._delta

    @property
    def config(self) -> IndexConfig | None:
        """Index configuration used for (re)builds."""
        return self._config

    @property
    def compaction(self) -> CompactionPolicy:
        """Delta-buffer policy of the underlying updatable index."""
        return self._compaction

    @property
    def index(self) -> UpdatablePolyFitIndex | None:
        """The underlying updatable index (``None`` while empty)."""
        return self._index

    @property
    def is_empty(self) -> bool:
        """Whether the partition has no records at all."""
        return self._index is None

    @property
    def num_keys(self) -> int:
        """Distinct base keys plus buffered records (the policy's size input)."""
        if self._index is None:
            return 0
        base_keys = self._index._function_arrays()[0]  # noqa: SLF001 - fleet is a friend module
        return int(base_keys.size) + int(self._index.buffer_size)

    @property
    def epoch(self) -> int:
        """Compaction epoch of the underlying index (0 while empty)."""
        return 0 if self._index is None else self._index.epoch

    @property
    def version(self) -> int:
        """Mutation counter of the underlying index (0 while empty)."""
        return 0 if self._index is None else self._index.version

    @property
    def buffer_size(self) -> int:
        """Records sitting in the delta buffer (0 while empty)."""
        return 0 if self._index is None else self._index.buffer_size

    @property
    def num_segments(self) -> int:
        """Segment count of the underlying base (0 while empty)."""
        return 0 if self._index is None else self._index.num_segments

    @property
    def certified_bound(self) -> float:
        """Certified absolute bound of this partition's answers."""
        return 0.0 if self._index is None else self._index.certified_bound

    def size_in_bytes(self) -> int:
        """Estimated in-memory footprint (the policy's byte input)."""
        return 0 if self._index is None else self._index.size_in_bytes()

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    def insert(self, keys: np.ndarray, measures: np.ndarray | None = None) -> int:
        """Insert records (already routed here by key); returns the count.

        The first insert into an empty partition *builds* its index from the
        chunk; later inserts go through the index's delta buffer and its
        compaction policy.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.float64))
        if keys.size == 0:
            return 0
        if self._index is None:
            self._index = UpdatablePolyFitIndex.build(
                keys,
                measures,
                aggregate=self._aggregate,
                delta=self._delta,
                config=self._config,
                policy=self._compaction,
            )
            return int(keys.size)
        return self._index.insert(keys, measures)

    def compact(self) -> bool:
        """Fold the delta buffer into the base; False when there is nothing."""
        return False if self._index is None else self._index.compact()

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #

    def snapshot(self) -> DirectoryOverlay | EmptyPartitionView:
        """Frozen read view of the current epoch.

        A :class:`~repro.index.overlay.DirectoryOverlay` when the partition
        holds records, the merge-identity :class:`EmptyPartitionView`
        otherwise.  Frozen views are what the router fans out over, so a
        concurrent compaction or split never changes answers mid-batch.
        """
        if self._index is None:
            return self._empty_view
        return self._index.snapshot()

    # ------------------------------------------------------------------ #
    # Rebalancing support
    # ------------------------------------------------------------------ #

    def records(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Canonical (keys, measures) records held by this partition.

        Recovers records from the index's target function — COUNT repeats
        each key by its integer cumulative step, SUM differences the
        cumulative sums into per-key totals, MAX/MIN read the key-measure
        table directly — then appends the unflushed delta-buffer records.
        ``measures`` is ``None`` for COUNT (unit measures are implied).

        Rebuilding an index from these records reproduces the partition's
        target function exactly for COUNT/MAX/MIN; SUM per-key totals are
        recovered by floating-point differencing and can drift from the raw
        per-record sums by ulps — far below any meaningful ``delta``.
        """
        if self._index is None:
            empty = np.empty(0, dtype=np.float64)
            return empty, (None if self._aggregate is Aggregate.COUNT else empty.copy())
        base_keys, base_values = self._index._function_arrays()  # noqa: SLF001 - fleet is a friend module
        buffer_keys, buffer_measures = self._index._buffer.arrays()  # noqa: SLF001
        if self._aggregate is Aggregate.COUNT:
            counts = np.diff(base_values, prepend=0.0)
            keys = np.concatenate(
                (np.repeat(base_keys, counts.astype(np.int64)), buffer_keys)
            )
            return keys, None
        if self._aggregate is Aggregate.SUM:
            base_measures = np.diff(base_values, prepend=0.0)
        else:
            base_measures = base_values
        return (
            np.concatenate((base_keys, buffer_keys)),
            np.concatenate((base_measures, buffer_measures)),
        )
