"""Size-based rebalancing policy for a partitioned index fleet.

The same ``auto_partitioning_by_size`` discipline production table stores
apply: a partition that grows past ``max_keys`` (or ``max_bytes``, when
set) should split at its median key; two adjacent partitions whose
*combined* size stays under ``merge_keys`` should merge so the fleet does
not accumulate slivers after skewed ingest.  The policy only *decides* —
the fleet executes splits/merges and :class:`~repro.fleet.map.PartitionMap`
carries the resulting routing state.

Each partition additionally carries its own
:class:`~repro.stream.policy.CompactionPolicy` (delta-buffer discipline);
the fleet policy nests a template for it so ``fleet-build`` can configure
both layers from one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import DataError
from ..stream.policy import CompactionPolicy

__all__ = ["FleetPolicy", "DEFAULT_FLEET_POLICY"]


@dataclass(frozen=True)
class FleetPolicy:
    """When to split / merge partitions, and how each partition compacts.

    Parameters
    ----------
    max_keys:
        Split a partition once it holds more than this many keys
        (delta-buffer records included).  ``None`` disables key-count splits.
    merge_keys:
        Merge two adjacent partitions when their combined key count is at
        most this.  ``None`` disables merges.  Must stay below ``max_keys``
        when both are set, otherwise a merge would immediately re-split.
    max_bytes:
        Split a partition once its estimated in-memory footprint exceeds
        this.  ``None`` disables byte-based splits.
    auto:
        When ``True`` the fleet checks :meth:`should_split` after every
        insert batch and rebalances inline; when ``False`` rebalancing only
        happens via explicit ``split()`` / ``merge()`` / ``rebalance()``.
    compaction:
        Template :class:`~repro.stream.policy.CompactionPolicy` handed to
        every partition's ``UpdatablePolyFitIndex``.
    """

    max_keys: int | None = None
    merge_keys: int | None = None
    max_bytes: int | None = None
    auto: bool = False
    compaction: CompactionPolicy = field(default_factory=CompactionPolicy)

    def __post_init__(self) -> None:
        if self.max_keys is not None and self.max_keys < 2:
            raise DataError(f"max_keys must be >= 2, got {self.max_keys}")
        if self.merge_keys is not None and self.merge_keys < 0:
            raise DataError(f"merge_keys must be >= 0, got {self.merge_keys}")
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise DataError(f"max_bytes must be positive, got {self.max_bytes}")
        if (
            self.max_keys is not None
            and self.merge_keys is not None
            and self.merge_keys >= self.max_keys
        ):
            raise DataError(
                f"merge_keys ({self.merge_keys}) must be < max_keys "
                f"({self.max_keys}) or merged partitions would re-split"
            )

    def should_split(self, num_keys: int, size_in_bytes: int) -> bool:
        """True when a partition of this size is due for a median split."""
        if self.max_keys is not None and num_keys > self.max_keys:
            return True
        return self.max_bytes is not None and size_in_bytes > self.max_bytes

    def should_merge(self, combined_keys: int) -> bool:
        """True when two adjacent partitions with this combined size should merge."""
        return self.merge_keys is not None and combined_keys <= self.merge_keys

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_payload(self) -> dict[str, Any]:
        """JSON-compatible form (fleet manifest block)."""
        return {
            "max_keys": self.max_keys,
            "merge_keys": self.merge_keys,
            "max_bytes": self.max_bytes,
            "auto": self.auto,
            "compaction": self.compaction.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "FleetPolicy":
        """Inverse of :meth:`to_payload`."""
        compaction_payload = payload.get("compaction")
        return cls(
            max_keys=payload.get("max_keys"),
            merge_keys=payload.get("merge_keys"),
            max_bytes=payload.get("max_bytes"),
            auto=bool(payload.get("auto", False)),
            compaction=(
                CompactionPolicy()
                if compaction_payload is None
                else CompactionPolicy.from_payload(compaction_payload)
            ),
        )


#: Manual-only policy: no automatic splits or merges, default compaction.
DEFAULT_FLEET_POLICY = FleetPolicy()
