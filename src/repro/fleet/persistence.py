"""Fleet persistence: a JSON manifest plus one codec file per partition.

A saved fleet is a *directory*:

```
fleet/
  manifest.json          # routing + policy + the partition file table
  partition-0000.pfbin   # repro.index.codec binary, kind "updatable1d"
  partition-0002.pfbin   # (empty partitions have no file at all)
  ...
```

``manifest.json`` carries everything the codec files cannot: the split
keys, the fleet policy, the fleet's epoch/version counters, and which file
(if any) holds each partition.  Each partition file is an ordinary
:func:`~repro.index.codec.save_index_binary` file — loadable on its own,
mmap-shareable across processes, and exactly the format ``docs/FORMATS.md``
specifies.  See that document for the manifest field reference.

All load errors are typed :class:`~repro.errors.SerializationError`\\s:
missing/corrupt manifest, unsupported manifest version, wrong kind, or a
partition file that is missing or fails the codec's own validation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..config import Aggregate
from ..errors import SerializationError
from ..index.atomic import atomic_write, prune_tmp_files
from ..index.codec import load_index_binary, save_index_binary
from ..stream.updatable import UpdatablePolyFitIndex
from .fleet import IndexFleet
from .map import PartitionMap
from .partition import Partition
from .policy import FleetPolicy

__all__ = [
    "MANIFEST_NAME",
    "FLEET_MANIFEST_VERSION",
    "save_fleet",
    "load_fleet",
    "is_fleet_dir",
]

#: File name of the manifest inside a fleet directory.
MANIFEST_NAME = "manifest.json"

#: Current manifest format version (independent of the codec's binary
#: container version; bump on incompatible manifest layout changes).
FLEET_MANIFEST_VERSION = 1

_MANIFEST_KIND = "fleet1d"


def _partition_file_name(pid: int) -> str:
    return f"partition-{pid:04d}.pfbin"


def save_fleet(fleet: IndexFleet, directory: str | Path) -> Path:
    """Persist a fleet as a manifest directory; returns the manifest path.

    The directory is created if needed.  Stale ``partition-*.pfbin`` files
    from a previous save with more partitions are removed, so the directory
    always describes exactly one fleet.
    """
    directory = Path(directory)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise SerializationError(f"cannot create fleet directory {directory}: {exc}") from exc
    entries: list[dict[str, Any]] = []
    for pid, partition in enumerate(fleet.partitions):
        if partition.index is None:
            entries.append({"pid": pid, "file": None})
            continue
        file_name = _partition_file_name(pid)
        save_index_binary(partition.index, directory / file_name)
        entries.append({"pid": pid, "file": file_name})
    manifest = {
        "format_version": FLEET_MANIFEST_VERSION,
        "kind": _MANIFEST_KIND,
        "aggregate": fleet.aggregate.value,
        "delta": fleet.delta,
        "splits": fleet.partition_map.to_payload(),
        "policy": fleet.policy.to_payload(),
        "epoch": fleet.epoch,
        "version": fleet.version,
        "partitions": entries,
    }
    for stale in directory.glob("partition-*.pfbin"):
        if stale.name not in {entry["file"] for entry in entries}:
            stale.unlink()
    manifest_path = directory / MANIFEST_NAME
    payload = (json.dumps(manifest, indent=2) + "\n").encode("utf-8")
    # Atomic: the manifest is the commit point of the whole save.  Partition
    # files land first (each atomically), then the manifest flips the
    # directory from the old fleet to the new one in one rename — a crash
    # mid-save leaves a directory that loads as the previous fleet.
    atomic_write(manifest_path, lambda handle: handle.write(payload))
    return manifest_path


def is_fleet_dir(path: str | Path) -> bool:
    """Whether ``path`` looks like a saved fleet (a dir with a manifest)."""
    path = Path(path)
    return path.is_dir() and (path / MANIFEST_NAME).is_file()


def load_fleet(
    directory: str | Path,
    *,
    mmap: bool = True,
    num_shards: int = 1,
    executor: str = "serial",
    verify: bool = False,
    failure_policy: str = "fail_fast",
) -> IndexFleet:
    """Load a fleet saved by :func:`save_fleet`.

    Partition files are loaded through the binary codec (mmap'd by
    default, so concurrent loaders share pages); routing, policy and the
    epoch/version counters come from the manifest.  Raises
    :class:`~repro.errors.SerializationError` on any structural problem.

    Recovery: stale ``*.tmp`` files from a crashed save are pruned first —
    the manifest is the save's commit point, so whatever it references is
    complete and the tmp leftovers are garbage.  ``verify=True`` checks
    every partition file's per-array checksums (codec format v3) while
    loading.
    """
    directory = Path(directory)
    prune_tmp_files(directory)
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
    except OSError as exc:
        raise SerializationError(f"cannot read fleet manifest {manifest_path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SerializationError(f"malformed fleet manifest {manifest_path}: {exc}") from exc
    try:
        version = manifest["format_version"]
        if version != FLEET_MANIFEST_VERSION:
            raise SerializationError(f"unsupported fleet manifest version {version}")
        kind = manifest["kind"]
        if kind != _MANIFEST_KIND:
            raise SerializationError(f"unknown fleet manifest kind {kind!r}")
        aggregate = Aggregate(manifest["aggregate"])
        delta = float(manifest["delta"])
        partition_map = PartitionMap.from_payload(manifest["splits"])
        policy = FleetPolicy.from_payload(manifest["policy"])
        entries = manifest["partitions"]
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"malformed fleet manifest {manifest_path}: {exc}") from exc
    if len(entries) != partition_map.num_partitions:
        raise SerializationError(
            f"fleet manifest {manifest_path} lists {len(entries)} partitions "
            f"but its splits describe {partition_map.num_partitions}"
        )
    partitions: list[Partition] = []
    config = None
    for pid, entry in enumerate(entries):
        file_name = entry.get("file")
        if file_name is None:
            partitions.append(
                Partition(
                    aggregate,
                    delta=delta,
                    config=config,
                    compaction=policy.compaction,
                )
            )
            continue
        partition_path = directory / file_name
        if not partition_path.is_file():
            raise SerializationError(
                f"fleet manifest {manifest_path} references missing "
                f"partition file {file_name}"
            )
        index = load_index_binary(partition_path, mmap=mmap, verify=verify)
        if not isinstance(index, UpdatablePolyFitIndex):
            raise SerializationError(
                f"fleet partition file {file_name} holds a "
                f"{type(index).__name__}, expected an updatable 1-D index"
            )
        if index.aggregate is not aggregate:
            raise SerializationError(
                f"fleet partition file {file_name} answers "
                f"{index.aggregate.value}, manifest says {aggregate.value}"
            )
        config = index.config
        partitions.append(Partition.adopt(index, delta=delta))
    fleet = IndexFleet(
        partition_map,
        partitions,
        aggregate,
        delta=delta,
        config=config,
        policy=policy,
        num_shards=num_shards,
        executor=executor,
        failure_policy=failure_policy,
    )
    fleet._epoch = int(manifest.get("epoch", 0))  # noqa: SLF001 - persistence is a friend module
    fleet._version = int(manifest.get("version", 0))  # noqa: SLF001
    return fleet
