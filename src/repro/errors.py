"""Exception hierarchy for the PolyFit reproduction library.

All library-specific exceptions derive from :class:`ReproError` so callers can
catch a single base class.  Each subclass marks a distinct failure mode of the
pipeline: invalid input data, an infeasible fitting problem, a malformed query,
or a guarantee that cannot be certified at query time.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DataError",
    "FittingError",
    "SegmentationError",
    "QueryError",
    "GuaranteeNotSatisfiedError",
    "NotSupportedError",
    "SerializationError",
    "ServerOverloadedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DataError(ReproError):
    """Raised when an input dataset is malformed.

    Typical causes: empty arrays, mismatched key/measure lengths, NaN or
    infinite keys, or negative measures where the paper's model requires
    non-negative measures.
    """


class FittingError(ReproError):
    """Raised when a minimax polynomial fit cannot be computed.

    This usually indicates that the underlying linear program was reported
    infeasible or unbounded by the solver, which should not happen for
    well-formed inputs, or that a degenerate interval (zero points) was
    supplied.
    """


class SegmentationError(ReproError):
    """Raised when a segmentation routine cannot cover the key domain."""


class QueryError(ReproError):
    """Raised for malformed queries (e.g. lower bound above upper bound)."""


class GuaranteeNotSatisfiedError(ReproError):
    """Raised when a requested error guarantee cannot be certified.

    For relative-error queries (Problem 2 of the paper) the certificate
    ``A >= c * delta * (1 + 1/eps_rel)`` may fail; the engine normally falls
    back to the exact method, but callers that disable the fallback receive
    this exception instead.
    """


class NotSupportedError(ReproError):
    """Raised when a method does not support the requested operation.

    Mirrors the 'n/a' entries of Table IV/V in the paper (e.g. RMI does not
    support MAX queries or two-key queries).
    """


class SerializationError(ReproError):
    """Raised when an index cannot be serialized or deserialized."""


class ServerOverloadedError(ReproError):
    """Raised when the serving layer rejects a request under admission control.

    The coalescing front-end bounds its pending-request queue; once the bound
    is hit (or a drain-then-stop shutdown has begun, or a per-request deadline
    expired), new requests fail fast with this error instead of building an
    unbounded backlog.  HTTP clients see it as a 503; ``retry_after_s``
    (when set) is surfaced as a ``Retry-After`` hint so well-behaved clients
    back off instead of hammering the server.
    """

    def __init__(self, message: str, *, retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
