"""Named dataset registry used by benchmarks and examples.

The registry maps the paper's dataset names (``hki``, ``tweet``, ``osm``) to
synthetic generators with sensible default sizes, so benchmark drivers can ask
for "the TWEET dataset at 1/20 scale" without duplicating generator arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import DataError
from . import synthetic

__all__ = ["DatasetSpec", "get_dataset", "list_datasets"]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of a named dataset.

    Attributes
    ----------
    name:
        Registry key (lower case).
    full_size:
        The size used in the paper's evaluation.
    dimensions:
        1 for (key, measure) datasets, 2 for (x, y) point sets.
    default_aggregate:
        The aggregate the paper evaluates on this dataset.
    generator:
        Callable ``(n, seed) -> arrays`` producing the synthetic stand-in.
    description:
        Human-readable provenance note.
    """

    name: str
    full_size: int
    dimensions: int
    default_aggregate: str
    generator: Callable[[int, int], tuple[np.ndarray, np.ndarray]]
    description: str


_REGISTRY: dict[str, DatasetSpec] = {
    "hki": DatasetSpec(
        name="hki",
        full_size=900_000,
        dimensions=1,
        default_aggregate="max",
        generator=lambda n, seed: synthetic.stock_index_walk(n=n, seed=seed),
        description=(
            "Synthetic stand-in for the Hong Kong 40-Index tick data: "
            "mean-reverting random walk with intraday seasonality."
        ),
    ),
    "tweet": DatasetSpec(
        name="tweet",
        full_size=1_000_000,
        dimensions=1,
        default_aggregate="count",
        generator=lambda n, seed: synthetic.tweet_latitudes(n=n, seed=seed),
        description=(
            "Synthetic stand-in for tweet latitudes: Gaussian mixture over "
            "populated latitude bands."
        ),
    ),
    "osm": DatasetSpec(
        name="osm",
        full_size=100_000_000,
        dimensions=2,
        default_aggregate="count",
        generator=lambda n, seed: synthetic.osm_points(n=n, seed=seed),
        description=(
            "Synthetic stand-in for OpenStreetMap nodes: clustered 2-D "
            "mixture over the lon/lat box."
        ),
    ),
}


def list_datasets() -> list[str]:
    """Return the names of all registered datasets."""
    return sorted(_REGISTRY)


def get_dataset(
    name: str,
    n: int | None = None,
    scale: float | None = None,
    seed: int = 42,
) -> tuple[DatasetSpec, tuple[np.ndarray, np.ndarray]]:
    """Materialize a registered dataset.

    Parameters
    ----------
    name:
        One of :func:`list_datasets` (case-insensitive).
    n:
        Explicit number of records.  Mutually exclusive with ``scale``.
    scale:
        Fraction of the paper's full size (e.g. ``0.01`` for 1%).  Used when
        ``n`` is not given; defaults to a benchmark-friendly small fraction.
    seed:
        RNG seed forwarded to the generator.

    Returns
    -------
    spec, arrays:
        The dataset spec and the generated arrays (``(keys, measures)`` for
        1-D datasets, ``(xs, ys)`` for 2-D datasets).
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise DataError(f"unknown dataset {name!r}; known: {list_datasets()}")
    if n is not None and scale is not None:
        raise DataError("pass either n or scale, not both")
    spec = _REGISTRY[key]
    if n is None:
        fraction = scale if scale is not None else 0.01
        if fraction <= 0:
            raise DataError("scale must be positive")
        n = max(1_000, int(spec.full_size * fraction))
    arrays = spec.generator(n, seed)
    return spec, arrays
