"""Synthetic dataset generators.

Each generator returns numpy arrays shaped like the datasets the paper uses:

* :func:`stock_index_walk` — a (timestamp, index-value) series standing in for
  the Hong Kong 40-Index tick data (HKI, 0.9M rows).  The relevant property is
  a smooth but strongly non-linear key->measure curve.
* :func:`tweet_latitudes` — a 1-D key set standing in for tweet latitudes
  (TWEET, 1M rows).  The relevant property is a multi-modal key density whose
  cumulative count function is S-shaped.
* :func:`osm_points` — a 2-D clustered point set standing in for OpenStreetMap
  nodes (OSM, 100M rows in the paper; configurable here).

All generators take an explicit ``seed`` so experiments are reproducible, and
return float64 arrays sorted the way the index builders expect.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError

__all__ = [
    "stock_index_walk",
    "tweet_latitudes",
    "osm_points",
    "uniform_keys",
    "zipf_keys",
    "piecewise_smooth_measures",
]


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def _require_positive(n: int, name: str = "n") -> None:
    if n <= 0:
        raise DataError(f"{name} must be positive, got {n}")


def stock_index_walk(
    n: int = 900_000,
    seed: int | None = 7,
    start_value: float = 28_000.0,
    daily_points: int = 3_600,
    volatility: float = 9.0,
    mean_reversion: float = 5e-4,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a stock-index-like (timestamp, value) series.

    The series is a mean-reverting random walk with mild intraday seasonality,
    bounded to stay within a plausible band around ``start_value``.  It mimics
    the HKI dataset of the paper: distinct integer-like timestamps as keys and
    a smooth, non-linear measure curve suitable for MAX/MIN queries.

    Parameters
    ----------
    n:
        Number of records.
    seed:
        Seed for the random generator (``None`` for non-deterministic).
    start_value:
        Initial index level.
    daily_points:
        Number of ticks per synthetic trading day (controls the seasonality
        period).
    volatility:
        Standard deviation of per-tick innovations (index points).
    mean_reversion:
        Strength of the pull back towards ``start_value``.

    Returns
    -------
    keys, measures:
        ``keys`` are strictly increasing float timestamps starting at 0;
        ``measures`` are the index values (all positive).
    """
    _require_positive(n)
    rng = _rng(seed)
    keys = np.arange(n, dtype=np.float64)
    # Non-uniform tick spacing: add jitter but keep strict monotonicity.
    keys += rng.uniform(0.0, 0.45, size=n)

    innovations = rng.normal(0.0, volatility, size=n)
    values = np.empty(n, dtype=np.float64)
    level = start_value
    day_phase = 2.0 * np.pi / max(daily_points, 1)
    seasonal = 40.0 * np.sin(day_phase * np.arange(n)) * rng.uniform(0.5, 1.5)
    for i in range(n):
        level += innovations[i] - mean_reversion * (level - start_value)
        values[i] = level
    values = values + seasonal
    # Keep measures strictly positive (paper assumes non-negative measures).
    floor = max(1.0, values.min())
    if values.min() <= 0:
        values = values - values.min() + floor
    return keys, values


def tweet_latitudes(
    n: int = 1_000_000,
    seed: int | None = 11,
    *,
    with_counts: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate latitude-like 1-D keys with per-key measures.

    Latitudes are drawn from a mixture of Gaussians centred on heavily
    populated latitude bands (roughly North America, Europe, East/South Asia,
    South America), clipped to ``[-90, 90]``.  Duplicate keys are perturbed so
    the paper's distinct-key assumption holds.

    Parameters
    ----------
    n:
        Number of records.
    seed:
        RNG seed.
    with_counts:
        When True the measure of each record is a small positive integer
        (number of tweets at that location); when False all measures are 1,
        which makes SUM equal to COUNT.

    Returns
    -------
    keys, measures:
        Sorted unique keys and their non-negative measures.
    """
    _require_positive(n)
    rng = _rng(seed)
    centers = np.array([40.0, 50.0, 23.0, 1.0, -15.0, -33.0])
    scales = np.array([6.0, 4.0, 8.0, 6.0, 7.0, 5.0])
    weights = np.array([0.28, 0.22, 0.22, 0.10, 0.10, 0.08])
    weights = weights / weights.sum()
    component = rng.choice(len(centers), size=n, p=weights)
    lat = rng.normal(centers[component], scales[component])
    lat = np.clip(lat, -89.9, 89.9)
    keys = np.sort(lat)
    # Enforce strictly increasing keys by spreading exact duplicates.
    keys = _make_strictly_increasing(keys)
    if with_counts:
        measures = rng.integers(1, 6, size=n).astype(np.float64)
    else:
        measures = np.ones(n, dtype=np.float64)
    return keys, measures


def osm_points(
    n: int = 1_000_000,
    seed: int | None = 13,
    clusters: int = 40,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate clustered 2-D (longitude, latitude) points.

    Points are drawn from a mixture of anisotropic Gaussian clusters placed
    uniformly over the lon/lat box plus a 10% uniform background, mimicking
    the geographic clustering of OpenStreetMap nodes.

    Parameters
    ----------
    n:
        Number of points.
    seed:
        RNG seed.
    clusters:
        Number of Gaussian clusters.

    Returns
    -------
    xs, ys:
        Longitude in ``[-180, 180]`` and latitude in ``[-85, 85]``.
    """
    _require_positive(n)
    if clusters <= 0:
        raise DataError("clusters must be positive")
    rng = _rng(seed)
    n_background = int(0.1 * n)
    n_clustered = n - n_background
    centers_x = rng.uniform(-170.0, 170.0, size=clusters)
    centers_y = rng.uniform(-75.0, 75.0, size=clusters)
    sx = rng.uniform(1.0, 12.0, size=clusters)
    sy = rng.uniform(1.0, 10.0, size=clusters)
    weights = rng.dirichlet(np.ones(clusters) * 2.0)
    assignment = rng.choice(clusters, size=n_clustered, p=weights)
    xs = rng.normal(centers_x[assignment], sx[assignment])
    ys = rng.normal(centers_y[assignment], sy[assignment])
    bx = rng.uniform(-180.0, 180.0, size=n_background)
    by = rng.uniform(-85.0, 85.0, size=n_background)
    xs = np.concatenate([xs, bx])
    ys = np.concatenate([ys, by])
    xs = np.clip(xs, -180.0, 180.0)
    ys = np.clip(ys, -85.0, 85.0)
    return xs, ys


def uniform_keys(
    n: int,
    low: float = 0.0,
    high: float = 1.0,
    seed: int | None = 3,
) -> np.ndarray:
    """Generate ``n`` strictly increasing keys uniform on ``[low, high]``."""
    _require_positive(n)
    if not high > low:
        raise DataError(f"need high > low, got [{low}, {high}]")
    rng = _rng(seed)
    keys = np.sort(rng.uniform(low, high, size=n))
    return _make_strictly_increasing(keys)


def zipf_keys(
    n: int,
    alpha: float = 1.3,
    universe: int = 1_000_000,
    seed: int | None = 5,
) -> np.ndarray:
    """Generate skewed keys from a Zipf-like distribution.

    Useful for stress-testing segmentation on highly non-uniform cumulative
    functions.  Keys are made strictly increasing by jittering duplicates.
    """
    _require_positive(n)
    if alpha <= 1.0:
        raise DataError("alpha must be > 1 for a Zipf distribution")
    rng = _rng(seed)
    raw = rng.zipf(alpha, size=n).astype(np.float64)
    raw = np.minimum(raw, float(universe))
    keys = np.sort(raw)
    return _make_strictly_increasing(keys)


def piecewise_smooth_measures(
    keys: np.ndarray,
    pieces: int = 5,
    amplitude: float = 100.0,
    noise: float = 1.0,
    seed: int | None = 17,
) -> np.ndarray:
    """Generate measures that are piecewise-smooth functions of the keys.

    Each piece is a random low-degree polynomial of the key; this produces a
    DFmax curve that is easy for piecewise polynomials and hard for a single
    global model — the regime the paper's Figure 5 illustrates.
    """
    keys = np.asarray(keys, dtype=np.float64)
    if keys.ndim != 1 or keys.size == 0:
        raise DataError("keys must be a non-empty 1-D array")
    if pieces <= 0:
        raise DataError("pieces must be positive")
    rng = _rng(seed)
    n = keys.size
    boundaries = np.linspace(0, n, pieces + 1, dtype=int)
    measures = np.empty(n, dtype=np.float64)
    for piece in range(pieces):
        lo, hi = boundaries[piece], boundaries[piece + 1]
        if hi <= lo:
            continue
        seg_keys = keys[lo:hi]
        span = seg_keys[-1] - seg_keys[0]
        t = (seg_keys - seg_keys[0]) / span if span > 0 else np.zeros(hi - lo)
        coeffs = rng.normal(0.0, amplitude, size=4)
        measures[lo:hi] = (
            coeffs[0]
            + coeffs[1] * t
            + coeffs[2] * t**2
            + coeffs[3] * t**3
            + rng.normal(0.0, noise, size=hi - lo)
        )
    measures = measures - measures.min() + 1.0
    return measures


def _make_strictly_increasing(sorted_keys: np.ndarray) -> np.ndarray:
    """Jitter a sorted key array so that all keys are strictly increasing."""
    keys = np.asarray(sorted_keys, dtype=np.float64).copy()
    if keys.size <= 1:
        return keys
    diffs = np.diff(keys)
    if np.all(diffs > 0):
        return keys
    # Spread duplicates by a tiny epsilon proportional to the key scale.
    scale = max(abs(keys[-1] - keys[0]), 1.0)
    eps = scale * 1e-9
    return keys + np.arange(keys.size, dtype=np.float64) * eps
