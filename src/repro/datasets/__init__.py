"""Dataset generators and loaders.

The paper evaluates on three real datasets (HKI stock ticks, TWEET latitudes,
OSM points).  Those raw files are not redistributable, so this package ships
synthetic generators that reproduce the *shape* properties the evaluation
depends on (see DESIGN.md section 3), plus simple CSV loaders for users who
have their own data.
"""

from .synthetic import (
    stock_index_walk,
    tweet_latitudes,
    osm_points,
    uniform_keys,
    zipf_keys,
    piecewise_smooth_measures,
)
from .loaders import load_keyed_csv, load_xy_csv
from .registry import DatasetSpec, get_dataset, list_datasets

__all__ = [
    "stock_index_walk",
    "tweet_latitudes",
    "osm_points",
    "uniform_keys",
    "zipf_keys",
    "piecewise_smooth_measures",
    "load_keyed_csv",
    "load_xy_csv",
    "DatasetSpec",
    "get_dataset",
    "list_datasets",
]
