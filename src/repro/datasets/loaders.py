"""CSV loaders for user-provided datasets.

The paper uses raw CSV exports (Dukascopy ticks, tweet dumps, OSM extracts).
These helpers load equivalent files: a (key, measure) file for one-key
workloads and an (x, y) file for two-key workloads.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..errors import DataError

__all__ = ["load_keyed_csv", "load_xy_csv"]


def load_keyed_csv(
    path: str | Path,
    key_column: int = 0,
    measure_column: int = 1,
    *,
    has_header: bool = True,
    delimiter: str = ",",
    sort: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Load a (key, measure) dataset from a delimited text file.

    Parameters
    ----------
    path:
        File to read.
    key_column, measure_column:
        Zero-based column indices of the key and the measure.
    has_header:
        Skip the first row when True.
    delimiter:
        Field delimiter.
    sort:
        Sort records by key (required by all index builders).

    Returns
    -------
    keys, measures:
        Float64 arrays of equal length.
    """
    keys: list[float] = []
    measures: list[float] = []
    path = Path(path)
    if not path.exists():
        raise DataError(f"dataset file not found: {path}")
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for row_number, row in enumerate(reader):
            if has_header and row_number == 0:
                continue
            if not row:
                continue
            try:
                keys.append(float(row[key_column]))
                measures.append(float(row[measure_column]))
            except (IndexError, ValueError) as exc:
                raise DataError(
                    f"bad row {row_number} in {path}: {row!r}"
                ) from exc
    if not keys:
        raise DataError(f"no records loaded from {path}")
    key_array = np.asarray(keys, dtype=np.float64)
    measure_array = np.asarray(measures, dtype=np.float64)
    if sort:
        order = np.argsort(key_array, kind="stable")
        key_array = key_array[order]
        measure_array = measure_array[order]
    return key_array, measure_array


def load_xy_csv(
    path: str | Path,
    x_column: int = 0,
    y_column: int = 1,
    *,
    has_header: bool = True,
    delimiter: str = ",",
) -> tuple[np.ndarray, np.ndarray]:
    """Load a two-key (x, y) point set from a delimited text file."""
    xs: list[float] = []
    ys: list[float] = []
    path = Path(path)
    if not path.exists():
        raise DataError(f"dataset file not found: {path}")
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for row_number, row in enumerate(reader):
            if has_header and row_number == 0:
                continue
            if not row:
                continue
            try:
                xs.append(float(row[x_column]))
                ys.append(float(row[y_column]))
            except (IndexError, ValueError) as exc:
                raise DataError(
                    f"bad row {row_number} in {path}: {row!r}"
                ) from exc
    if not xs:
        raise DataError(f"no records loaded from {path}")
    return np.asarray(xs, dtype=np.float64), np.asarray(ys, dtype=np.float64)
