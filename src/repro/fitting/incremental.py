"""Incremental (online) minimax fitting for degree 0 and 1.

The LP of Equation 9 is overkill for the degrees the paper actually evaluates
most: a degree-0 minimax fit is just the running midrange, and the degree-1
minimax fit has a closed geometric characterization — the optimal line is the
center line of the narrowest *vertical* strip containing the points, which is
determined entirely by the upper and lower convex hulls of the point set.
Both hulls grow by amortized O(1) work per appended point when points arrive
in key order (Andrew's monotone chain), which is exactly the access pattern of
Greedy Segmentation.  This module provides:

* :class:`IncrementalConstantFitter` / :class:`IncrementalLinearFitter` —
  append points one at a time, read off the *exact* minimax error (and, for
  the linear fitter, the optimal line) at any moment.  The linear fitter
  computes the optimum with a rotating-calipers sweep over the two hulls:
  the minimum vertical width of the hull pair is attained at a slope equal
  to some hull edge, so merging the two (sorted) edge-slope sequences and
  evaluating the convex width function at each breakpoint finds it in
  O(hull) time.
* :class:`CorridorScanner` / :func:`longest_feasible_prefix` — the one-pass
  exact feasibility scanner used by GS for degree 1: maintain the corridor of
  lines that stay within ``delta`` of every appended point (the classic
  online convex-hull / slope corridor construction also used by
  FITing-tree-style PLA and the PGM index), and stop at the first point that
  empties it.  Amortized O(1) per point, and *exact*: a prefix is accepted
  iff some line fits it within ``delta``, which by Lemma 1 is the same
  predicate the per-prefix LP evaluates — so GS boundaries are identical
  with zero LP solves.  The scanner's corridor state survives between
  :meth:`CorridorScanner.extend` calls, which is what lets the streaming
  write path (:mod:`repro.stream`) re-segment an appended tail by *resuming*
  the open last segment instead of re-scanning it from its start.
* :func:`fit_incremental_polynomial` — drop-in counterpart of
  :func:`repro.fitting.minimax.fit_minimax_polynomial` for ``degree <= 1``.

Duplicate keys are supported by the fitters (the hulls keep the extreme value
per key); the feasibility scanner requires strictly increasing keys and the
segmentation layer falls back to per-prefix incremental fits when the input
contains ties.
"""

from __future__ import annotations

import numpy as np

from ..errors import FittingError
from .minimax import MinimaxFit, _achieved_error, _scaling, _validate_points
from .polynomial import Polynomial1D

__all__ = [
    "CorridorScanner",
    "IncrementalConstantFitter",
    "IncrementalLinearFitter",
    "fit_incremental_polynomial",
    "longest_feasible_prefix",
]


class IncrementalConstantFitter:
    """Exact online minimax fit of degree 0: the running midrange.

    ``append`` is O(1); the minimax constant of a point set is
    ``(max + min) / 2`` with error ``(max - min) / 2``, so ``error`` and the
    feasibility probe ``error_with`` are closed form.
    """

    __slots__ = ("_min", "_max", "_count")

    def __init__(self) -> None:
        self._min = np.inf
        self._max = -np.inf
        self._count = 0

    @property
    def num_points(self) -> int:
        """Number of appended points."""
        return self._count

    def append(self, x: float, y: float) -> None:
        """Add one point; keys may arrive in any order for degree 0."""
        if y < self._min:
            self._min = y
        if y > self._max:
            self._max = y
        self._count += 1

    def error(self) -> float:
        """Exact minimax error of the appended points."""
        if self._count == 0:
            return 0.0
        return (self._max - self._min) / 2.0

    def error_with(self, y: float) -> float:
        """Minimax error *if* a point with value ``y`` were appended."""
        if self._count == 0:
            return 0.0
        return (max(self._max, y) - min(self._min, y)) / 2.0


def _append_upper(hx: list, hy: list, x: float, y: float) -> None:
    """Append to the upper hull (cap: clockwise turns, slopes decreasing)."""
    if hx and x == hx[-1]:
        if y <= hy[-1]:
            return
        hx.pop()
        hy.pop()
    while len(hx) >= 2:
        ox = hx[-2]
        oy = hy[-2]
        if (hx[-1] - ox) * (y - oy) - (hy[-1] - oy) * (x - ox) >= 0.0:
            hx.pop()
            hy.pop()
        else:
            break
    hx.append(x)
    hy.append(y)


def _append_lower(hx: list, hy: list, x: float, y: float) -> None:
    """Append to the lower hull (cup: counter-clockwise turns, slopes increasing)."""
    if hx and x == hx[-1]:
        if y >= hy[-1]:
            return
        hx.pop()
        hy.pop()
    while len(hx) >= 2:
        ox = hx[-2]
        oy = hy[-2]
        if (hx[-1] - ox) * (y - oy) - (hy[-1] - oy) * (x - ox) <= 0.0:
            hx.pop()
            hy.pop()
        else:
            break
    hx.append(x)
    hy.append(y)


def _minimax_line(ux: list, uy: list, lx: list, ly: list) -> tuple[float, float, float]:
    """Optimal minimax line over the hull pair via rotating calipers.

    Minimizes the convex piecewise-linear width ``f(a) = g(a) - h(a)`` where
    ``g(a) = max_i (y_i - a x_i)`` walks the upper hull left-to-right as the
    slope ``a`` decreases and ``h(a) = min_i (y_i - a x_i)`` walks the lower
    hull right-to-left.  The minimum of a convex piecewise-linear function is
    attained at a breakpoint, and the breakpoints are exactly the hull edge
    slopes, so one merge of the two sorted slope sequences suffices.

    Returns ``(slope, intercept, error)`` with ``error`` the exact minimax
    error; the line is ``y = slope * x + intercept``.
    """
    if ux[-1] == ux[0] and lx[-1] == lx[0]:
        # Single distinct key: any slope works; pick the horizontal midline.
        top, bottom = uy[0], ly[0]
        return 0.0, (top + bottom) / 2.0, (top - bottom) / 2.0

    i = 0
    j = len(lx) - 1
    nu = len(ux)
    best_f = np.inf
    best_a = 0.0
    best_i = 0
    best_j = j
    while i < nu - 1 or j > 0:
        su = (uy[i + 1] - uy[i]) / (ux[i + 1] - ux[i]) if i < nu - 1 else -np.inf
        sl = (ly[j] - ly[j - 1]) / (lx[j] - lx[j - 1]) if j > 0 else -np.inf
        a = su if su >= sl else sl
        # Width in *difference form*: evaluating (uy - a*ux) - (ly - a*lx)
        # directly cancels catastrophically at steep candidate slopes (a*x
        # dwarfs the coordinates when scaled keys nearly coincide), which can
        # crown the wrong breakpoint; (uy - ly) and (ux - lx) are each
        # computed accurately first, so the product stays trustworthy.
        f = (uy[i] - ly[j]) - a * (ux[i] - lx[j])
        if f < best_f:
            best_f, best_a, best_i, best_j = f, a, i, j
        if su == a and i < nu - 1:
            i += 1
        if sl == a and j > 0:
            j -= 1
    intercept = (
        (uy[best_i] + ly[best_j]) - best_a * (ux[best_i] + lx[best_j])
    ) / 2.0
    return best_a, intercept, max(best_f / 2.0, 0.0)


class IncrementalLinearFitter:
    """Exact online minimax fit of degree 1 via incremental convex hulls.

    Points must arrive with non-decreasing keys (duplicates allowed).  The
    hulls are maintained with amortized O(1) work per append; :meth:`error`
    and :meth:`solve` run a rotating-calipers sweep in O(hull size).

    Coordinates are shifted by the first appended point before any cross
    product, so hull predicates stay well conditioned for real-world keys
    (timestamps) and cumulative values in the millions.
    """

    __slots__ = ("_ux", "_uy", "_lx", "_ly", "_x0", "_y0", "_count", "_last_x")

    def __init__(self) -> None:
        self._ux: list = []
        self._uy: list = []
        self._lx: list = []
        self._ly: list = []
        self._x0 = 0.0
        self._y0 = 0.0
        self._count = 0
        self._last_x = -np.inf

    @property
    def num_points(self) -> int:
        """Number of appended points."""
        return self._count

    def append(self, x: float, y: float) -> None:
        """Add one point; keys must be non-decreasing."""
        if self._count == 0:
            self._x0 = x
            self._y0 = y
        elif x < self._last_x:
            raise FittingError("incremental linear fitter requires sorted keys")
        self._last_x = x
        sx = x - self._x0
        sy = y - self._y0
        _append_upper(self._ux, self._uy, sx, sy)
        _append_lower(self._lx, self._ly, sx, sy)
        self._count += 1

    def error(self) -> float:
        """Exact minimax error of the best line through the appended points."""
        if self._count == 0:
            return 0.0
        return _minimax_line(self._ux, self._uy, self._lx, self._ly)[2]

    def solve(self) -> tuple[float, float, float]:
        """The optimal line and its exact error: ``(slope, intercept, error)``.

        Coordinates are the caller's input space (the conditioning shift is
        undone): the line is ``y = slope * x + intercept``.
        """
        if self._count == 0:
            raise FittingError("cannot fit an empty point set")
        a, b, err = _minimax_line(self._ux, self._uy, self._lx, self._ly)
        # Undo the conditioning shift: y = a * (x - x0) + b + y0.
        return a, b + self._y0 - a * self._x0, err


def fit_incremental_polynomial(
    keys: np.ndarray,
    values: np.ndarray,
    degree: int,
    *,
    rescale: bool = True,
) -> MinimaxFit:
    """Exact minimax fit for ``degree <= 1`` without solving an LP.

    Accepts the same inputs as :func:`~repro.fitting.minimax.fit_minimax_polynomial`
    (keys need not be sorted; duplicates are fine) and reports the same
    never-optimistic error convention: the maximum of the closed-form minimax
    error and the achieved residual under Horner evaluation.
    """
    if degree not in (0, 1):
        raise FittingError(
            f"incremental solver supports degree 0 and 1, got degree {degree}"
        )
    keys, values = _validate_points(keys, values)
    if degree == 0:
        # The whole point set is in hand, so the running midrange collapses
        # to two vectorized reductions.
        low = float(values.min())
        high = float(values.max())
        shift, scale = _scaling(keys) if rescale else (0.0, 1.0)
        poly = Polynomial1D(np.array([(high + low) / 2.0]), shift, scale)
        fit = MinimaxFit(polynomial=poly, max_error=(high - low) / 2.0)
    else:
        if keys.size > 1 and np.any(np.diff(keys) < 0):
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            values = values[order]
        # Fit in the standard scaled basis: hull slopes in raw key space can
        # overflow double precision (e.g. subnormal key spans), while the LP
        # path never sees them because its design matrix is scaled.  Working
        # on the scaled keys makes the caliper line *be* the scaled-basis
        # coefficients, so the degenerate-span behavior matches the LP's.
        shift, scale = _scaling(keys) if rescale else (0.0, 1.0)
        t = (keys - shift) / scale
        fitter = IncrementalLinearFitter()
        for x, y in zip(t.tolist(), values.tolist()):
            fitter.append(x, y)
        slope, intercept, err = fitter.solve()
        poly = Polynomial1D(np.array([intercept, slope]), shift, scale)
        fit = MinimaxFit(polynomial=poly, max_error=err)
    achieved = _achieved_error(fit.polynomial, keys, values)
    if achieved > fit.max_error:
        fit = MinimaxFit(polynomial=fit.polynomial, max_error=achieved)
    return fit


class CorridorScanner:
    """Resumable exact feasibility scanner for one degree-1 segment.

    Holds the slope-corridor state of :func:`longest_feasible_prefix` between
    calls: a line ``y = a x + b`` fits every scanned point within ``delta``
    iff it passes through all vertical "tube" segments
    ``[y_i - delta, y_i + delta]``, and the corridor of such lines is
    maintained through two structures:

    * the extreme feasible slopes, each realized by a pivot pair — the
      max-slope line through a point of the *upper hull of the lower tube*
      and a point of the *lower hull of the upper tube* (and symmetrically
      for the min slope);
    * those two hulls themselves, pruned from the left as the pivots advance
      (a pivot never moves back), which is what makes the whole scan
      amortized O(1) per point.

    A new point is infeasible exactly when its upper tube end falls below the
    min-slope line or its lower tube end rises above the max-slope line.

    :meth:`extend` feeds a range of points and returns on the first
    infeasible one; because the corridor survives between calls, a caller
    that later obtains *more* points (the streaming write path appending to
    the open last segment) resumes exactly where the previous scan stopped
    instead of re-scanning the accepted prefix.  Keys must be strictly
    increasing across everything a single scanner ever sees.
    """

    __slots__ = (
        "delta", "_stage", "_alive", "_x0", "_y0",
        "_r0x", "_r0y", "_r1x", "_r1y", "_r2x", "_r2y", "_r3x", "_r3y",
        "_upper", "_lower", "_u0", "_l0",
    )

    def __init__(self, delta: float) -> None:
        self.delta = float(delta)
        # Stage 0: no point seen; 1: one point seen; 2: corridor live.
        self._stage = 0
        self._alive = True

    @property
    def alive(self) -> bool:
        """False once an extend hit an infeasible point (scanner is spent)."""
        return self._alive

    def extend(self, ks: list, vs: list, start: int, stop_limit: int) -> int:
        """Scan ``ks[start:stop_limit]``; return the first infeasible index.

        Parameters are plain Python lists (``ndarray.tolist()``) because the
        scan is a per-element loop: float list access is several times faster
        than numpy scalar indexing.  Returns ``stop_limit`` when every point
        fits (the corridor state is retained, so a later ``extend`` resumes);
        otherwise returns the index of the first point that empties the
        corridor and marks the scanner dead — the accepted prefix is
        everything scanned before that index.
        """
        if not self._alive:
            raise FittingError("corridor scanner already hit an infeasible point")
        delta = self.delta
        i = start
        n = stop_limit
        if self._stage == 0:
            if i >= n:
                return n
            self._x0 = ks[i]
            self._y0 = vs[i]
            self._stage = 1
            i += 1
        if self._stage == 1:
            if i >= n:
                return n
            # First two points: always feasible, initialize the corridor.
            x0 = self._x0
            y0 = self._y0
            x1 = ks[i]
            y1 = vs[i]
            # Rectangle pivots: (r0, r2) span the min-slope line (upper tube
            # left, lower tube right), (r1, r3) the max-slope line (lower
            # tube left, upper tube right).
            self._r0x, self._r0y = x0, y0 + delta
            self._r1x, self._r1y = x0, y0 - delta
            self._r2x, self._r2y = x1, y1 - delta
            self._r3x, self._r3y = x1, y1 + delta
            # upper: lower convex hull of the upper tube points (candidates
            # for r0); lower: upper convex hull of the lower tube points
            # (candidates for r1).
            self._upper = [(self._r0x, self._r0y), (self._r3x, self._r3y)]
            self._lower = [(self._r1x, self._r1y), (self._r2x, self._r2y)]
            self._u0 = 0
            self._l0 = 0
            self._stage = 2
            i += 1
        if i >= n:
            return n
        r0x = self._r0x
        r0y = self._r0y
        r1x = self._r1x
        r1y = self._r1y
        r2x = self._r2x
        r2y = self._r2y
        r3x = self._r3x
        r3y = self._r3y
        upper = self._upper
        lower = self._lower
        u0 = self._u0
        l0 = self._l0
        stop = n
        while i < n:
            x = ks[i]
            y = vs[i]
            p1y = y + delta
            p2y = y - delta
            s1dx = r2x - r0x
            s1dy = r2y - r0y
            s2dx = r3x - r1x
            s2dy = r3y - r1y
            # Infeasible: upper tube end below the min-slope line, or lower
            # tube end above the max-slope line.
            if (p1y - r2y) * s1dx < s1dy * (x - r2x) or (p2y - r3y) * s2dx > s2dy * (x - r3x):
                self._alive = False
                stop = i
                break
            # The new upper tube end tightens the max-slope line.
            if (p1y - r1y) * s2dx < s2dy * (x - r1x):
                k = l0
                bx, by = lower[k]
                mdx = bx - x
                mdy = by - p1y
                for k2 in range(k + 1, len(lower)):
                    cx, cy = lower[k2]
                    vdx = cx - x
                    vdy = cy - p1y
                    if vdy * mdx > mdy * vdx:
                        break
                    mdx, mdy, k = vdx, vdy, k2
                r1x, r1y = lower[k]
                r3x, r3y = x, p1y
                l0 = k
                end = len(upper)
                while end >= u0 + 2:
                    ox, oy = upper[end - 2]
                    ax, ay = upper[end - 1]
                    if (ax - ox) * (p1y - oy) - (ay - oy) * (x - ox) <= 0.0:
                        end -= 1
                    else:
                        break
                del upper[end:]
                upper.append((x, p1y))
            # The new lower tube end tightens the min-slope line.
            if (p2y - r0y) * s1dx > s1dy * (x - r0x):
                k = u0
                bx, by = upper[k]
                mdx = bx - x
                mdy = by - p2y
                for k2 in range(k + 1, len(upper)):
                    cx, cy = upper[k2]
                    vdx = cx - x
                    vdy = cy - p2y
                    if vdy * mdx < mdy * vdx:
                        break
                    mdx, mdy, k = vdx, vdy, k2
                r0x, r0y = upper[k]
                r2x, r2y = x, p2y
                u0 = k
                end = len(lower)
                while end >= l0 + 2:
                    ox, oy = lower[end - 2]
                    ax, ay = lower[end - 1]
                    if (ax - ox) * (p2y - oy) - (ay - oy) * (x - ox) >= 0.0:
                        end -= 1
                    else:
                        break
                del lower[end:]
                lower.append((x, p2y))
            i += 1
        self._r0x = r0x
        self._r0y = r0y
        self._r1x = r1x
        self._r1y = r1y
        self._r2x = r2x
        self._r2y = r2y
        self._r3x = r3x
        self._r3y = r3y
        self._u0 = u0
        self._l0 = l0
        return stop


def longest_feasible_prefix(
    ks: list, vs: list, start: int, stop_limit: int, delta: float
) -> int:
    """First index past ``start`` whose prefix admits *no* line within ``delta``.

    One-shot wrapper over :class:`CorridorScanner` — exact online feasibility
    for degree 1.  Keys must be strictly increasing on ``[start, stop_limit)``.

    Returns the exclusive stop of the longest feasible prefix; the prefix
    ``[start, stop)`` satisfies the bounded ``delta``-error constraint and
    ``stop == stop_limit`` when the whole remainder fits.
    """
    return CorridorScanner(delta).extend(ks, vs, start, stop_limit)
