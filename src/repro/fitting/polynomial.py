"""Polynomial representations used by PolyFit segments and surfaces.

Segments store their polynomial in a *scaled* basis: keys are affinely mapped
to ``[-1, 1]`` over the segment's key span before evaluation.  This keeps the
Vandermonde systems well conditioned for real-world keys (timestamps in the
hundreds of thousands raised to the 3rd or 4th power overflow double precision
precision budgets quickly).  The scaling is part of the polynomial object, so
callers always evaluate in raw key space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import FittingError, QueryError

__all__ = ["Polynomial1D", "Polynomial2D", "PolynomialBank", "SurfaceBank"]


@dataclass(frozen=True)
class Polynomial1D:
    """A univariate polynomial with an affine input scaling.

    The value at a raw key ``k`` is ``sum_j coeffs[j] * t**j`` where
    ``t = (k - shift) / scale``.

    Attributes
    ----------
    coeffs:
        Coefficients in increasing-degree order (length ``degree + 1``).
    shift, scale:
        Affine input mapping; ``scale`` must be positive.
    """

    coeffs: np.ndarray
    shift: float = 0.0
    scale: float = 1.0

    def __post_init__(self) -> None:
        coeffs = np.atleast_1d(np.asarray(self.coeffs, dtype=np.float64))
        if coeffs.ndim != 1 or coeffs.size == 0:
            raise FittingError("coefficients must be a non-empty 1-D array")
        if not np.all(np.isfinite(coeffs)):
            raise FittingError("coefficients contain NaN or infinite values")
        if self.scale <= 0:
            raise FittingError(f"scale must be positive, got {self.scale}")
        object.__setattr__(self, "coeffs", coeffs)
        object.__setattr__(self, "_coeff_list", [float(c) for c in coeffs])

    @property
    def degree(self) -> int:
        """Degree of the polynomial (number of coefficients minus one)."""
        return int(self.coeffs.size - 1)

    def _to_local(self, k: np.ndarray | float) -> np.ndarray | float:
        return (np.asarray(k, dtype=np.float64) - self.shift) / self.scale

    def __call__(self, k: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the polynomial at raw key(s) ``k`` (Horner's scheme).

        Scalar inputs take a pure-Python fast path: query-time evaluations are
        single keys, and plain float arithmetic avoids per-call numpy
        dispatch overhead without changing the result.
        """
        if isinstance(k, (int, float)):
            t = (float(k) - self.shift) / self.scale
            result = 0.0
            for coefficient in self._coeff_list[::-1]:
                result = result * t + coefficient
            return result
        t = self._to_local(k)
        result = np.zeros_like(t, dtype=np.float64)
        for coefficient in self.coeffs[::-1]:
            result = result * t + coefficient
        if np.isscalar(k) or np.ndim(k) == 0:
            return float(result)
        return result

    def derivative(self) -> "Polynomial1D":
        """Return the derivative with respect to the *raw* key.

        The chain rule contributes a factor ``1/scale``; the returned
        polynomial keeps the same input scaling.
        """
        if self.degree == 0:
            return Polynomial1D(np.zeros(1), self.shift, self.scale)
        powers = np.arange(1, self.coeffs.size, dtype=np.float64)
        deriv = self.coeffs[1:] * powers / self.scale
        return Polynomial1D(deriv, self.shift, self.scale)

    def extreme_on(self, low: float, high: float, maximize: bool = True) -> tuple[float, float]:
        """Closed-form constrained extremum on ``[low, high]`` (Equation 17).

        Candidate points are the interval endpoints plus the real roots of
        the derivative that fall inside the interval; the best candidate and
        its value are returned.

        Returns
        -------
        (argbest, best):
            The key achieving the extremum and the polynomial value there.
        """
        if high < low:
            raise QueryError(f"invalid interval [{low}, {high}]")
        candidates = [low, high]
        deriv = self.derivative()
        # Roots of the derivative in local coordinates.  Coefficients are
        # normalized before the companion-matrix root solve and tiny leading
        # terms are trimmed, which keeps the computation finite for extreme
        # coefficient magnitudes.
        dcoeffs = deriv.coeffs
        magnitude = float(np.max(np.abs(dcoeffs))) if dcoeffs.size else 0.0
        if magnitude > 0 and dcoeffs.size > 1:
            normalized = dcoeffs / magnitude
            significant = np.nonzero(np.abs(normalized) > 1e-14)[0]
            if significant.size > 0:
                trimmed = normalized[: significant[-1] + 1]
                if trimmed.size > 1:
                    with np.errstate(all="ignore"):
                        roots = np.roots(trimmed[::-1])
                    real_roots = roots[np.isfinite(roots) & (np.abs(roots.imag) < 1e-9)].real
                    raw_roots = real_roots * self.scale + self.shift
                    for root in raw_roots:
                        if np.isfinite(root) and low <= root <= high:
                            candidates.append(float(root))
        values = np.array([self(c) for c in candidates])
        best_index = int(np.argmax(values)) if maximize else int(np.argmin(values))
        return candidates[best_index], float(values[best_index])

    def to_dict(self) -> dict:
        """Serialize to plain Python types (for JSON round-tripping)."""
        return {
            "coeffs": self.coeffs.tolist(),
            "shift": float(self.shift),
            "scale": float(self.scale),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Polynomial1D":
        """Inverse of :meth:`to_dict`."""
        return cls(
            coeffs=np.asarray(payload["coeffs"], dtype=np.float64),
            shift=float(payload["shift"]),
            scale=float(payload["scale"]),
        )

    @property
    def num_parameters(self) -> int:
        """Number of stored float parameters (coefficients + scaling)."""
        return self.coeffs.size + 2


class PolynomialBank:
    """Flat coefficient-matrix layout over a family of :class:`Polynomial1D`.

    Stores all coefficients of ``h`` polynomials in one contiguous
    ``(h, width)`` matrix (rows zero-padded up to the largest degree) plus
    ``(h,)`` shift/scale vectors, so a batch of evaluations — one polynomial
    row per input key — runs as a single vectorized Horner recurrence over the
    matrix columns instead of ``h`` Python-level calls.  This is the flat
    array layout learned indexes (RMI, FITing-tree) use to reach their query
    throughput, applied to PolyFit's per-segment polynomials.
    """

    __slots__ = ("_coeffs", "_shifts", "_scales")

    def __init__(self, coeffs: np.ndarray, shifts: np.ndarray, scales: np.ndarray) -> None:
        coeffs = np.ascontiguousarray(coeffs, dtype=np.float64)
        shifts = np.ascontiguousarray(shifts, dtype=np.float64)
        scales = np.ascontiguousarray(scales, dtype=np.float64)
        if coeffs.ndim != 2 or coeffs.shape[1] == 0:
            raise FittingError("coefficient matrix must be 2-D with at least one column")
        if shifts.shape != (coeffs.shape[0],) or scales.shape != (coeffs.shape[0],):
            raise FittingError("shifts/scales must have one entry per polynomial row")
        if not np.all(np.isfinite(coeffs)):
            raise FittingError("coefficient matrix contains NaN or infinite values")
        if np.any(scales <= 0):
            raise FittingError("scales must be positive")
        self._coeffs = coeffs
        self._shifts = shifts
        self._scales = scales

    @classmethod
    def from_polynomials(cls, polynomials: Sequence[Polynomial1D]) -> "PolynomialBank":
        """Pack polynomials (possibly of mixed degree) into one flat matrix."""
        if not polynomials:
            raise FittingError("cannot build a bank from zero polynomials")
        width = max(polynomial.coeffs.size for polynomial in polynomials)
        coeffs = np.zeros((len(polynomials), width), dtype=np.float64)
        shifts = np.empty(len(polynomials), dtype=np.float64)
        scales = np.empty(len(polynomials), dtype=np.float64)
        for row, polynomial in enumerate(polynomials):
            coeffs[row, : polynomial.coeffs.size] = polynomial.coeffs
            shifts[row] = polynomial.shift
            scales[row] = polynomial.scale
        return cls(coeffs=coeffs, shifts=shifts, scales=scales)

    @property
    def num_polynomials(self) -> int:
        """Number of rows (polynomials) in the bank."""
        return int(self._coeffs.shape[0])

    @property
    def width(self) -> int:
        """Columns of the coefficient matrix (max degree + 1)."""
        return int(self._coeffs.shape[1])

    @property
    def coeffs(self) -> np.ndarray:
        """The ``(h, width)`` coefficient matrix (read-only view)."""
        view = self._coeffs.view()
        view.flags.writeable = False
        return view

    @property
    def shifts(self) -> np.ndarray:
        """The ``(h,)`` per-row input shifts (read-only view)."""
        view = self._shifts.view()
        view.flags.writeable = False
        return view

    @property
    def scales(self) -> np.ndarray:
        """The ``(h,)`` per-row input scales (read-only view)."""
        view = self._scales.view()
        view.flags.writeable = False
        return view

    def evaluate(self, rows: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Evaluate ``polynomial[rows[i]](keys[i])`` for all ``i`` at once.

        A single Horner recurrence over the gathered coefficient rows: for N
        keys this costs ``width`` fused multiply-adds over length-N arrays —
        O(1) NumPy calls regardless of N.  Zero padding in high-order columns
        is harmless because Horner starts from the highest column.
        """
        rows = np.asarray(rows, dtype=np.intp)
        keys = np.asarray(keys, dtype=np.float64)
        if rows.shape != keys.shape:
            raise QueryError("rows and keys must have matching shapes")
        if rows.size and (rows.min() < 0 or rows.max() >= self.num_polynomials):
            raise QueryError("polynomial row index out of range")
        gathered = self._coeffs[rows]  # (N, width)
        t = (keys - self._shifts[rows]) / self._scales[rows]
        result = gathered[..., -1].copy()
        for column in range(self.width - 2, -1, -1):
            result = result * t + gathered[..., column]
        return result

    def size_in_bytes(self) -> int:
        """Footprint of the flat arrays."""
        return int(self._coeffs.nbytes + self._shifts.nbytes + self._scales.nbytes)


def _total_degree_terms(degree: int) -> list[tuple[int, int]]:
    """Exponent pairs (i, j) with ``i + j <= degree``, in a fixed order."""
    return [(i, j) for total in range(degree + 1) for i in range(total + 1) for j in [total - i]]


@dataclass(frozen=True)
class Polynomial2D:
    """A bivariate polynomial of bounded total degree with input scaling.

    The value at raw coordinates ``(u, v)`` is ``sum a_ij * s**i * t**j`` over
    all exponent pairs with ``i + j <= degree``, where ``s`` and ``t`` are the
    affinely scaled coordinates.

    Attributes
    ----------
    coeffs:
        Coefficients in the order produced by :func:`_total_degree_terms`.
    degree:
        Total degree bound.
    shift_u, scale_u, shift_v, scale_v:
        Per-axis affine input mapping.
    """

    coeffs: np.ndarray
    degree: int
    shift_u: float = 0.0
    scale_u: float = 1.0
    shift_v: float = 0.0
    scale_v: float = 1.0

    def __post_init__(self) -> None:
        coeffs = np.atleast_1d(np.asarray(self.coeffs, dtype=np.float64))
        expected = len(_total_degree_terms(self.degree))
        if coeffs.size != expected:
            raise FittingError(
                f"expected {expected} coefficients for total degree {self.degree}, got {coeffs.size}"
            )
        if not np.all(np.isfinite(coeffs)):
            raise FittingError("coefficients contain NaN or infinite values")
        if self.scale_u <= 0 or self.scale_v <= 0:
            raise FittingError("scales must be positive")
        object.__setattr__(self, "coeffs", coeffs)
        object.__setattr__(self, "_coeff_list", [float(c) for c in coeffs])
        object.__setattr__(self, "_term_list", _total_degree_terms(self.degree))

    @property
    def terms(self) -> list[tuple[int, int]]:
        """The exponent pairs, aligned with :attr:`coeffs`."""
        return _total_degree_terms(self.degree)

    def design_matrix(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vandermonde-style design matrix for scaled coordinates."""
        s = (np.asarray(us, dtype=np.float64) - self.shift_u) / self.scale_u
        t = (np.asarray(vs, dtype=np.float64) - self.shift_v) / self.scale_v
        columns = [s**i * t**j for i, j in self.terms]
        return np.column_stack(columns)

    def __call__(self, u: np.ndarray | float, v: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the surface at raw coordinates ``(u, v)``.

        Scalar inputs take a pure-Python fast path (query-time corner
        evaluations are single points); array inputs go through the design
        matrix.
        """
        if isinstance(u, (int, float)) and isinstance(v, (int, float)):
            s = (float(u) - self.shift_u) / self.scale_u
            t = (float(v) - self.shift_v) / self.scale_v
            total = 0.0
            for coefficient, (i, j) in zip(self._coeff_list, self._term_list):
                total += coefficient * (s**i) * (t**j)
            return total
        scalar = np.isscalar(u) and np.isscalar(v)
        us = np.atleast_1d(np.asarray(u, dtype=np.float64))
        vs = np.atleast_1d(np.asarray(v, dtype=np.float64))
        values = self.design_matrix(us, vs) @ self.coeffs
        if scalar:
            return float(values[0])
        return values

    def to_dict(self) -> dict:
        """Serialize to plain Python types."""
        return {
            "coeffs": self.coeffs.tolist(),
            "degree": int(self.degree),
            "shift_u": float(self.shift_u),
            "scale_u": float(self.scale_u),
            "shift_v": float(self.shift_v),
            "scale_v": float(self.scale_v),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Polynomial2D":
        """Inverse of :meth:`to_dict`."""
        return cls(
            coeffs=np.asarray(payload["coeffs"], dtype=np.float64),
            degree=int(payload["degree"]),
            shift_u=float(payload["shift_u"]),
            scale_u=float(payload["scale_u"]),
            shift_v=float(payload["shift_v"]),
            scale_v=float(payload["scale_v"]),
        )

    @property
    def num_parameters(self) -> int:
        """Number of stored float parameters (coefficients + scaling)."""
        return self.coeffs.size + 4


class SurfaceBank:
    """Flat coefficient-tensor layout over a family of :class:`Polynomial2D`.

    The bivariate analogue of :class:`PolynomialBank`: coefficients of ``h``
    surfaces live in one contiguous ``(h, width, width)`` tensor where entry
    ``[r, i, j]`` multiplies ``s**i * t**j`` (zero where ``i + j`` exceeds the
    surface's total degree), plus per-row shift/scale vectors for both axes.
    A batch of evaluations — one surface row per input point — runs as a
    nested Horner recurrence over the gathered tensor rows: ``width**2`` fused
    multiply-adds over length-N arrays, O(1) NumPy calls regardless of N.

    Rows may be ``None`` (cells that answer exactly store no surface); such
    rows are zero-filled and must never be selected by :meth:`evaluate`.
    """

    __slots__ = ("_coeffs", "_shift_u", "_scale_u", "_shift_v", "_scale_v")

    def __init__(
        self,
        coeffs: np.ndarray,
        shift_u: np.ndarray,
        scale_u: np.ndarray,
        shift_v: np.ndarray,
        scale_v: np.ndarray,
    ) -> None:
        coeffs = np.ascontiguousarray(coeffs, dtype=np.float64)
        if coeffs.ndim != 3 or coeffs.shape[1] != coeffs.shape[2] or coeffs.shape[1] == 0:
            raise FittingError("coefficient tensor must be (h, width, width) with width >= 1")
        vectors = []
        for vector in (shift_u, scale_u, shift_v, scale_v):
            vector = np.ascontiguousarray(vector, dtype=np.float64)
            if vector.shape != (coeffs.shape[0],):
                raise FittingError("shift/scale vectors must have one entry per surface row")
            vectors.append(vector)
        if not np.all(np.isfinite(coeffs)):
            raise FittingError("coefficient tensor contains NaN or infinite values")
        if np.any(vectors[1] <= 0) or np.any(vectors[3] <= 0):
            raise FittingError("scales must be positive")
        self._coeffs = coeffs
        self._shift_u, self._scale_u, self._shift_v, self._scale_v = vectors

    @classmethod
    def from_surfaces(cls, surfaces: Sequence[Polynomial2D | None]) -> "SurfaceBank":
        """Pack surfaces (possibly of mixed degree, possibly absent) flat."""
        if not surfaces:
            raise FittingError("cannot build a bank from zero surfaces")
        width = max((s.degree + 1 for s in surfaces if s is not None), default=1)
        h = len(surfaces)
        coeffs = np.zeros((h, width, width), dtype=np.float64)
        shift_u = np.zeros(h, dtype=np.float64)
        scale_u = np.ones(h, dtype=np.float64)
        shift_v = np.zeros(h, dtype=np.float64)
        scale_v = np.ones(h, dtype=np.float64)
        for row, surface in enumerate(surfaces):
            if surface is None:
                continue
            for coefficient, (i, j) in zip(surface.coeffs, surface.terms):
                coeffs[row, i, j] = coefficient
            shift_u[row] = surface.shift_u
            scale_u[row] = surface.scale_u
            shift_v[row] = surface.shift_v
            scale_v[row] = surface.scale_v
        return cls(coeffs, shift_u, scale_u, shift_v, scale_v)

    @property
    def num_surfaces(self) -> int:
        """Number of rows (surfaces) in the bank."""
        return int(self._coeffs.shape[0])

    @property
    def width(self) -> int:
        """Per-axis width of the coefficient tensor (max total degree + 1)."""
        return int(self._coeffs.shape[1])

    @property
    def coeffs(self) -> np.ndarray:
        """The ``(h, width, width)`` coefficient tensor (read-only view)."""
        view = self._coeffs.view()
        view.flags.writeable = False
        return view

    def evaluate(self, rows: np.ndarray, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Evaluate ``surface[rows[i]](us[i], vs[i])`` for all ``i`` at once.

        Nested Horner: for every ``s`` power the inner recurrence collapses
        the ``t`` axis, then the outer recurrence collapses the ``s`` axis.
        Zero padding is harmless because Horner starts at the highest column.
        """
        rows = np.asarray(rows, dtype=np.intp)
        us = np.asarray(us, dtype=np.float64)
        vs = np.asarray(vs, dtype=np.float64)
        if rows.shape != us.shape or rows.shape != vs.shape:
            raise QueryError("rows, us and vs must have matching shapes")
        if rows.size and (rows.min() < 0 or rows.max() >= self.num_surfaces):
            raise QueryError("surface row index out of range")
        gathered = self._coeffs[rows]  # (N, width, width)
        s = (us - self._shift_u[rows]) / self._scale_u[rows]
        t = (vs - self._shift_v[rows]) / self._scale_v[rows]
        width = self.width
        result = np.zeros_like(s)
        for i in range(width - 1, -1, -1):
            inner = gathered[..., i, width - 1].copy()
            for j in range(width - 2, -1, -1):
                inner = inner * t + gathered[..., i, j]
            result = result * s + inner
        return result

    def size_in_bytes(self) -> int:
        """Footprint of the flat arrays."""
        return int(
            self._coeffs.nbytes
            + self._shift_u.nbytes
            + self._scale_u.nbytes
            + self._shift_v.nbytes
            + self._scale_v.nbytes
        )

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The flat arrays by field name (shared layout with the binary codec)."""
        return {
            "coeffs": self._coeffs,
            "shift_u": self._shift_u,
            "scale_u": self._scale_u,
            "shift_v": self._shift_v,
            "scale_v": self._scale_v,
        }

    @classmethod
    def from_arrays(cls, arrays: dict) -> "SurfaceBank":
        """Rebuild a bank directly from its flat arrays (inverse of :meth:`to_arrays`)."""
        return cls(
            coeffs=arrays["coeffs"],
            shift_u=arrays["shift_u"],
            scale_u=arrays["scale_u"],
            shift_v=arrays["shift_v"],
            scale_v=arrays["scale_v"],
        )

    def to_dict(self) -> dict:
        """Serialize the flat arrays to plain Python types."""
        return {
            "coeffs": self._coeffs.tolist(),
            "shift_u": self._shift_u.tolist(),
            "scale_u": self._scale_u.tolist(),
            "shift_v": self._shift_v.tolist(),
            "scale_v": self._scale_v.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SurfaceBank":
        """Inverse of :meth:`to_dict`."""
        return cls(
            coeffs=np.asarray(payload["coeffs"], dtype=np.float64),
            shift_u=np.asarray(payload["shift_u"], dtype=np.float64),
            scale_u=np.asarray(payload["scale_u"], dtype=np.float64),
            shift_v=np.asarray(payload["shift_v"], dtype=np.float64),
            scale_v=np.asarray(payload["scale_v"], dtype=np.float64),
        )
