"""Segmentation of a 1-D target function into error-bounded intervals.

Implements the paper's Greedy Segmentation (GS, Algorithm 1): grow an
interval point by point until its optimal minimax fit exceeds the budget
``delta``, emit the previous interval, and continue.  Because the minimax
error is monotone in the point set (Lemma 1), GS produces the minimum number
of segments (Theorem 1).

Construction is tiered by how the longest feasible prefix is located:

* **degree <= 1** — a single linear pass with zero solver calls: the exact
  online feasibility scanner of :mod:`repro.fitting.incremental` walks the
  points once per segment (amortized O(1) each) and the emitted polynomial is
  the closed-form hull optimum.  Boundaries are identical to the LP-per-probe
  method because both evaluate the same exact predicate "some degree-1
  polynomial fits the prefix within ``delta``".
* **degree >= 2** — exponential + binary search over the segment end (the
  paper's remark referencing unbounded search) with two accelerations: an
  *early-accept certificate* (re-evaluate the incumbent polynomial on just
  the extension; if its residual stays within ``delta`` the longer prefix is
  feasible with no solve at all) and the Remez-exchange solver in place of
  the per-probe LP (see :mod:`repro.fitting.minimax`).
* **Dynamic-programming optimum** (``dp_segmentation``): the quadratic
  reference algorithm; used in tests and the ablation bench to confirm that
  GS matches the optimal segment count.  It stores only the fits on the
  optimal parent chain — O(n) polynomials, not the O(n^2) cache of every
  feasible interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SegmentationError
from .incremental import (
    IncrementalConstantFitter,
    fit_incremental_polynomial,
    longest_feasible_prefix,
)
from .minimax import MinimaxFit, fit_minimax_polynomial
from .polynomial import Polynomial1D

__all__ = ["Segment", "greedy_segmentation", "dp_segmentation", "segment_count"]


@dataclass(frozen=True)
class Segment:
    """One fitted interval of the piecewise model.

    Attributes
    ----------
    key_low, key_high:
        The key span covered by the segment (inclusive on both ends).
    start, stop:
        Index range ``[start, stop)`` of the fitted points in the sampled
        target function.
    polynomial:
        The fitted :class:`Polynomial1D`.
    max_error:
        Achieved minimax error over the fitted points.
    """

    key_low: float
    key_high: float
    start: int
    stop: int
    polynomial: Polynomial1D
    max_error: float

    @property
    def num_points(self) -> int:
        """Number of fitted points."""
        return self.stop - self.start

    def covers(self, key: float) -> bool:
        """Whether ``key`` falls inside the segment's key span."""
        return self.key_low <= key <= self.key_high


def _validate_inputs(keys: np.ndarray, values: np.ndarray, delta: float, degree: int) -> None:
    if keys.ndim != 1 or values.ndim != 1:
        raise SegmentationError("keys and values must be 1-D arrays")
    if keys.size == 0:
        raise SegmentationError("cannot segment an empty point set")
    if keys.size != values.size:
        raise SegmentationError("keys and values must have equal length")
    if np.any(np.diff(keys) < 0):
        raise SegmentationError("keys must be sorted ascending")
    if delta < 0:
        raise SegmentationError("delta must be non-negative")
    if degree < 0:
        raise SegmentationError("degree must be non-negative")


def _make_segment(
    keys: np.ndarray, start: int, stop: int, fit: MinimaxFit
) -> Segment:
    return Segment(
        key_low=float(keys[start]),
        key_high=float(keys[stop - 1]),
        start=start,
        stop=stop,
        polynomial=fit.polynomial,
        max_error=fit.max_error,
    )


def greedy_segmentation(
    keys: np.ndarray,
    values: np.ndarray,
    delta: float,
    degree: int,
    *,
    use_exponential_search: bool = True,
    solver: str = "auto",
    early_accept: bool = True,
) -> list[Segment]:
    """Greedy Segmentation (GS, Algorithm 1) of the sampled function.

    Parameters
    ----------
    keys, values:
        Sampled target function, keys sorted ascending.
    delta:
        Bounded delta-error constraint per segment (Definition 3).
    degree:
        Degree of the per-segment polynomials.
    use_exponential_search:
        Locate segment ends with exponential + binary search instead of
        one-point-at-a-time growth.  Produces the same segmentation because
        the fitting error is monotone in the point set (Lemma 1).  Ignored by
        the degree <= 1 linear pass, which needs no search at all.
    solver:
        Forwarded to :func:`fit_minimax_polynomial`.  ``"auto"`` routes
        degree <= 1 through the exact one-pass scanner and degree >= 2
        through the Remez exchange; ``"lp"`` restores the per-probe LP
        baseline.
    early_accept:
        Re-evaluate the incumbent polynomial on each probe's extension and
        accept without solving when its residual stays within ``delta``.
        Never changes boundaries (a witness polynomial within ``delta`` is a
        proof of feasibility); disable only for baseline benchmarking.

    Returns
    -------
    list[Segment]
        Segments covering all points, each satisfying ``max_error <= delta``.

    Notes
    -----
    GS is optimal: it produces the minimum possible number of segments
    (Theorem 1 of the paper).
    """
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    _validate_inputs(keys, values, delta, degree)

    if solver in ("auto", "incremental") and degree <= 1:
        if degree == 0:
            return _constant_pass(keys, values, delta)
        if not _has_duplicate_keys(keys):
            return _linear_pass(keys, values, delta)
        # Coincident keys: the O(1) corridor scanner assumes strictly
        # increasing keys, so locate boundaries with the search loop but keep
        # the exact hull fitter as the per-probe solver.
        solver = "incremental"

    segments: list[Segment] = []
    n = keys.size
    start = 0
    while start < n:
        searcher = _PrefixSearcher(keys, values, start, delta, degree, solver, early_accept)
        if use_exponential_search:
            stop, fit = searcher.run_exponential()
        else:
            stop, fit = searcher.run_linear()
        segments.append(_make_segment(keys, start, stop, fit))
        start = stop
    return segments


def _has_duplicate_keys(keys: np.ndarray) -> bool:
    return keys.size > 1 and bool(np.any(keys[1:] == keys[:-1]))


_CONSTANT_SCAN_CHUNK = 2048


def _constant_pass(keys: np.ndarray, values: np.ndarray, delta: float) -> list[Segment]:
    """One-pass GS for degree 0: running midrange, zero solver calls.

    The boundary scan runs on chunked ``maximum/minimum.accumulate`` windows
    (the running spread is monotone, so the first chunk position whose spread
    exceeds ``2 * delta`` is the boundary), keeping the whole pass in NumPy:
    O(n + chunk * num_segments) total work, no per-point Python.
    """
    segments: list[Segment] = []
    n = keys.size
    width = 2.0 * delta
    start = 0
    while start < n:
        low = high = values[start]
        stop = start + 1
        while stop < n:
            chunk = values[stop: stop + _CONSTANT_SCAN_CHUNK]
            running_high = np.maximum(high, np.maximum.accumulate(chunk))
            running_low = np.minimum(low, np.minimum.accumulate(chunk))
            over_budget = (running_high - running_low) > width
            if np.any(over_budget):
                stop += int(np.argmax(over_budget))
                break
            high = float(running_high[-1])
            low = float(running_low[-1])
            stop += chunk.size
        fit = fit_incremental_polynomial(keys[start:stop], values[start:stop], 0)
        segments.append(_make_segment(keys, start, stop, fit))
        start = stop
    return segments


def _linear_pass(keys: np.ndarray, values: np.ndarray, delta: float) -> list[Segment]:
    """One-pass GS for degree 1: exact corridor scan, zero solver calls.

    The scanner decides every boundary; the emitted polynomial is the
    closed-form hull optimum refit on the closed slice (one extra O(length)
    pass per segment, so the whole build stays linear).
    """
    segments: list[Segment] = []
    ks = keys.tolist()
    vs = values.tolist()
    n = keys.size
    start = 0
    while start < n:
        stop = longest_feasible_prefix(ks, vs, start, n, delta)
        fit = fit_incremental_polynomial(keys[start:stop], values[start:stop], 1)
        segments.append(_make_segment(keys, start, stop, fit))
        start = stop
    return segments


class _PrefixSearcher:
    """Locates the longest feasible prefix from ``start`` for one segment.

    Wraps the monotone feasibility predicate (Lemma 1) with two construction
    accelerations that never change its value:

    * **Early-accept certificate** — before solving for a longer prefix,
      evaluate the incumbent feasible polynomial on just the new points; if
      the running residual stays within ``delta``, the incumbent is a witness
      that the longer prefix is feasible, so the solve is skipped entirely.
      The residual high-water mark is carried across probes, so certificate
      evaluations touch each point at most once per incumbent, and a segment
      whose final acceptance came from the certificate is refit once at
      emission (:meth:`_emit`) so the stored polynomial is still the
      accepted prefix's optimum.
    * **No per-probe matrix builds** — the default (Remez) solver evaluates
      residuals with Horner passes over the prefix, so probes never
      materialize the 2n-row LP design matrices the baseline rebuilt from
      scratch on every probe.
    """

    def __init__(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        start: int,
        delta: float,
        degree: int,
        solver: str,
        early_accept: bool,
    ) -> None:
        self._keys = keys
        self._values = values
        self._start = start
        self._delta = delta
        self._degree = degree
        self._solver = solver
        self._early_accept = early_accept
        self._best: MinimaxFit | None = None
        self._best_stop = start
        self._cert_error = 0.0
        self._best_is_certificate = False

    # ------------------------------------------------------------------ #
    # Feasibility predicate
    # ------------------------------------------------------------------ #

    def _feasible(self, stop: int) -> bool:
        """Whether ``[start, stop)`` admits a fit within delta (Lemma 1)."""
        if (
            self._early_accept
            and self._best is not None
            and stop > self._best_stop
        ):
            extension = slice(self._best_stop, stop)
            residual = np.abs(
                self._values[extension]
                - np.asarray(self._best.polynomial(self._keys[extension]))
            )
            # NaN-safe: evaluating the incumbent far outside its fitted span
            # can overflow (degenerately scaled interpolation fits); a
            # non-finite residual must fail the certificate, and Python's
            # ``max(0.0, nan)`` would silently return 0.0.
            worst_new = float(residual.max())
            extended = max(self._cert_error, worst_new)
            if np.isfinite(worst_new) and extended <= self._delta:
                # The incumbent polynomial itself certifies feasibility.
                self._best = MinimaxFit(
                    polynomial=self._best.polynomial, max_error=extended
                )
                self._cert_error = extended
                self._best_stop = stop
                self._best_is_certificate = True
                return True
        fit = fit_minimax_polynomial(
            self._keys[self._start: stop],
            self._values[self._start: stop],
            self._degree,
            solver=self._solver,
        )
        if fit.max_error <= self._delta:
            self._best = fit
            self._cert_error = fit.max_error
            self._best_stop = stop
            self._best_is_certificate = False
            return True
        return False

    def _emit(self, stop: int) -> tuple[int, MinimaxFit]:
        """Final (stop, fit) for the segment, refitting certificate survivors.

        A certificate-accepted incumbent was only *solved* on a shorter
        prefix — it witnesses feasibility but is not the accepted prefix's
        minimax optimum.  One final solve per segment restores the fit
        quality of the solve-per-probe baseline at negligible cost (the
        certificate still saved every intermediate probe).  The refit is
        kept only when it honors the budget: solver round-off must never
        push an accepted segment over delta.
        """
        assert self._best is not None
        if self._best_is_certificate:
            refit = fit_minimax_polynomial(
                self._keys[self._start: stop],
                self._values[self._start: stop],
                self._degree,
                solver=self._solver,
            )
            if refit.max_error <= max(self._delta, self._best.max_error):
                self._best = refit
                self._best_is_certificate = False
        return stop, self._best

    def _require_single_point(self) -> tuple[int, MinimaxFit]:
        stop = self._start + 1
        self._best = None
        feasible = self._feasible(stop)
        assert feasible or self._best is None
        if self._best is None:
            # A single point always fits exactly; delta smaller than the
            # round-off of the solve chain still accepts it.
            fit = fit_minimax_polynomial(
                self._keys[self._start: stop],
                self._values[self._start: stop],
                self._degree,
                solver=self._solver,
            )
            self._best = fit
            self._best_stop = stop
            self._best_is_certificate = False
        return stop, self._best

    # ------------------------------------------------------------------ #
    # Search strategies
    # ------------------------------------------------------------------ #

    def run_linear(self) -> tuple[int, MinimaxFit]:
        """Grow the segment one point at a time (the paper's Algorithm 1)."""
        n = self._keys.size
        stop, _ = self._require_single_point()
        while stop < n and self._feasible(stop + 1):
            stop += 1
        return self._emit(stop)

    def run_exponential(self) -> tuple[int, MinimaxFit]:
        """Exponential + binary search over the segment end.

        Correctness relies on Lemma 1 (monotonicity of the minimax error in
        the point set): the predicate "prefix of length L is feasible" is
        monotone in ``L``, so doubling followed by bisection finds the same
        boundary as the linear scan.
        """
        n = self._keys.size
        start = self._start
        # Any prefix of at most degree + 1 points has error 0 <= delta.
        low = min(start + self._degree + 1, n)
        if not self._feasible(low):
            # Degenerate budget (delta smaller than interpolation round-off):
            # fall back to a single-point segment which always has zero error.
            stop, fit = self._require_single_point()
            low = stop
        if low >= n:
            return self._emit(low)

        # Doubling phase: find an infeasible stop (or reach the end).
        step = max(low - start, 1)
        high_infeasible = None
        while True:
            step *= 2
            candidate = min(start + step, n)
            if candidate <= low:
                candidate = min(low + 1, n)
            if self._feasible(candidate):
                low = candidate
                if candidate == n:
                    return self._emit(low)
            else:
                high_infeasible = candidate
                break

        # Bisection phase on (low, high_infeasible).
        lo, hi = low, high_infeasible
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._feasible(mid):
                lo = mid
            else:
                hi = mid
        return self._emit(lo)


def _feasible_reach(
    keys: np.ndarray, values: np.ndarray, delta: float, degree: int
) -> np.ndarray:
    """``reach[s]`` = exclusive stop of the longest feasible prefix from ``s``.

    Used by the DP reference for degree <= 1: one exact scanner pass per
    start replaces the per-interval solver calls entirely.
    """
    n = keys.size
    ks = keys.tolist()
    vs = values.tolist()
    reach = np.empty(n, dtype=np.intp)
    if degree == 0:
        for start in range(n):
            fitter = IncrementalConstantFitter()
            stop = start
            while stop < n and fitter.error_with(vs[stop]) <= delta:
                fitter.append(0.0, vs[stop])
                stop += 1
            reach[start] = max(stop, start + 1)
    else:
        for start in range(n):
            reach[start] = longest_feasible_prefix(ks, vs, start, n, delta)
    return reach


def dp_segmentation(
    keys: np.ndarray,
    values: np.ndarray,
    delta: float,
    degree: int,
    *,
    solver: str = "auto",
) -> list[Segment]:
    """Optimal segmentation by dynamic programming (the paper's DP reference).

    Runs in ``O(n^2)`` feasibility checks, so it is only practical for small
    inputs; it is used by tests and the ablation benchmark to verify that GS
    achieves the same (minimum) number of segments.  Memory is O(n): only the
    fit of each stop's optimal parent interval is retained (the fits off the
    optimal parent chain can never appear in the reconstruction), instead of
    caching every feasible ``(start, stop)`` polynomial.
    """
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    _validate_inputs(keys, values, delta, degree)

    n = keys.size
    # best[i] = minimum number of segments covering points [0, i)
    best = np.full(n + 1, np.inf)
    best[0] = 0.0
    parent = np.full(n + 1, -1, dtype=int)

    use_scanner = (
        solver in ("auto", "incremental")
        and degree <= 1
        and (degree == 0 or not _has_duplicate_keys(keys))
    )
    if use_scanner:
        # Degree <= 1: feasibility of [start, stop) is exactly
        # "stop <= reach[start]" — the same exact predicate GS's scanner
        # uses, evaluated with zero solver calls.
        reach = _feasible_reach(keys, values, delta, degree)
        for stop in range(1, n + 1):
            for start in range(stop - 1, -1, -1):
                if reach[start] < stop:
                    # Lemma 1: extending further left only increases the error.
                    break
                if best[start] + 1 < best[stop]:
                    best[stop] = best[start] + 1
                    parent[stop] = start
        fit_for = None
    else:
        fit_for: list[MinimaxFit | None] = [None] * (n + 1)
        for stop in range(1, n + 1):
            for start in range(stop - 1, -1, -1):
                fit = fit_minimax_polynomial(
                    keys[start:stop], values[start:stop], degree, solver=solver
                )
                if fit.max_error > delta:
                    # Lemma 1: extending further left only increases the error.
                    break
                if best[start] + 1 < best[stop]:
                    best[stop] = best[start] + 1
                    parent[stop] = start
                    fit_for[stop] = fit

    if not np.isfinite(best[n]):
        raise SegmentationError("DP failed to cover the point set")

    segments: list[Segment] = []
    stop = n
    while stop > 0:
        start = int(parent[stop])
        if fit_for is not None and fit_for[stop] is not None:
            fit = fit_for[stop]
        else:
            fit = fit_minimax_polynomial(
                keys[start:stop], values[start:stop], degree, solver=solver
            )
        segments.append(_make_segment(keys, start, stop, fit))
        stop = start
    segments.reverse()
    return segments


def segment_count(segments: list[Segment]) -> int:
    """Number of segments (``h`` in the paper's Figure 6)."""
    return len(segments)
