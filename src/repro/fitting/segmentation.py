"""Segmentation of a 1-D target function into error-bounded intervals.

Implements the paper's Greedy Segmentation (GS, Algorithm 1): grow an
interval point by point until its optimal minimax fit exceeds the budget
``delta``, emit the previous interval, and continue.  Because the minimax
error is monotone in the point set (Lemma 1), GS produces the minimum number
of segments (Theorem 1).

Two refinements are provided on top of the plain algorithm:

* **Exponential + binary search** over the segment end point (the paper's
  remark referencing unbounded search): instead of refitting after every
  single added point, the segment end is located with a doubling phase
  followed by a bisection phase, reducing the number of LP solves per
  segment from ``O(l)`` to ``O(log l)``.
* **Dynamic-programming optimum** (``dp_segmentation``): the quadratic
  reference algorithm; used in tests and the ablation bench to confirm that
  GS matches the optimal segment count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SegmentationError
from .minimax import MinimaxFit, fit_minimax_polynomial
from .polynomial import Polynomial1D

__all__ = ["Segment", "greedy_segmentation", "dp_segmentation", "segment_count"]


@dataclass(frozen=True)
class Segment:
    """One fitted interval of the piecewise model.

    Attributes
    ----------
    key_low, key_high:
        The key span covered by the segment (inclusive on both ends).
    start, stop:
        Index range ``[start, stop)`` of the fitted points in the sampled
        target function.
    polynomial:
        The fitted :class:`Polynomial1D`.
    max_error:
        Achieved minimax error over the fitted points.
    """

    key_low: float
    key_high: float
    start: int
    stop: int
    polynomial: Polynomial1D
    max_error: float

    @property
    def num_points(self) -> int:
        """Number of fitted points."""
        return self.stop - self.start

    def covers(self, key: float) -> bool:
        """Whether ``key`` falls inside the segment's key span."""
        return self.key_low <= key <= self.key_high


def _fit(keys: np.ndarray, values: np.ndarray, degree: int, solver: str) -> MinimaxFit:
    return fit_minimax_polynomial(keys, values, degree, solver=solver)


def _validate_inputs(keys: np.ndarray, values: np.ndarray, delta: float, degree: int) -> None:
    if keys.ndim != 1 or values.ndim != 1:
        raise SegmentationError("keys and values must be 1-D arrays")
    if keys.size == 0:
        raise SegmentationError("cannot segment an empty point set")
    if keys.size != values.size:
        raise SegmentationError("keys and values must have equal length")
    if np.any(np.diff(keys) < 0):
        raise SegmentationError("keys must be sorted ascending")
    if delta < 0:
        raise SegmentationError("delta must be non-negative")
    if degree < 0:
        raise SegmentationError("degree must be non-negative")


def greedy_segmentation(
    keys: np.ndarray,
    values: np.ndarray,
    delta: float,
    degree: int,
    *,
    use_exponential_search: bool = True,
    solver: str = "auto",
) -> list[Segment]:
    """Greedy Segmentation (GS, Algorithm 1) of the sampled function.

    Parameters
    ----------
    keys, values:
        Sampled target function, keys sorted ascending.
    delta:
        Bounded delta-error constraint per segment (Definition 3).
    degree:
        Degree of the per-segment polynomials.
    use_exponential_search:
        Locate segment ends with exponential + binary search instead of
        one-point-at-a-time growth.  Produces the same segmentation because
        the fitting error is monotone in the point set (Lemma 1).
    solver:
        Forwarded to :func:`fit_minimax_polynomial`.

    Returns
    -------
    list[Segment]
        Segments covering all points, each satisfying ``max_error <= delta``.

    Notes
    -----
    GS is optimal: it produces the minimum possible number of segments
    (Theorem 1 of the paper).
    """
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    _validate_inputs(keys, values, delta, degree)

    segments: list[Segment] = []
    n = keys.size
    start = 0
    while start < n:
        if use_exponential_search:
            stop, fit = _find_longest_prefix_exponential(
                keys, values, start, delta, degree, solver
            )
        else:
            stop, fit = _find_longest_prefix_linear(keys, values, start, delta, degree, solver)
        segments.append(
            Segment(
                key_low=float(keys[start]),
                key_high=float(keys[stop - 1]),
                start=start,
                stop=stop,
                polynomial=fit.polynomial,
                max_error=fit.max_error,
            )
        )
        start = stop
    return segments


def _find_longest_prefix_linear(
    keys: np.ndarray,
    values: np.ndarray,
    start: int,
    delta: float,
    degree: int,
    solver: str,
) -> tuple[int, MinimaxFit]:
    """Grow the segment one point at a time (the paper's Algorithm 1)."""
    n = keys.size
    best_stop = start + 1
    best_fit = _fit(keys[start:best_stop], values[start:best_stop], degree, solver)
    stop = best_stop
    while stop < n:
        candidate = stop + 1
        fit = _fit(keys[start:candidate], values[start:candidate], degree, solver)
        if fit.max_error > delta:
            break
        best_stop, best_fit = candidate, fit
        stop = candidate
    return best_stop, best_fit


def _find_longest_prefix_exponential(
    keys: np.ndarray,
    values: np.ndarray,
    start: int,
    delta: float,
    degree: int,
    solver: str,
) -> tuple[int, MinimaxFit]:
    """Locate the longest feasible prefix with exponential + binary search.

    Correctness relies on Lemma 1 (monotonicity of the minimax error in the
    point set): the predicate "prefix of length L is feasible" is monotone in
    ``L``, so doubling followed by bisection finds the same boundary as the
    linear scan.
    """
    n = keys.size
    # Any prefix of at most degree + 1 points has error 0 <= delta.
    low = min(start + degree + 1, n)  # largest length known feasible (index, exclusive)
    low_fit = _fit(keys[start:low], values[start:low], degree, solver)
    if low_fit.max_error > delta:
        # Degenerate budget (delta smaller than interpolation round-off):
        # fall back to a single-point segment which always has zero error.
        low = start + 1
        low_fit = _fit(keys[start:low], values[start:low], degree, solver)
    if low >= n:
        return low, low_fit

    # Doubling phase: find an infeasible stop (or reach the end).
    step = max(low - start, 1)
    high = low
    high_infeasible = None
    while True:
        step *= 2
        candidate = min(start + step, n)
        if candidate <= high:
            candidate = min(high + 1, n)
        fit = _fit(keys[start:candidate], values[start:candidate], degree, solver)
        if fit.max_error <= delta:
            low, low_fit = candidate, fit
            if candidate == n:
                return low, low_fit
        else:
            high_infeasible = candidate
            break

    # Bisection phase on (low, high_infeasible).
    lo, hi = low, high_infeasible
    while hi - lo > 1:
        mid = (lo + hi) // 2
        fit = _fit(keys[start:mid], values[start:mid], degree, solver)
        if fit.max_error <= delta:
            lo, low_fit = mid, fit
        else:
            hi = mid
    return lo, low_fit


def dp_segmentation(
    keys: np.ndarray,
    values: np.ndarray,
    delta: float,
    degree: int,
    *,
    solver: str = "auto",
) -> list[Segment]:
    """Optimal segmentation by dynamic programming (the paper's DP reference).

    Runs in ``O(n^2)`` fits, so it is only practical for small inputs; it is
    used by tests and the ablation benchmark to verify that GS achieves the
    same (minimum) number of segments.
    """
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    _validate_inputs(keys, values, delta, degree)

    n = keys.size
    # best[i] = minimum number of segments covering points [0, i)
    best = np.full(n + 1, np.inf)
    best[0] = 0.0
    parent = np.full(n + 1, -1, dtype=int)
    fits: dict[tuple[int, int], MinimaxFit] = {}

    for stop in range(1, n + 1):
        for start in range(stop - 1, -1, -1):
            fit = _fit(keys[start:stop], values[start:stop], degree, solver)
            if fit.max_error > delta:
                # Lemma 1: extending further left only increases the error.
                break
            fits[(start, stop)] = fit
            if best[start] + 1 < best[stop]:
                best[stop] = best[start] + 1
                parent[stop] = start

    if not np.isfinite(best[n]):
        raise SegmentationError("DP failed to cover the point set")

    segments: list[Segment] = []
    stop = n
    while stop > 0:
        start = int(parent[stop])
        fit = fits[(start, stop)]
        segments.append(
            Segment(
                key_low=float(keys[start]),
                key_high=float(keys[stop - 1]),
                start=start,
                stop=stop,
                polynomial=fit.polynomial,
                max_error=fit.max_error,
            )
        )
        stop = start
    segments.reverse()
    return segments


def segment_count(segments: list[Segment]) -> int:
    """Number of segments (``h`` in the paper's Figure 6)."""
    return len(segments)
