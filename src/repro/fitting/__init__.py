"""Minimax polynomial fitting and segmentation.

This package implements the curve-fitting machinery of PolyFit:

* :mod:`polynomial` — evaluation, differentiation and constrained extrema of
  univariate and bivariate polynomials (the closed-form tools used at query
  time for MAX/MIN queries, Equation 17).
* :mod:`minimax` — the minimax (Chebyshev / L-infinity) polynomial fit of a
  point set: the Remez exchange for degree >= 2 with the Equation 9 linear
  program (scipy HiGHS) as fallback and correctness oracle, plus fast paths
  for trivial cases.
* :mod:`incremental` — exact online minimax fitting for degree <= 1 (running
  midrange, convex hulls + rotating calipers) and the one-pass
  delta-feasibility scanner that lets GS build without any solver calls.
* :mod:`segmentation` — the Greedy Segmentation (GS) algorithm (Algorithm 1),
  its exponential-search acceleration with the early-accept certificate, and
  the dynamic-programming optimum used as a reference.
* :mod:`quadtree` — the quadtree splitter used for two-key surfaces
  (Section VI, Figure 13), with serial and frontier-parallel builds.
"""

from .polynomial import Polynomial1D, Polynomial2D, PolynomialBank, SurfaceBank
from .minimax import MinimaxFit, fit_minimax_polynomial, fit_lstsq_polynomial, fit_minimax_surface
from .incremental import (
    CorridorScanner,
    IncrementalConstantFitter,
    IncrementalLinearFitter,
    fit_incremental_polynomial,
    longest_feasible_prefix,
)
from .segmentation import Segment, greedy_segmentation, dp_segmentation, segment_count
from .quadtree import QuadCell, build_quadtree_surface

__all__ = [
    "Polynomial1D",
    "Polynomial2D",
    "PolynomialBank",
    "SurfaceBank",
    "MinimaxFit",
    "fit_minimax_polynomial",
    "fit_lstsq_polynomial",
    "fit_minimax_surface",
    "CorridorScanner",
    "IncrementalConstantFitter",
    "IncrementalLinearFitter",
    "fit_incremental_polynomial",
    "longest_feasible_prefix",
    "Segment",
    "greedy_segmentation",
    "dp_segmentation",
    "segment_count",
    "QuadCell",
    "build_quadtree_surface",
]
