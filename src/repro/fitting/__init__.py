"""Minimax polynomial fitting and segmentation.

This package implements the curve-fitting machinery of PolyFit:

* :mod:`polynomial` — evaluation, differentiation and constrained extrema of
  univariate and bivariate polynomials (the closed-form tools used at query
  time for MAX/MIN queries, Equation 17).
* :mod:`minimax` — the minimax (Chebyshev / L-infinity) polynomial fit of a
  point set, solved as the linear program of Equation 9 via scipy's HiGHS
  solver, with fast paths for trivial cases.
* :mod:`segmentation` — the Greedy Segmentation (GS) algorithm (Algorithm 1),
  its exponential-search acceleration, and the dynamic-programming optimum
  used as a reference.
* :mod:`quadtree` — the quadtree splitter used for two-key surfaces
  (Section VI, Figure 13).
"""

from .polynomial import Polynomial1D, Polynomial2D, PolynomialBank, SurfaceBank
from .minimax import MinimaxFit, fit_minimax_polynomial, fit_lstsq_polynomial, fit_minimax_surface
from .segmentation import Segment, greedy_segmentation, dp_segmentation, segment_count
from .quadtree import QuadCell, build_quadtree_surface

__all__ = [
    "Polynomial1D",
    "Polynomial2D",
    "PolynomialBank",
    "SurfaceBank",
    "MinimaxFit",
    "fit_minimax_polynomial",
    "fit_lstsq_polynomial",
    "fit_minimax_surface",
    "Segment",
    "greedy_segmentation",
    "dp_segmentation",
    "segment_count",
    "QuadCell",
    "build_quadtree_surface",
]
