"""Quadtree segmentation for two-key cumulative surfaces (Section VI).

For two keys the GS algorithm would cost at least ``O(n^2)``, so the paper
partitions the key plane with a quadtree: start from the bounding rectangle,
fit a bivariate polynomial surface to the cumulative-count samples inside the
cell, and split the cell into four children whenever the minimax error
exceeds the budget ``delta`` (Figure 13).  Splitting stops when every leaf
satisfies the budget, the leaf contains too few samples to be worth fitting,
or the maximum depth is reached (in which case the leaf stores its samples
exactly so guarantees still hold).

Construction is organized around :func:`_cell_outcome`, a pure function of a
cell's rectangle: it slices the cell's CF-grid samples directly out of the
sorted grid arrays (two ``searchsorted`` probes per axis instead of
full-grid boolean masks) and decides leaf-vs-split.  The serial build
recurses over it; the parallel build evaluates whole refinement frontiers of
it at once across a thread or process pool — cells on a frontier are
independent, so the parallel tree is bit-identical to the serial one
regardless of scheduling.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from ..config import QuadTreeConfig
from ..errors import SegmentationError
from .minimax import fit_minimax_surface
from .polynomial import Polynomial2D

__all__ = [
    "QuadCell",
    "build_quadtree_surface",
    "linearize_quadtree",
    "quadtree_build_signature",
]

#: Deepest quadtree supported by the 64-bit Morton codes of the linearized
#: leaf directory (32 bits per axis).
MAX_LINEARIZABLE_DEPTH = 32


@dataclass
class QuadCell:
    """One quadtree cell.

    A cell is either an internal node with four ``children`` or a leaf.  A
    leaf stores either a fitted polynomial surface (with its achieved error)
    or, when it has very few samples or splitting bottomed out, the raw
    samples for exact evaluation.

    Attributes
    ----------
    x_low, x_high, y_low, y_high:
        The rectangle covered by the cell.
    depth:
        Depth in the quadtree (root is 0).
    surface:
        Fitted :class:`Polynomial2D`, or ``None`` for exact leaves and
        internal nodes.
    max_error:
        Minimax error of the fitted surface over the cell's samples (0 for
        exact leaves).
    children:
        Four child cells for internal nodes, empty for leaves.
    exact_points:
        ``(us, vs, cf_values)`` stored by exact leaves.
    """

    x_low: float
    x_high: float
    y_low: float
    y_high: float
    depth: int
    surface: Polynomial2D | None = None
    max_error: float = 0.0
    children: list["QuadCell"] = field(default_factory=list)
    exact_points: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @property
    def is_leaf(self) -> bool:
        """True when the cell has no children."""
        return not self.children

    @property
    def is_exact(self) -> bool:
        """True when the leaf answers from stored samples instead of a fit."""
        return self.exact_points is not None

    def contains(self, u: float, v: float) -> bool:
        """Whether the point ``(u, v)`` lies inside the cell's rectangle."""
        return self.x_low <= u <= self.x_high and self.y_low <= v <= self.y_high

    def evaluate(self, u: float, v: float) -> float:
        """Evaluate the cell's model of the cumulative function at ``(u, v)``.

        Exact leaves answer with the nearest sampled cumulative value (the
        samples form a dense grid inside the cell, so this is exact up to the
        sampling resolution); fitted leaves evaluate their surface.
        """
        if self.is_exact:
            us, vs, cf = self.exact_points
            distances = (us - u) ** 2 + (vs - v) ** 2
            return float(cf[int(np.argmin(distances))])
        if self.surface is None:
            raise SegmentationError("internal quadtree cell evaluated directly")
        return float(self.surface(u, v))

    def locate(self, u: float, v: float) -> "QuadCell":
        """Descend to the leaf cell containing ``(u, v)``.

        Children are laid out by :func:`_refine_cell` in quadrant order
        (SW, SE, NW, NE), so the containing child can be picked with two
        comparisons against the cell midpoint instead of scanning.
        """
        cell = self
        while not cell.is_leaf:
            if len(cell.children) == 4:
                x_mid = (cell.x_low + cell.x_high) / 2.0
                y_mid = (cell.y_low + cell.y_high) / 2.0
                index = (1 if u > x_mid else 0) + (2 if v > y_mid else 0)
                cell = cell.children[index]
                continue
            found = None
            for child in cell.children:
                if child.contains(u, v):
                    found = child
                    break
            if found is None:
                # Clamp to the nearest child (points exactly on shared edges).
                found = min(
                    cell.children,
                    key=lambda c: max(c.x_low - u, u - c.x_high, 0.0)
                    + max(c.y_low - v, v - c.y_high, 0.0),
                )
            cell = found
        return cell

    def leaves(self) -> list["QuadCell"]:
        """All leaf cells below (and including) this cell."""
        if self.is_leaf:
            return [self]
        result: list[QuadCell] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    @property
    def num_parameters(self) -> int:
        """Float parameters stored by this subtree (used for Figure 19-style size accounting)."""
        own = 4  # rectangle bounds
        if self.is_exact and self.exact_points is not None:
            own += 3 * self.exact_points[0].size
        elif self.surface is not None:
            own += self.surface.num_parameters
        return own + sum(child.num_parameters for child in self.children)


def linearize_quadtree(root: QuadCell) -> tuple[list[QuadCell], np.ndarray, int]:
    """Linearize the quadtree's leaves into Morton/Z-order (linear quadtree).

    Walks the tree in child order (SW, SE, NW, NE) tracking each cell's
    integer coordinates at its own depth; every leaf at depth ``d`` covers the
    dyadic block ``[cx, cx+1) x [cy, cy+1)`` of the ``2^d x 2^d`` grid, which
    at the finest leaf depth ``D`` becomes the contiguous Morton-code range
    ``[interleave(cx << (D-d), cy << (D-d)), ... + 4^(D-d))``.  Because the
    child order matches the bit interleave (x bit low, y bit high), the DFS
    emits leaves with strictly increasing codes — the sorted key array a
    ``searchsorted`` leaf directory needs.

    Returns
    -------
    (leaves, codes, depth):
        The leaves in Z-order, their ``uint64`` Morton keys (the code of each
        leaf's lowest corner at depth ``depth``), and the finest leaf depth.
    """
    records: list[tuple[QuadCell, int, int, int]] = []

    def walk(cell: QuadCell, cx: int, cy: int, depth: int) -> None:
        if cell.is_leaf:
            records.append((cell, cx, cy, depth))
            return
        if len(cell.children) != 4:
            raise SegmentationError(
                f"cannot linearize a quadtree node with {len(cell.children)} children"
            )
        for quadrant, child in enumerate(cell.children):
            walk(child, 2 * cx + (quadrant & 1), 2 * cy + (quadrant >> 1), depth + 1)

    walk(root, 0, 0, 0)
    depth = max(record[3] for record in records)
    if depth > MAX_LINEARIZABLE_DEPTH:
        raise SegmentationError(
            f"quadtree depth {depth} exceeds the Morton code budget "
            f"({MAX_LINEARIZABLE_DEPTH} levels)"
        )
    leaves = [record[0] for record in records]
    gx = np.array([cx << (depth - d) for _, cx, _, d in records], dtype=np.uint64)
    gy = np.array([cy << (depth - d) for _, _, cy, d in records], dtype=np.uint64)
    codes = morton_interleave2(gx, gy)
    if codes.size > 1 and not np.all(codes[1:] > codes[:-1]):
        raise SegmentationError("quadtree leaves are not in strict Z-order")
    return leaves, codes, depth


def quadtree_build_signature(root: QuadCell) -> list:
    """Canonical byte-level signature of a built quadtree.

    Covers everything construction decides: the Z-order leaf codes and
    depth, every leaf's rectangle/depth/error, exact payloads and surface
    coefficients with their scalings.  Two builds are bit-identical iff
    their signatures compare equal — the single definition shared by the
    parallel-build tests and the build-time benchmark gate, so the notion
    of "bit-identical" cannot drift between them.
    """
    leaves, codes, depth = linearize_quadtree(root)
    signature: list = [codes.tobytes(), depth]
    for leaf in leaves:
        signature.append(
            (leaf.x_low, leaf.x_high, leaf.y_low, leaf.y_high, leaf.depth, leaf.max_error)
        )
        if leaf.is_exact:
            us, vs, cf = leaf.exact_points
            signature.append((us.tobytes(), vs.tobytes(), cf.tobytes()))
        else:
            surface = leaf.surface
            signature.append(
                (
                    surface.coeffs.tobytes(),
                    surface.degree,
                    surface.shift_u,
                    surface.scale_u,
                    surface.shift_v,
                    surface.scale_v,
                )
            )
    return signature


def morton_interleave2(gx: np.ndarray, gy: np.ndarray) -> np.ndarray:
    """Interleave two <=32-bit integer coordinate arrays into Morton codes.

    Bit ``k`` of ``gx`` lands at position ``2k`` and bit ``k`` of ``gy`` at
    ``2k + 1``, matching the quadtree's (SW, SE, NW, NE) child order: the
    child index at every level is ``x_bit + 2 * y_bit``.
    """

    def spread(a: np.ndarray) -> np.ndarray:
        a = a.astype(np.uint64) & np.uint64(0xFFFFFFFF)
        a = (a | (a << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
        a = (a | (a << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
        a = (a | (a << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        a = (a | (a << np.uint64(2))) & np.uint64(0x3333333333333333)
        a = (a | (a << np.uint64(1))) & np.uint64(0x5555555555555555)
        return a

    return spread(np.asarray(gx)) | (spread(np.asarray(gy)) << np.uint64(1))


def build_quadtree_surface(
    grid_x: np.ndarray,
    grid_y: np.ndarray,
    grid_cf: np.ndarray,
    config: QuadTreeConfig,
) -> QuadCell:
    """Build the quadtree of polynomial surfaces over a sampled CF grid.

    Parameters
    ----------
    grid_x, grid_y:
        Grid coordinates (ascending) at which the cumulative function was
        sampled.
    grid_cf:
        ``grid_cf[i, j] = CF(grid_x[i], grid_y[j])``.
    config:
        Split budget, depth limit, degree and exact-leaf threshold.

    Returns
    -------
    QuadCell
        The root cell; every leaf either satisfies ``max_error <= delta`` or
        stores its samples exactly.
    """
    grid_x = np.asarray(grid_x, dtype=np.float64)
    grid_y = np.asarray(grid_y, dtype=np.float64)
    grid_cf = np.asarray(grid_cf, dtype=np.float64)
    if grid_x.ndim != 1 or grid_y.ndim != 1 or grid_cf.ndim != 2:
        raise SegmentationError("grid_x/grid_y must be 1-D and grid_cf 2-D")
    if grid_cf.shape != (grid_x.size, grid_y.size):
        raise SegmentationError(
            f"grid_cf shape {grid_cf.shape} does not match grid sizes "
            f"({grid_x.size}, {grid_y.size})"
        )
    if grid_x.size < 2 or grid_y.size < 2:
        raise SegmentationError("need at least a 2x2 sample grid")

    root = QuadCell(
        x_low=float(grid_x[0]),
        x_high=float(grid_x[-1]),
        y_low=float(grid_y[0]),
        y_high=float(grid_y[-1]),
        depth=0,
    )
    if config.build_executor == "serial":
        _refine_cell(root, grid_x, grid_y, grid_cf, config)
    else:
        _refine_frontier_parallel(root, grid_x, grid_y, grid_cf, config)
    return root


def _cell_samples(
    x_low: float,
    x_high: float,
    y_low: float,
    y_high: float,
    grid_x: np.ndarray,
    grid_y: np.ndarray,
    grid_cf: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flattened (u, v, cf) samples inside the rectangle.

    The grid axes are sorted, so the covered sample block is a contiguous
    slice per axis — two ``searchsorted`` probes replace the full-grid
    boolean masks, making per-cell sampling O(cell) instead of O(grid).
    """
    i0 = int(np.searchsorted(grid_x, x_low, side="left"))
    i1 = int(np.searchsorted(grid_x, x_high, side="right"))
    j0 = int(np.searchsorted(grid_y, y_low, side="left"))
    j1 = int(np.searchsorted(grid_y, y_high, side="right"))
    nx = i1 - i0
    ny = j1 - j0
    if nx <= 0 or ny <= 0:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty, empty
    us = np.repeat(grid_x[i0:i1], ny)
    vs = np.tile(grid_y[j0:j1], nx)
    return us, vs, grid_cf[i0:i1, j0:j1].ravel()


def _cell_outcome(
    spec: tuple[float, float, float, float, int],
    grid_x: np.ndarray,
    grid_y: np.ndarray,
    grid_cf: np.ndarray,
    config: QuadTreeConfig,
) -> tuple:
    """Decide one cell's fate — a pure function of its rectangle.

    Returns one of ``("empty",)``, ``("exact", us, vs, cf)``,
    ``("surface", polynomial, max_error)`` or ``("split",)``.  Both the
    serial recursion and the parallel frontier driver consume exactly this,
    which is what makes parallel builds bit-identical to serial ones.
    """
    x_low, x_high, y_low, y_high, depth = spec
    us, vs, cf = _cell_samples(x_low, x_high, y_low, y_high, grid_x, grid_y, grid_cf)
    if us.size == 0:
        return ("empty",)
    if us.size <= config.min_cell_points:
        return ("exact", us, vs, cf)
    fit = fit_minimax_surface(us, vs, cf, config.degree, solver=config.solver)
    if fit.max_error <= config.delta:
        return ("surface", fit.polynomial, fit.max_error)
    if depth >= config.max_depth:
        # Depth budget exhausted without meeting the error budget: store
        # samples exactly so the index can still certify guarantees.
        return ("exact", us, vs, cf)
    return ("split",)


def _apply_outcome(
    cell: QuadCell,
    outcome: tuple,
    grid_x: np.ndarray,
    grid_y: np.ndarray,
    grid_cf: np.ndarray,
) -> list[QuadCell]:
    """Record a cell's outcome; returns the children of split cells."""
    kind = outcome[0]
    if kind == "empty":
        # Empty cells (no grid samples) become exact leaves with a single
        # synthetic corner sample taken from the nearest grid point.
        xi = int(np.clip(np.searchsorted(grid_x, cell.x_low), 0, grid_x.size - 1))
        yi = int(np.clip(np.searchsorted(grid_y, cell.y_low), 0, grid_y.size - 1))
        cell.exact_points = (
            np.array([grid_x[xi]]),
            np.array([grid_y[yi]]),
            np.array([grid_cf[xi, yi]]),
        )
        return []
    if kind == "exact":
        cell.exact_points = (outcome[1], outcome[2], outcome[3])
        return []
    if kind == "surface":
        cell.surface = outcome[1]
        cell.max_error = outcome[2]
        return []
    x_mid = (cell.x_low + cell.x_high) / 2.0
    y_mid = (cell.y_low + cell.y_high) / 2.0
    quadrants = [
        (cell.x_low, x_mid, cell.y_low, y_mid),
        (x_mid, cell.x_high, cell.y_low, y_mid),
        (cell.x_low, x_mid, y_mid, cell.y_high),
        (x_mid, cell.x_high, y_mid, cell.y_high),
    ]
    for x_low, x_high, y_low, y_high in quadrants:
        cell.children.append(
            QuadCell(
                x_low=x_low,
                x_high=x_high,
                y_low=y_low,
                y_high=y_high,
                depth=cell.depth + 1,
            )
        )
    return cell.children


def _refine_cell(
    cell: QuadCell,
    grid_x: np.ndarray,
    grid_y: np.ndarray,
    grid_cf: np.ndarray,
    config: QuadTreeConfig,
) -> None:
    spec = (cell.x_low, cell.x_high, cell.y_low, cell.y_high, cell.depth)
    outcome = _cell_outcome(spec, grid_x, grid_y, grid_cf, config)
    for child in _apply_outcome(cell, outcome, grid_x, grid_y, grid_cf):
        _refine_cell(child, grid_x, grid_y, grid_cf, config)


# --------------------------------------------------------------------- #
# Parallel frontier build
# --------------------------------------------------------------------- #

# Per-worker build context for the process executor (initializer-installed so
# the grids cross the process boundary once per worker, not once per cell).
_BUILD_CONTEXT = None


def _build_worker_init(
    grid_x: np.ndarray, grid_y: np.ndarray, grid_cf: np.ndarray, config: QuadTreeConfig
) -> None:
    global _BUILD_CONTEXT
    _BUILD_CONTEXT = (grid_x, grid_y, grid_cf, config)


def _build_worker_outcome(spec: tuple) -> tuple:
    return _cell_outcome(spec, *_BUILD_CONTEXT)


def _refine_frontier_parallel(
    root: QuadCell,
    grid_x: np.ndarray,
    grid_y: np.ndarray,
    grid_cf: np.ndarray,
    config: QuadTreeConfig,
) -> None:
    """Breadth-first refinement with each frontier fanned across a pool.

    Every frontier cell's outcome depends only on its own rectangle, so the
    fits are evaluated concurrently and applied in frontier order — the
    resulting tree is bit-identical to the serial recursion.  Threads share
    the grids in place (the LP/lstsq kernels release the GIL inside
    scipy/BLAS); process workers receive them once via the pool initializer,
    using fork's copy-on-write pages where the platform provides them.
    """
    workers = config.build_workers or os.cpu_count() or 1
    if config.build_executor == "thread":
        pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-build")
        outcome = partial(
            _cell_outcome, grid_x=grid_x, grid_y=grid_y, grid_cf=grid_cf, config=config
        )
    else:
        context = (
            multiprocessing.get_context("fork")
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_build_worker_init,
            initargs=(grid_x, grid_y, grid_cf, config),
        )
        outcome = _build_worker_outcome
    try:
        frontier = [root]
        while frontier:
            specs = [
                (cell.x_low, cell.x_high, cell.y_low, cell.y_high, cell.depth)
                for cell in frontier
            ]
            next_frontier: list[QuadCell] = []
            for cell, result in zip(frontier, pool.map(outcome, specs)):
                next_frontier.extend(
                    _apply_outcome(cell, result, grid_x, grid_y, grid_cf)
                )
            frontier = next_frontier
    finally:
        pool.shutdown()
