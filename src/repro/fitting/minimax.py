"""Minimax (L-infinity / Chebyshev) polynomial fitting.

The core fitting problem of the paper (Definition 2 / Equation 9): given
points ``(k_i, F(k_i))`` in an interval, find polynomial coefficients that
minimize the *maximum* absolute deviation.  This is a linear program in the
coefficients plus the slack ``t``:

    minimize  t
    s.t.      -t <= F(k_i) - P(k_i) <= t      for every point i

We solve it with scipy's HiGHS solver — but the LP is the *fallback*, not the
default.  Construction-time fitting goes through cheaper exact or
near-exact solvers first:

* ``degree <= 1`` — the closed-form incremental fitter
  (:mod:`repro.fitting.incremental`): running midrange for degree 0 and the
  convex-hull / rotating-calipers optimum for degree 1.  Exact, no LP.
* ``degree >= 2`` — a discrete Remez exchange: iterate tiny
  ``(degree + 2) x (degree + 2)`` linear systems on an alternating reference
  set instead of a ``2n``-row LP, exchanging the reference against the
  residual extrema until equioscillation.  The HiGHS LP remains the
  correctness oracle and automatic fallback whenever the exchange degenerates
  (coincident scaled keys, singular systems, non-convergence).
* ``degree >= n - 1`` — the polynomial interpolates all points exactly
  (error 0), so we solve the Vandermonde system directly.
* ``n == 1`` — a constant through the single point.

For the two-key case the LP over the bivariate monomial basis is kept (no
bivariate equioscillation theory backs a 2-D exchange).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from ..errors import FittingError
from .polynomial import Polynomial1D, Polynomial2D, _total_degree_terms

__all__ = [
    "MinimaxFit",
    "fit_minimax_polynomial",
    "fit_lstsq_polynomial",
    "fit_minimax_surface",
]


@dataclass(frozen=True)
class MinimaxFit:
    """Result of a minimax fit.

    Attributes
    ----------
    polynomial:
        The fitted :class:`Polynomial1D` or :class:`Polynomial2D`.
    max_error:
        The achieved maximum absolute deviation ``E(I)`` over the fitted
        points (Equation 8).
    """

    polynomial: Polynomial1D | Polynomial2D
    max_error: float


def _scaling(values: np.ndarray) -> tuple[float, float]:
    """Affine map sending ``[min, max]`` of ``values`` to ``[-1, 1]``.

    Degenerate spans (identical values, or a span so small that halving it
    underflows to zero) fall back to unit scale so the resulting polynomial
    is always well defined.
    """
    low = float(values.min())
    high = float(values.max())
    half_span = (high - low) / 2.0
    if not np.isfinite(half_span) or half_span <= 0.0:
        return low, 1.0
    return (low + high) / 2.0, half_span


def _design_matrix_1d(keys: np.ndarray, degree: int, shift: float, scale: float) -> np.ndarray:
    t = (keys - shift) / scale
    return np.vander(t, N=degree + 1, increasing=True)


def _max_abs_residual(design: np.ndarray, values: np.ndarray, coeffs: np.ndarray) -> float:
    return float(np.max(np.abs(values - design @ coeffs))) if values.size else 0.0


def _solve_lstsq_safe(design: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Least-squares solve that degrades to a constant fit when the SVD fails.

    Pathological inputs (subnormal keys mixed with normal ones, exactly
    coincident scaled keys) can make LAPACK's SVD fail to converge; a constant
    polynomial through the mean is always a valid fallback because the caller
    recomputes the achieved error afterwards.
    """
    try:
        coeffs, *_ = np.linalg.lstsq(design, values, rcond=None)
        if np.all(np.isfinite(coeffs)):
            return coeffs
    except np.linalg.LinAlgError:
        pass
    fallback = np.zeros(design.shape[1])
    fallback[0] = float(values.mean()) if values.size else 0.0
    return fallback


def _achieved_error(polynomial, keys: np.ndarray, values: np.ndarray) -> float:
    """Maximum absolute residual of the fitted polynomial, evaluated the same
    way queries evaluate it (Horner on the scaled basis), so the reported
    error always matches what callers will observe."""
    residual = np.abs(values - np.asarray(polynomial(keys)))
    return float(residual.max()) if residual.size else 0.0


def _solve_minimax_lp(design: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, float]:
    """Solve ``min_t  s.t. |values - design @ a| <= t`` with HiGHS.

    Variables are ``[a_0 ... a_p, t]``.  Coefficients are free; ``t >= 0``.
    """
    n_points, n_coeffs = design.shape
    n_vars = n_coeffs + 1
    objective = np.zeros(n_vars)
    objective[-1] = 1.0

    # design @ a - t <= values      (residual >= -t)
    # -design @ a - t <= -values    (residual <= t)
    upper = np.hstack([design, -np.ones((n_points, 1))])
    lower = np.hstack([-design, -np.ones((n_points, 1))])
    a_ub = np.vstack([upper, lower])
    b_ub = np.concatenate([values, -values])

    bounds = [(None, None)] * n_coeffs + [(0.0, None)]
    result = linprog(objective, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:
        raise FittingError(f"minimax LP failed: {result.message}")
    coeffs = result.x[:n_coeffs]
    return coeffs, float(result.x[-1])


class _RemezFailure(Exception):
    """Internal: the exchange degenerated; the caller falls back to the LP."""


def _horner(coeffs: np.ndarray, t: np.ndarray) -> np.ndarray:
    result = np.full_like(t, coeffs[-1])
    for coefficient in coeffs[-2::-1]:
        result = result * t + coefficient
    return result


def _initial_reference(t: np.ndarray, m: int) -> np.ndarray:
    """Chebyshev-extrema indices into the sorted scaled keys, made strictly
    increasing (the classic warm start for the exchange)."""
    n = t.size
    theta = np.pi * np.arange(m) / (m - 1)
    targets = (t[0] + t[-1]) / 2.0 - np.cos(theta) * (t[-1] - t[0]) / 2.0
    ref = np.clip(np.searchsorted(t, targets), 0, n - 1).astype(np.intp)
    for i in range(1, m):
        if ref[i] <= ref[i - 1]:
            ref[i] = ref[i - 1] + 1
    for i in range(m - 2, -1, -1):
        if ref[i] >= ref[i + 1]:
            ref[i] = ref[i + 1] - 1
    if ref[0] < 0 or ref[-1] >= n:
        raise _RemezFailure("cannot seat the reference set")
    return ref


def _exchange_reference(residual: np.ndarray, m: int) -> np.ndarray:
    """New reference: ``m`` consecutive alternating residual extrema.

    One extremum per sign run (vectorized via ``maximum.reduceat``); any
    window of ``m`` consecutive run extrema alternates in sign, so the
    surplus is resolved by choosing the window that contains the global
    maximum *and* maximizes the smallest magnitude inside it.  Discrete
    residuals are noisy (sampled target functions produce clusters of tiny
    oscillations around each zero crossing); maximizing the window minimum
    rejects those clusters, which would otherwise collapse the reference
    onto adjacent points and stall the exchange.
    """
    signs = residual >= 0.0
    flips = np.nonzero(signs[1:] != signs[:-1])[0] + 1
    starts = np.concatenate(([0], flips))
    if starts.size < m:
        raise _RemezFailure("fewer alternations than reference points")
    run_id = np.zeros(residual.size, dtype=np.intp)
    run_id[flips] = 1
    run_id = np.cumsum(run_id)
    magnitude = np.abs(residual)
    run_max = np.maximum.reduceat(magnitude, starts)
    candidates = np.nonzero(magnitude >= run_max[run_id])[0]
    _, first = np.unique(run_id[candidates], return_index=True)
    extrema = candidates[first]
    values = magnitude[extrema]
    if extrema.size == m:
        return extrema
    windows = np.lib.stride_tricks.sliding_window_view(values, m)
    window_mins = windows.min(axis=1)
    peak = int(np.argmax(values))
    lo = max(0, peak - m + 1)
    hi = min(values.size - m, peak)
    best = lo + int(np.argmax(window_mins[lo: hi + 1]))
    return extrema[best: best + m]


def _single_exchange(
    ref: np.ndarray, residual: np.ndarray, peak: int
) -> np.ndarray:
    """Stiefel single-point exchange: swap the residual peak into the
    reference while preserving sign alternation.

    The retained points keep ``|r| = |E|`` and the peak exceeds it, so the de
    la Vallee Poussin lower bound increases monotonically — the robust (if
    slower) fallback when no multipoint window passes the safeguard.
    """
    ref = ref.copy()
    peak_positive = residual[peak] >= 0.0
    pos = int(np.searchsorted(ref, peak))
    if pos == 0:
        if (residual[ref[0]] >= 0.0) == peak_positive:
            ref[0] = peak
        else:
            ref[1:] = ref[:-1]
            ref[0] = peak
    elif pos == ref.size:
        if (residual[ref[-1]] >= 0.0) == peak_positive:
            ref[-1] = peak
        else:
            ref[:-1] = ref[1:]
            ref[-1] = peak
    elif (residual[ref[pos - 1]] >= 0.0) == peak_positive:
        ref[pos - 1] = peak
    else:
        ref[pos] = peak
    return ref


def _solve_remez(
    t: np.ndarray,
    values: np.ndarray,
    degree: int,
    *,
    max_iterations: int = 100,
) -> np.ndarray:
    """Discrete Remez exchange over sorted, strictly increasing scaled keys.

    Each iteration solves the ``(degree + 2)``-point equioscillation system
    ``P(t_i) + (-1)^i E = y_i`` (one tiny dense solve), evaluates the
    residual over *all* points with one Horner pass, and exchanges the
    reference against the residual extrema.  Converged when the global
    residual matches the levelled error ``|E|`` up to round-off; raises
    :class:`_RemezFailure` otherwise so the caller can fall back to the LP.
    """
    n = t.size
    m = degree + 2
    if n < m:
        raise _RemezFailure("not enough points for a reference set")
    ref = np.arange(m, dtype=np.intp) if n == m else _initial_reference(t, m)
    signs = np.where(np.arange(m) % 2 == 0, 1.0, -1.0)
    tolerance = 1e-12 * (1.0 + float(np.max(np.abs(values))))
    for _ in range(max_iterations):
        system = np.empty((m, m))
        system[:, : degree + 1] = np.vander(t[ref], N=degree + 1, increasing=True)
        system[:, degree + 1] = signs
        try:
            solution = np.linalg.solve(system, values[ref])
        except np.linalg.LinAlgError as exc:
            raise _RemezFailure(str(exc)) from exc
        if not np.all(np.isfinite(solution)):
            raise _RemezFailure("non-finite exchange solution")
        coeffs = solution[: degree + 1]
        levelled = abs(float(solution[degree + 1]))
        residual = values - _horner(coeffs, t)
        worst = float(np.max(np.abs(residual)))
        if worst <= levelled + 1e-8 * worst + tolerance:
            return coeffs
        # Multipoint exchange with the de la Vallee Poussin safeguard: the
        # weakest point of the new reference must not fall below the current
        # levelled error, or convergence is lost (nearly coincident scaled
        # keys make clustered extrema with tiny alternating residuals).
        # Otherwise fall back to the monotone single-point exchange.
        try:
            new_ref = _exchange_reference(residual, m)
            if float(np.min(np.abs(residual[new_ref]))) < levelled * (1.0 - 1e-9):
                new_ref = _single_exchange(ref, residual, int(np.argmax(np.abs(residual))))
        except _RemezFailure:
            new_ref = _single_exchange(ref, residual, int(np.argmax(np.abs(residual))))
        if np.array_equal(new_ref, ref):
            raise _RemezFailure("exchange stalled short of equioscillation")
        ref = new_ref
    raise _RemezFailure("exchange did not converge")


def fit_lstsq_polynomial(
    keys: np.ndarray,
    values: np.ndarray,
    degree: int,
    *,
    rescale: bool = True,
) -> MinimaxFit:
    """Least-squares polynomial fit (not minimax-optimal).

    Used as a cheap warm start and as the ablation comparator: its max error
    is an upper bound witness for the true minimax error.
    """
    keys, values = _validate_points(keys, values)
    shift, scale = _scaling(keys) if rescale else (0.0, 1.0)
    effective_degree = min(degree, keys.size - 1)
    design = _design_matrix_1d(keys, effective_degree, shift, scale)
    coeffs = _solve_lstsq_safe(design, values)
    coeffs = _pad_coeffs(coeffs, degree)
    poly = Polynomial1D(coeffs, shift, scale)
    return MinimaxFit(polynomial=poly, max_error=_achieved_error(poly, keys, values))


def fit_minimax_polynomial(
    keys: np.ndarray,
    values: np.ndarray,
    degree: int,
    *,
    rescale: bool = True,
    solver: str = "auto",
) -> MinimaxFit:
    """Minimax polynomial fit of the points ``(keys, values)``.

    Parameters
    ----------
    keys, values:
        The points to fit (keys need not be sorted).
    degree:
        Polynomial degree ``deg``.
    rescale:
        Map keys affinely to ``[-1, 1]`` before fitting (recommended).
    solver:
        ``"auto"`` (interpolation fast path, then the exact incremental
        fitter for degree <= 1 and the Remez exchange with LP fallback for
        degree >= 2), ``"incremental"`` (force the hull fitter; degree <= 1
        only), ``"remez"`` (force the exchange, still with LP fallback on
        degeneracy), ``"lp"`` (always the HiGHS LP of Eq. 9), or ``"lstsq"``
        (plain least squares; *not* minimax optimal — ablations only).

    Returns
    -------
    MinimaxFit
        The fitted polynomial and its achieved maximum absolute error.

    Raises
    ------
    FittingError
        If the points are malformed or the LP solver fails.
    """
    keys, values = _validate_points(keys, values)
    if degree < 0:
        raise FittingError(f"degree must be >= 0, got {degree}")
    if solver not in ("auto", "incremental", "remez", "lp", "lstsq"):
        raise FittingError(f"unknown solver {solver!r}")

    if solver == "lstsq":
        return fit_lstsq_polynomial(keys, values, degree, rescale=rescale)

    if solver == "incremental" or (solver == "auto" and degree <= 1 and keys.size > degree + 1):
        from .incremental import fit_incremental_polynomial

        return fit_incremental_polynomial(keys, values, degree, rescale=rescale)

    shift, scale = _scaling(keys) if rescale else (0.0, 1.0)

    # Fast path: the polynomial has at least as many parameters as points, so
    # it can interpolate them (near-)exactly.  Least squares is used instead
    # of an exact solve so nearly-coincident keys (singular Vandermonde
    # matrices) degrade gracefully instead of raising.
    if solver in ("auto", "remez") and keys.size <= degree + 1:
        effective_degree = keys.size - 1
        design = _design_matrix_1d(keys, effective_degree, shift, scale)
        if keys.size > 1:
            coeffs = _solve_lstsq_safe(design, values)
        else:
            coeffs = values.copy()
        coeffs = _pad_coeffs(coeffs, degree)
        poly = Polynomial1D(coeffs, shift, scale)
        return MinimaxFit(polynomial=poly, max_error=_achieved_error(poly, keys, values))

    if solver in ("auto", "remez"):
        if np.all(np.diff(keys) >= 0):
            sorted_keys, sorted_values = keys, values
        else:
            order = np.argsort(keys, kind="stable")
            sorted_keys, sorted_values = keys[order], values[order]
        t = (sorted_keys - shift) / scale
        if t.size < 2 or np.all(np.diff(t) > 0):
            try:
                coeffs = _solve_remez(t, sorted_values, degree)
                poly = Polynomial1D(coeffs, shift, scale)
                return MinimaxFit(
                    polynomial=poly, max_error=_achieved_error(poly, keys, values)
                )
            except _RemezFailure:
                pass  # coincident/ill-posed reference: fall back to the LP.

    design = _design_matrix_1d(keys, degree, shift, scale)
    coeffs, error = _solve_minimax_lp(design, values)
    # The LP reports the optimal t; recompute the residual with the same
    # evaluation scheme queries use and report the larger of the two, so the
    # stored error is never optimistic.
    poly = Polynomial1D(coeffs, shift, scale)
    return MinimaxFit(polynomial=poly, max_error=max(error, _achieved_error(poly, keys, values)))


def fit_minimax_surface(
    us: np.ndarray,
    vs: np.ndarray,
    values: np.ndarray,
    degree: int,
    *,
    rescale: bool = True,
    solver: str = "auto",
) -> MinimaxFit:
    """Minimax fit of a bivariate polynomial surface (Section VI).

    Same LP as the 1-D case but over the total-degree monomial basis
    ``u^i v^j`` with ``i + j <= degree``.
    """
    us = np.asarray(us, dtype=np.float64).ravel()
    vs = np.asarray(vs, dtype=np.float64).ravel()
    values = np.asarray(values, dtype=np.float64).ravel()
    if us.size == 0:
        raise FittingError("cannot fit an empty point set")
    if not (us.size == vs.size == values.size):
        raise FittingError("coordinate and value arrays must have equal length")
    if not (
        np.all(np.isfinite(us)) and np.all(np.isfinite(vs)) and np.all(np.isfinite(values))
    ):
        raise FittingError("inputs contain NaN or infinite values")
    if degree < 0:
        raise FittingError("degree must be >= 0")

    shift_u, scale_u = _scaling(us) if rescale else (0.0, 1.0)
    shift_v, scale_v = _scaling(vs) if rescale else (0.0, 1.0)
    template = Polynomial2D(
        coeffs=np.zeros(len(_total_degree_terms(degree))),
        degree=degree,
        shift_u=shift_u,
        scale_u=scale_u,
        shift_v=shift_v,
        scale_v=scale_v,
    )
    design = template.design_matrix(us, vs)

    if solver == "lstsq" or (solver == "auto" and us.size <= design.shape[1]):
        coeffs = _solve_lstsq_safe(design, values)
        error = _max_abs_residual(design, values, coeffs)
    else:
        coeffs, lp_error = _solve_minimax_lp(design, values)
        error = max(lp_error, _max_abs_residual(design, values, coeffs))
    surface = Polynomial2D(
        coeffs=coeffs,
        degree=degree,
        shift_u=shift_u,
        scale_u=scale_u,
        shift_v=shift_v,
        scale_v=scale_v,
    )
    return MinimaxFit(polynomial=surface, max_error=error)


def _validate_points(keys: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    keys = np.asarray(keys, dtype=np.float64).ravel()
    values = np.asarray(values, dtype=np.float64).ravel()
    if keys.size == 0:
        raise FittingError("cannot fit an empty point set")
    if keys.size != values.size:
        raise FittingError("keys and values must have equal length")
    if not (np.all(np.isfinite(keys)) and np.all(np.isfinite(values))):
        raise FittingError("inputs contain NaN or infinite values")
    return keys, values


def _pad_coeffs(coeffs: np.ndarray, degree: int) -> np.ndarray:
    """Zero-pad coefficients up to ``degree + 1`` entries."""
    coeffs = np.atleast_1d(np.asarray(coeffs, dtype=np.float64))
    if coeffs.size < degree + 1:
        coeffs = np.concatenate([coeffs, np.zeros(degree + 1 - coeffs.size)])
    return coeffs
