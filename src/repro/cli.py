"""Command-line interface for building, querying and serving PolyFit indexes.

Provides ten subcommands mirroring a typical deployment workflow:

``build``
    Load a (key, measure) CSV, build a PolyFit index for the requested
    aggregate and guarantee, and write it to a JSON file.

``query``
    Load a previously built index and answer one range query.

``info``
    Print summary statistics of a built index (aggregate, delta, segments,
    payload size).

``ingest``
    Demo the streaming write path: build a base index from a prefix of the
    records, stream the rest in batches through an
    :class:`~repro.stream.UpdatablePolyFitIndex` (append → query → compact),
    and report buffer fill, epochs and probe-query accuracy along the way.

``fleet-build``
    Build a horizontally partitioned index fleet (:mod:`repro.fleet`) from
    a CSV or synthetic records and persist it as a manifest directory of
    per-partition binary codec files.

``fleet-stats``
    Print a saved fleet's stats: routing splits, per-partition key counts,
    segments, buffer fill, epochs and sizes.

``serve``
    Stand up the asyncio HTTP serving front (:mod:`repro.serve`) over a
    built index file, a fleet directory (``fleet-build`` output), or a
    synthetic updatable index: concurrent scalar requests are coalesced
    into vectorized batch calls each tick.

``query-remote``
    Smoke-test a running server: one scalar query (or ``--stats``) over
    HTTP, printed in the same shape as the local ``query`` command.
    ``--retries`` adds bounded exponential-backoff retry on 503s and
    connection errors.

``metrics``
    Dump a running server's telemetry: the Prometheus ``/metrics``
    exposition (default), a JSON registry snapshot with histogram
    percentiles (``--json``), the slow-query log (``--slowlog``) or the
    sampled trace timelines (``--traces``); ``--watch N`` re-fetches every
    N seconds to tail a live server.

``fsck``
    Verify durable artifacts offline — codec files (per-array checksums),
    write-ahead logs (frame CRCs, torn-tail classification), fleet
    directories (manifest/partition consistency) and JSON indexes.  Exits
    0 when clean, 1 when any target has integrity problems.

Example
-------
::

    python -m repro.cli build ticks.csv index.json --aggregate max --eps-abs 50
    python -m repro.cli query index.json 1000 2000 --eps-abs 50
    python -m repro.cli info index.json
    python -m repro.cli ingest --synthetic 20000 --delta 50 --max-buffer 2048
    python -m repro.cli fleet-build fleet/ --synthetic 100000 --delta 50 --num-partitions 8
    python -m repro.cli fleet-stats fleet/
    python -m repro.cli serve fleet/ --port 8080
    python -m repro.cli serve --synthetic 100000 --delta 100 --port 8080
    python -m repro.cli query-remote http://127.0.0.1:8080 1000 2000 --eps-abs 200
    python -m repro.cli metrics http://127.0.0.1:8080
    python -m repro.cli fsck fleet/ index.pfbin ingest.wal
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from typing import Sequence

import numpy as np

from .config import Aggregate, FitConfig, IndexConfig, SegmentationConfig
from .datasets.loaders import load_keyed_csv
from .errors import QueryError, ReproError
from .index import PolyFitIndex, load_index, save_index
from .queries.types import Guarantee, RangeQuery
from .stream import CompactionPolicy, UpdatablePolyFitIndex

__all__ = ["main", "build_parser", "build_serve_server"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PolyFit: approximate range aggregate queries with guarantees",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser("build", help="build an index from a CSV file")
    build.add_argument("input_csv", help="CSV file with key and measure columns")
    build.add_argument("output_index", help="path of the JSON index to write")
    build.add_argument("--aggregate", choices=[a.value for a in Aggregate],
                       default="count", help="aggregate the index answers")
    build.add_argument("--key-column", type=int, default=0)
    build.add_argument("--measure-column", type=int, default=1)
    build.add_argument("--no-header", action="store_true",
                       help="the CSV file has no header row")
    build.add_argument("--degree", type=int, default=2, help="polynomial degree")
    group = build.add_mutually_exclusive_group(required=True)
    group.add_argument("--eps-abs", type=float,
                       help="absolute error guarantee (Problem 1)")
    group.add_argument("--delta", type=float,
                       help="per-segment budget (for relative-error workloads)")

    query = subparsers.add_parser("query", help="answer one range query")
    query.add_argument("index_file", help="JSON index written by `build`")
    query.add_argument("low", type=float, help="lower key bound (inclusive)")
    query.add_argument("high", type=float, help="upper key bound (inclusive)")
    guarantee = query.add_mutually_exclusive_group()
    guarantee.add_argument("--eps-abs", type=float, help="absolute error guarantee")
    guarantee.add_argument("--eps-rel", type=float, help="relative error guarantee")

    info = subparsers.add_parser("info", help="describe a built index")
    info.add_argument("index_file", help="JSON index written by `build`")

    ingest = subparsers.add_parser(
        "ingest", help="demo streaming ingestion: append -> query -> compact"
    )
    ingest.add_argument("input_csv", nargs="?", default=None,
                        help="CSV stream source (omit when using --synthetic)")
    ingest.add_argument("--synthetic", type=int, default=None, metavar="N",
                        help="generate N synthetic append-only records instead of a CSV")
    ingest.add_argument("--aggregate", choices=[a.value for a in Aggregate],
                        default="count", help="aggregate the index answers")
    ingest.add_argument("--key-column", type=int, default=0)
    ingest.add_argument("--measure-column", type=int, default=1)
    ingest.add_argument("--no-header", action="store_true",
                        help="the CSV file has no header row")
    ingest.add_argument("--degree", type=int, default=1,
                        help="polynomial degree (1 = linear-time compaction)")
    budget = ingest.add_mutually_exclusive_group(required=True)
    budget.add_argument("--eps-abs", type=float,
                        help="absolute error guarantee (Problem 1)")
    budget.add_argument("--delta", type=float,
                        help="per-segment budget (for relative-error workloads)")
    ingest.add_argument("--base-fraction", type=float, default=0.5,
                        help="fraction of the stream used for the initial build")
    ingest.add_argument("--batch-size", type=int, default=1000,
                        help="records inserted per streaming batch")
    ingest.add_argument("--max-buffer", type=int, default=4096,
                        help="compaction threshold (CompactionPolicy.max_buffer)")
    ingest.add_argument("--seed", type=int, default=0,
                        help="seed for the synthetic stream")

    fleet_build = subparsers.add_parser(
        "fleet-build", help="build a partitioned index fleet into a directory"
    )
    fleet_build.add_argument("output_dir",
                             help="directory for the fleet manifest + partition files")
    fleet_build.add_argument("input_csv", nargs="?", default=None,
                             help="CSV source (omit when using --synthetic)")
    fleet_build.add_argument("--synthetic", type=int, default=None, metavar="N",
                             help="generate N synthetic records instead of a CSV")
    fleet_build.add_argument("--aggregate", choices=[a.value for a in Aggregate],
                             default="count", help="aggregate the fleet answers")
    fleet_build.add_argument("--key-column", type=int, default=0)
    fleet_build.add_argument("--measure-column", type=int, default=1)
    fleet_build.add_argument("--no-header", action="store_true",
                             help="the CSV file has no header row")
    fleet_build.add_argument("--degree", type=int, default=1,
                             help="polynomial degree of every partition")
    fleet_budget = fleet_build.add_mutually_exclusive_group(required=True)
    fleet_budget.add_argument("--eps-abs", type=float,
                              help="absolute error guarantee (Problem 1)")
    fleet_budget.add_argument("--delta", type=float,
                              help="per-segment budget (for relative-error workloads)")
    fleet_build.add_argument("--num-partitions", type=int, default=4,
                             help="partition count (balanced distinct-key quantiles)")
    fleet_build.add_argument("--splits", default=None,
                             help="explicit comma-separated split keys "
                                  "(overrides --num-partitions)")
    fleet_build.add_argument("--max-keys", type=int, default=None,
                             help="FleetPolicy: split partitions above this key count")
    fleet_build.add_argument("--merge-keys", type=int, default=None,
                             help="FleetPolicy: merge neighbours at or below this "
                                  "combined key count")
    fleet_build.add_argument("--auto-rebalance", action="store_true",
                             help="rebalance automatically after inserts")
    fleet_build.add_argument("--max-buffer", type=int, default=65536,
                             help="per-partition compaction threshold")
    fleet_build.add_argument("--seed", type=int, default=0,
                             help="seed for the synthetic records")

    fleet_stats = subparsers.add_parser(
        "fleet-stats", help="describe a saved fleet directory"
    )
    fleet_stats.add_argument("fleet_dir", help="directory written by fleet-build")

    serve = subparsers.add_parser(
        "serve", help="serve an index over HTTP with request coalescing"
    )
    serve.add_argument("index_file", nargs="?", default=None,
                       help="built index (JSON or binary codec) or a fleet "
                            "directory; omit with --synthetic")
    serve.add_argument("--synthetic", type=int, default=None, metavar="N",
                       help="serve an updatable index built over N synthetic records")
    serve.add_argument("--aggregate", choices=[a.value for a in Aggregate],
                       default="count", help="aggregate of the synthetic index")
    serve.add_argument("--degree", type=int, default=1,
                       help="polynomial degree of the synthetic index")
    serve.add_argument("--eps-abs", type=float, default=None,
                       help="absolute guarantee of the synthetic index")
    serve.add_argument("--delta", type=float, default=None,
                       help="per-segment budget of the synthetic index")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for the synthetic records")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 picks a free one)")
    serve.add_argument("--max-wait-ms", type=float, default=1.0,
                       help="coalescing tick: max wait before a flush")
    serve.add_argument("--max-batch", type=int, default=8192,
                       help="largest single coalesced batch call")
    serve.add_argument("--max-pending", type=int, default=65536,
                       help="admission control: max queued requests")
    serve.add_argument("--cache-size", type=int, default=0,
                       help="version-keyed result cache entries (0 = off)")
    serve.add_argument("--num-shards", type=int, default=1,
                       help="fan batches out over this many shards")
    serve.add_argument("--kernel", choices=["auto", "numba", "numpy"],
                       default="auto", help="batch kernel backend")
    serve.add_argument("--failure-policy", choices=["fail_fast", "degrade"],
                       default="fail_fast",
                       help="fleet partition failures: fail the query or "
                            "answer with a widened certified bound (206)")
    serve.add_argument("--verify", action="store_true",
                       help="verify per-array checksums while loading")
    serve.add_argument("--trace-sample-rate", type=float, default=0.0,
                       help="fraction of /query requests that record a span "
                            "timeline (0 disables tracing)")
    serve.add_argument("--trace-seed", type=int, default=None,
                       help="seed the trace sampler for deterministic runs")
    serve.add_argument("--slow-query-ms", type=float, default=250.0,
                       help="queries at or above this wall time land in "
                            "GET /slowlog")
    serve.add_argument("--log-format", choices=["plain", "json"],
                       default="plain",
                       help="json emits one access-log line per request")
    serve.add_argument("--no-instrument", action="store_true",
                       help="disable all metrics instruments (overhead A/B "
                            "baseline; /metrics exposes nothing)")

    metrics = subparsers.add_parser(
        "metrics", help="dump a running server's /metrics registry"
    )
    metrics.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8080")
    metrics.add_argument("--json", action="store_true",
                         help="print the registry snapshot as JSON (with "
                              "histogram percentiles) instead of Prometheus "
                              "text")
    metrics.add_argument("--slowlog", action="store_true",
                         help="print the server's slow-query log instead")
    metrics.add_argument("--traces", action="store_true",
                         help="print the server's sampled traces instead")
    metrics.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                         help="re-fetch and re-print every SECONDS until "
                              "interrupted (tail a live server)")
    metrics.add_argument("--timeout", type=float, default=10.0,
                         help="HTTP timeout in seconds")

    remote = subparsers.add_parser(
        "query-remote", help="smoke-test a running serve instance over HTTP"
    )
    remote.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8080")
    remote.add_argument("low", type=float, nargs="?", default=None,
                        help="lower key bound (omit with --stats)")
    remote.add_argument("high", type=float, nargs="?", default=None,
                        help="upper key bound (omit with --stats)")
    remote_guarantee = remote.add_mutually_exclusive_group()
    remote_guarantee.add_argument("--eps-abs", type=float,
                                  help="absolute error guarantee")
    remote_guarantee.add_argument("--eps-rel", type=float,
                                  help="relative error guarantee")
    remote.add_argument("--index", default="default",
                        help="named index on the server")
    remote.add_argument("--stats", action="store_true",
                        help="print the server's /stats payload instead")
    remote.add_argument("--timeout", type=float, default=10.0,
                        help="HTTP timeout in seconds")
    remote.add_argument("--retries", type=int, default=0,
                        help="retry 503s and connection errors up to this "
                             "many times (exponential backoff + jitter)")
    remote.add_argument("--deadline-ms", type=float, default=None,
                        help="per-request server-side deadline; also caps "
                             "the client's retry loop")

    fsck = subparsers.add_parser(
        "fsck", help="verify codec files, WALs, fleet dirs and JSON indexes"
    )
    fsck.add_argument("targets", nargs="+",
                      help="paths to verify: .pfbin files, WAL files, fleet "
                           "directories or JSON indexes")
    fsck.add_argument("--json", action="store_true",
                      help="emit the full report as JSON instead of text")

    return parser


def _command_build(args: argparse.Namespace) -> int:
    aggregate = Aggregate(args.aggregate)
    keys, measures = load_keyed_csv(
        args.input_csv,
        key_column=args.key_column,
        measure_column=args.measure_column,
        has_header=not args.no_header,
    )
    config = IndexConfig(
        fit=FitConfig(degree=args.degree),
        segmentation=SegmentationConfig(delta=args.delta if args.delta else 1.0),
    )
    index = PolyFitIndex.build(
        keys,
        None if aggregate is Aggregate.COUNT else measures,
        aggregate=aggregate,
        delta=args.delta,
        guarantee=Guarantee.absolute(args.eps_abs) if args.eps_abs else None,
        config=config,
    )
    save_index(index, args.output_index)
    print(
        f"built {aggregate.value} index: {index.num_segments} degree-{index.degree} "
        f"segments, delta={index.delta:g}, {index.size_in_bytes() / 1024:.2f} KiB "
        f"-> {args.output_index}"
    )
    return 0


def _command_query(args: argparse.Namespace) -> int:
    index = load_index(args.index_file)
    query = RangeQuery(args.low, args.high, index.aggregate)
    guarantee = None
    if args.eps_abs:
        guarantee = Guarantee.absolute(args.eps_abs)
    elif args.eps_rel:
        guarantee = Guarantee.relative(args.eps_rel)
    result = index.query(query, guarantee)
    bound = "n/a" if result.error_bound is None else f"{result.error_bound:g}"
    print(
        f"{index.aggregate.value}[{args.low:g}, {args.high:g}] = {result.value:g} "
        f"(guaranteed={result.guaranteed}, exact_fallback={result.exact_fallback}, "
        f"error_bound={bound})"
    )
    return 0


def _command_info(args: argparse.Namespace) -> int:
    index = load_index(args.index_file)
    print(f"aggregate:        {index.aggregate.value}")
    print(f"delta:            {index.delta:g}")
    print(f"degree:           {index.degree}")
    print(f"segments:         {index.num_segments}")
    print(f"payload size:     {index.size_in_bytes() / 1024:.2f} KiB")
    spans = [segment.num_points for segment in index.segments]
    print(f"points/segment:   min={min(spans)} max={max(spans)}")
    return 0


def _ingest_records(args: argparse.Namespace) -> tuple[np.ndarray, np.ndarray]:
    """The (keys, measures) stream: a CSV or a synthetic append-only walk."""
    if (args.input_csv is None) == (args.synthetic is None):
        raise QueryError("provide exactly one of input_csv or --synthetic N")
    if args.input_csv is not None:
        return load_keyed_csv(
            args.input_csv,
            key_column=args.key_column,
            measure_column=args.measure_column,
            has_header=not args.no_header,
        )
    if args.synthetic < 4:
        raise QueryError("--synthetic needs at least 4 records")
    rng = np.random.default_rng(args.seed)
    # Strictly increasing keys (an arrival-time stream) with noisy measures:
    # the append-only shape the tail re-segmentation fast path is built for.
    keys = np.cumsum(rng.uniform(0.1, 1.0, size=args.synthetic))
    measures = 100.0 + np.cumsum(rng.normal(0.0, 1.0, size=args.synthetic))
    return keys, np.abs(measures)


def _command_ingest(args: argparse.Namespace) -> int:
    aggregate = Aggregate(args.aggregate)
    keys, measures = _ingest_records(args)
    split = max(2, int(len(keys) * args.base_fraction))
    if not 0 < split < len(keys):
        raise QueryError(
            f"--base-fraction {args.base_fraction} leaves no records to stream"
        )
    config = IndexConfig(
        fit=FitConfig(degree=args.degree),
        segmentation=SegmentationConfig(delta=args.delta if args.delta else 1.0),
    )
    index = UpdatablePolyFitIndex.build(
        keys[:split],
        None if aggregate is Aggregate.COUNT else measures[:split],
        aggregate=aggregate,
        delta=args.delta,
        guarantee=Guarantee.absolute(args.eps_abs) if args.eps_abs else None,
        config=config,
        policy=CompactionPolicy(max_buffer=args.max_buffer, auto=True),
    )
    print(
        f"base: {split} records -> {index.num_segments} degree-{args.degree} "
        f"segments, certified bound +/-{index.certified_bound:g}, "
        f"compaction threshold {args.max_buffer}"
    )
    for start in range(split, len(keys), args.batch_size):
        stop = min(start + args.batch_size, len(keys))
        epoch_before = index.epoch
        index.insert(
            keys[start:stop],
            None if aggregate is Aggregate.COUNT else measures[start:stop],
        )
        low = float(keys[0] + 0.25 * (keys[stop - 1] - keys[0]))
        high = float(keys[0] + 0.75 * (keys[stop - 1] - keys[0]))
        probe = RangeQuery(low, high, aggregate)
        approx = index.estimate(probe)
        exact = index.exact(probe)
        compacted = " [compacted]" if index.epoch > epoch_before else ""
        print(
            f"ingested {stop}/{len(keys)}: buffer {index.buffer_size}, "
            f"epoch {index.epoch}, probe {aggregate.value}[{low:g}, {high:g}] "
            f"= {approx:g} (exact {exact:g}, |err| {abs(approx - exact):g})"
            f"{compacted}"
        )
    if index.compact():
        print("final compaction ran")
    print(
        f"done: {len(keys)} records, {index.epoch} epochs, "
        f"{index.num_segments} segments, payload "
        f"{index.size_in_bytes() / 1024:.2f} KiB"
    )
    return 0


def _command_fleet_build(args: argparse.Namespace) -> int:
    from .fleet import FleetPolicy, IndexFleet, save_fleet

    aggregate = Aggregate(args.aggregate)
    keys, measures = _ingest_records(args)
    config = IndexConfig(
        fit=FitConfig(degree=args.degree),
        segmentation=SegmentationConfig(delta=args.delta if args.delta else 1.0),
    )
    policy = FleetPolicy(
        max_keys=args.max_keys,
        merge_keys=args.merge_keys,
        auto=args.auto_rebalance,
        compaction=CompactionPolicy(max_buffer=args.max_buffer, auto=True),
    )
    splits = None
    if args.splits is not None:
        splits = [float(part) for part in args.splits.split(",") if part.strip()]
    fleet = IndexFleet.build(
        keys,
        None if aggregate is Aggregate.COUNT else measures,
        aggregate,
        delta=args.delta,
        guarantee=Guarantee.absolute(args.eps_abs) if args.eps_abs else None,
        config=config,
        policy=policy,
        splits=splits,
        num_partitions=args.num_partitions,
    )
    manifest = save_fleet(fleet, args.output_dir)
    print(
        f"built {aggregate.value} fleet: {fleet.num_partitions} partitions, "
        f"{fleet.num_keys} keys, {fleet.num_segments} segments, "
        f"delta={fleet.delta:g}, {fleet.size_in_bytes() / 1024:.2f} KiB "
        f"-> {manifest}"
    )
    return 0


def _command_fleet_stats(args: argparse.Namespace) -> int:
    import json as _json

    from .fleet import load_fleet

    fleet = load_fleet(args.fleet_dir)
    print(_json.dumps(fleet.stats(), indent=2))
    return 0


def _serve_index(args: argparse.Namespace):
    """The index to serve: a codec file, a fleet directory, or a synthetic
    updatable build."""
    if (args.index_file is None) == (args.synthetic is None):
        raise QueryError("provide exactly one of index_file or --synthetic N")
    if args.index_file is not None:
        from .fleet import is_fleet_dir, load_fleet

        if is_fleet_dir(args.index_file):
            # The fleet router stays serial here: the host's own num_shards
            # chunk-shards whole batches over the fleet snapshot, which
            # composes with the data-parallel fan-out without nesting pools.
            return load_fleet(
                args.index_file,
                verify=getattr(args, "verify", False),
                failure_policy=getattr(args, "failure_policy", "fail_fast"),
            )
        return load_index(args.index_file, verify=getattr(args, "verify", False))
    if args.synthetic < 4:
        raise QueryError("--synthetic needs at least 4 records")
    if (args.eps_abs is None) == (args.delta is None):
        raise QueryError("--synthetic needs exactly one of --eps-abs or --delta")
    aggregate = Aggregate(args.aggregate)
    rng = np.random.default_rng(args.seed)
    keys = np.cumsum(rng.uniform(0.1, 1.0, size=args.synthetic))
    measures = np.abs(100.0 + np.cumsum(rng.normal(0.0, 1.0, size=args.synthetic)))
    config = IndexConfig(
        fit=FitConfig(degree=args.degree),
        segmentation=SegmentationConfig(delta=args.delta if args.delta else 1.0),
    )
    # Updatable so the /insert and /compact endpoints work out of the box.
    return UpdatablePolyFitIndex.build(
        keys,
        None if aggregate is Aggregate.COUNT else measures,
        aggregate=aggregate,
        delta=args.delta,
        guarantee=Guarantee.absolute(args.eps_abs) if args.eps_abs else None,
        config=config,
    )


def build_serve_server(args: argparse.Namespace):
    """Wire up the (host, server) pair the ``serve`` subcommand runs.

    Factored out so tests (and embedders) can build the exact server the
    CLI would, without binding a socket or blocking on the event loop.
    """
    from .serve import EngineHost, ServeServer

    index = _serve_index(args)
    instrument = not getattr(args, "no_instrument", False)
    host = EngineHost(
        index,
        cache_size=args.cache_size,
        kernel=args.kernel,
        num_shards=args.num_shards,
        instrument=instrument,
    )
    server = ServeServer(
        host,
        max_wait_ms=args.max_wait_ms,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        instrument=instrument,
        trace_sample_rate=getattr(args, "trace_sample_rate", 0.0),
        trace_seed=getattr(args, "trace_seed", None),
        slow_query_ms=getattr(args, "slow_query_ms", 250.0),
        log_format=getattr(args, "log_format", "plain"),
    )
    return host, server


def _command_serve(args: argparse.Namespace) -> int:
    host, server = build_serve_server(args)
    index = host.index
    source = args.index_file or f"--synthetic {args.synthetic}"
    print(
        f"serving {host.aggregate.value} index ({source}): "
        f"{getattr(index, 'num_segments', '?')} segments, "
        f"updatable={host.updatable}, tick {args.max_wait_ms} ms, "
        f"max batch {args.max_batch}, cache {args.cache_size}, "
        f"shards {args.num_shards}"
    )

    async def _run() -> None:
        await server.start(args.host, args.port)
        print(f"listening on http://{args.host}:{server.port} (ctrl-c to stop)")
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()
            stats = server.coalescer.stats
            print(
                f"drained: {stats.served} served in {stats.batches} batches "
                f"(mean batch {stats.mean_batch_size:.1f}), "
                f"{stats.rejected} rejected"
            )

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _command_query_remote(args: argparse.Namespace) -> int:
    from .serve import query_remote, stats_remote

    if args.stats:
        import json as _json

        print(_json.dumps(
            stats_remote(args.url, timeout=args.timeout, retries=args.retries),
            indent=2,
        ))
        return 0
    if args.low is None or args.high is None:
        raise QueryError("provide low and high bounds (or --stats)")
    guarantee = None
    if args.eps_abs:
        guarantee = Guarantee.absolute(args.eps_abs)
    elif args.eps_rel:
        guarantee = Guarantee.relative(args.eps_rel)
    answer = query_remote(
        args.url, args.low, args.high,
        guarantee=guarantee, index=args.index, timeout=args.timeout,
        retries=args.retries, deadline_ms=args.deadline_ms,
    )
    bound = "n/a" if answer["error_bound"] is None else f"{answer['error_bound']:g}"
    partial = " [partial: degraded fleet read]" if answer.get("partial") else ""
    print(
        f"[{args.low:g}, {args.high:g}] = {answer['value']:g} "
        f"(guaranteed={answer['guaranteed']}, "
        f"exact_fallback={answer['exact_fallback']}, error_bound={bound}, "
        f"epoch={answer['epoch']}, batch_size={answer['batch_size']})"
        f"{partial}"
    )
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    from .serve import metrics_remote, request_json, slowlog_remote, traces_remote

    def fetch() -> str:
        import json as _json

        if args.slowlog:
            return _json.dumps(
                slowlog_remote(args.url, timeout=args.timeout), indent=2
            )
        if args.traces:
            return _json.dumps(
                traces_remote(args.url, timeout=args.timeout), indent=2
            )
        if args.json:
            return _json.dumps(
                request_json(args.url, "/metrics.json", timeout=args.timeout),
                indent=2,
            )
        return metrics_remote(args.url, timeout=args.timeout).rstrip("\n")

    if args.watch is None:
        print(fetch())
        return 0
    if args.watch <= 0:
        raise QueryError(f"--watch needs a positive interval, got {args.watch}")
    try:
        while True:
            print(fetch())
            print(flush=True)  # blank separator between refreshes
            time.sleep(args.watch)
    except KeyboardInterrupt:
        pass
    return 0


def _command_fsck(args: argparse.Namespace) -> int:
    from .fsck import fsck_path

    reports = [fsck_path(target) for target in args.targets]
    if args.json:
        import json as _json

        print(_json.dumps([report.to_payload() for report in reports], indent=2))
    else:
        for report in reports:
            status = "ok" if report.ok else "CORRUPT"
            print(
                f"{report.target}: {status} "
                f"({report.artifact}, {report.checked} objects checked)"
            )
            for issue in report.issues:
                print(f"  [{issue.kind}] {issue.path}: {issue.message}")
            for note in report.notes:
                print(f"  note: {note}")
    return 0 if all(report.ok for report in reports) else 1


_COMMANDS = {
    "build": _command_build,
    "query": _command_query,
    "info": _command_info,
    "ingest": _command_ingest,
    "fleet-build": _command_fleet_build,
    "fleet-stats": _command_fleet_stats,
    "serve": _command_serve,
    "query-remote": _command_query_remote,
    "metrics": _command_metrics,
    "fsck": _command_fsck,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
