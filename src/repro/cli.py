"""Command-line interface for building and querying PolyFit indexes.

Provides three subcommands mirroring a typical deployment workflow:

``build``
    Load a (key, measure) CSV, build a PolyFit index for the requested
    aggregate and guarantee, and write it to a JSON file.

``query``
    Load a previously built index and answer one range query.

``info``
    Print summary statistics of a built index (aggregate, delta, segments,
    payload size).

Example
-------
::

    python -m repro.cli build ticks.csv index.json --aggregate max --eps-abs 50
    python -m repro.cli query index.json 1000 2000 --eps-abs 50
    python -m repro.cli info index.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .config import Aggregate, FitConfig, IndexConfig, SegmentationConfig
from .datasets.loaders import load_keyed_csv
from .errors import ReproError
from .index import PolyFitIndex, load_index, save_index
from .queries.types import Guarantee, RangeQuery

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PolyFit: approximate range aggregate queries with guarantees",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser("build", help="build an index from a CSV file")
    build.add_argument("input_csv", help="CSV file with key and measure columns")
    build.add_argument("output_index", help="path of the JSON index to write")
    build.add_argument("--aggregate", choices=[a.value for a in Aggregate],
                       default="count", help="aggregate the index answers")
    build.add_argument("--key-column", type=int, default=0)
    build.add_argument("--measure-column", type=int, default=1)
    build.add_argument("--no-header", action="store_true",
                       help="the CSV file has no header row")
    build.add_argument("--degree", type=int, default=2, help="polynomial degree")
    group = build.add_mutually_exclusive_group(required=True)
    group.add_argument("--eps-abs", type=float,
                       help="absolute error guarantee (Problem 1)")
    group.add_argument("--delta", type=float,
                       help="per-segment budget (for relative-error workloads)")

    query = subparsers.add_parser("query", help="answer one range query")
    query.add_argument("index_file", help="JSON index written by `build`")
    query.add_argument("low", type=float, help="lower key bound (inclusive)")
    query.add_argument("high", type=float, help="upper key bound (inclusive)")
    guarantee = query.add_mutually_exclusive_group()
    guarantee.add_argument("--eps-abs", type=float, help="absolute error guarantee")
    guarantee.add_argument("--eps-rel", type=float, help="relative error guarantee")

    info = subparsers.add_parser("info", help="describe a built index")
    info.add_argument("index_file", help="JSON index written by `build`")

    return parser


def _command_build(args: argparse.Namespace) -> int:
    aggregate = Aggregate(args.aggregate)
    keys, measures = load_keyed_csv(
        args.input_csv,
        key_column=args.key_column,
        measure_column=args.measure_column,
        has_header=not args.no_header,
    )
    config = IndexConfig(
        fit=FitConfig(degree=args.degree),
        segmentation=SegmentationConfig(delta=args.delta if args.delta else 1.0),
    )
    index = PolyFitIndex.build(
        keys,
        None if aggregate is Aggregate.COUNT else measures,
        aggregate=aggregate,
        delta=args.delta,
        guarantee=Guarantee.absolute(args.eps_abs) if args.eps_abs else None,
        config=config,
    )
    save_index(index, args.output_index)
    print(
        f"built {aggregate.value} index: {index.num_segments} degree-{index.degree} "
        f"segments, delta={index.delta:g}, {index.size_in_bytes() / 1024:.2f} KiB "
        f"-> {args.output_index}"
    )
    return 0


def _command_query(args: argparse.Namespace) -> int:
    index = load_index(args.index_file)
    query = RangeQuery(args.low, args.high, index.aggregate)
    guarantee = None
    if args.eps_abs:
        guarantee = Guarantee.absolute(args.eps_abs)
    elif args.eps_rel:
        guarantee = Guarantee.relative(args.eps_rel)
    result = index.query(query, guarantee)
    bound = "n/a" if result.error_bound is None else f"{result.error_bound:g}"
    print(
        f"{index.aggregate.value}[{args.low:g}, {args.high:g}] = {result.value:g} "
        f"(guaranteed={result.guaranteed}, exact_fallback={result.exact_fallback}, "
        f"error_bound={bound})"
    )
    return 0


def _command_info(args: argparse.Namespace) -> int:
    index = load_index(args.index_file)
    print(f"aggregate:        {index.aggregate.value}")
    print(f"delta:            {index.delta:g}")
    print(f"degree:           {index.degree}")
    print(f"segments:         {index.num_segments}")
    print(f"payload size:     {index.size_in_bytes() / 1024:.2f} KiB")
    spans = [segment.num_points for segment in index.segments]
    print(f"points/segment:   min={min(spans)} max={max(spans)}")
    return 0


_COMMANDS = {
    "build": _command_build,
    "query": _command_query,
    "info": _command_info,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
