"""Injectable faults: dying file handles, failing fsyncs, frozen clocks.

The durability layer's correctness claim is universally quantified — *at
every byte offset a crash can interrupt a write, recovery must reproduce the
acknowledged prefix bit-identically or raise a typed error*.  Proving a
universally quantified property needs an injection point that can place the
crash anywhere, deterministically.  This module provides them:

* :class:`CrashPoint` — the exception a simulated death raises.  It derives
  from :class:`BaseException` (not ``Exception``) on purpose: production
  ``except Exception`` recovery code must never be able to swallow a
  simulated power cut.
* :class:`FaultyFile` — wraps a real binary file handle with a byte budget:
  the write that would exceed the budget is applied *partially* (exactly the
  bytes that fit, like a torn sector) and then raises :class:`CrashPoint`.
  It can also fail or count ``sync`` calls, modelling an fsync that returns
  an error.
* :class:`FaultClock` — a manual clock + sleep recorder so exponential
  backoff and deadline logic is tested against exact arithmetic, not wall
  time.
* :func:`flip_bit` / :func:`truncate_file` — post-hoc corruption of an
  artifact on disk (a bit rot / torn tail simulator).
* :class:`FlakyView` — a partition read view whose batch methods fail on
  command, driving the router's ``degrade`` policy.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = [
    "CrashPoint",
    "FaultyFile",
    "FaultClock",
    "FlakyView",
    "crash_point_offsets",
    "flip_bit",
    "truncate_file",
]


class CrashPoint(BaseException):
    """A simulated process death mid-write.

    BaseException so recovery code that catches ``Exception`` (the correct
    breadth for real I/O errors) cannot accidentally absorb the simulated
    crash and report a clean run.
    """

    def __init__(self, message: str = "simulated crash", *, offset: int = -1) -> None:
        super().__init__(message)
        self.offset = int(offset)


class FaultyFile:
    """A binary file handle that dies after writing ``fail_after`` bytes.

    Parameters
    ----------
    path:
        File to open (mode ``wb``, or ``r+b``/``ab`` via ``mode=``).
    fail_after:
        Total byte budget across all writes; the write crossing it is
        truncated to exactly the bytes that fit, flushed, and then
        :class:`CrashPoint` is raised — the on-disk state is a real torn
        write.  ``None`` disables the write fault.
    fail_sync:
        When true, every :meth:`sync` raises :class:`CrashPoint` *before*
        asking the kernel to flush (an acknowledged-but-not-durable write).

    The wrapper exposes the subset of the file protocol the durability layer
    uses (``write``/``flush``/``seek``/``tell``/``truncate``/``close`` plus
    a ``sync`` method the WAL and atomic-write helper prefer over raw
    ``os.fsync`` when present), so it can be dropped in via their
    ``file_factory``/``opener`` hooks.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fail_after: int | None = None,
        fail_sync: bool = False,
        mode: str = "wb",
    ) -> None:
        self._handle = open(path, mode)
        self._budget = None if fail_after is None else int(fail_after)
        self._fail_sync = bool(fail_sync)
        self.bytes_written = 0
        self.sync_calls = 0

    # -- file protocol ------------------------------------------------- #

    def write(self, data) -> int:
        data = bytes(data)
        if self._budget is not None and self.bytes_written + len(data) > self._budget:
            fits = self._budget - self.bytes_written
            if fits > 0:
                self._handle.write(data[:fits])
                self.bytes_written += fits
            self._handle.flush()
            raise CrashPoint(
                f"write killed at byte {self.bytes_written}", offset=self.bytes_written
            )
        self._handle.write(data)
        self.bytes_written += len(data)
        return len(data)

    def flush(self) -> None:
        self._handle.flush()

    def sync(self) -> None:
        """The durability barrier (``flush`` + ``fsync``), or its failure."""
        self.sync_calls += 1
        if self._fail_sync:
            raise CrashPoint("fsync failed")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._handle.seek(offset, whence)

    def tell(self) -> int:
        return self._handle.tell()

    def truncate(self, size: int | None = None) -> int:
        return self._handle.truncate(size)

    def fileno(self) -> int:
        return self._handle.fileno()

    def close(self) -> None:
        self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FaultClock:
    """Manual monotonic clock with a sleep recorder.

    ``time()`` returns the current reading; ``sleep(s)`` records ``s`` and
    advances the reading by exactly ``s``.  Backoff sequences and deadline
    checks become pure arithmetic the tests assert on.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)
        self.sleeps: list[float] = []

    def time(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(float(seconds))
        self.now += float(seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep (work happening)."""
        self.now += float(seconds)


class FlakyView:
    """A partition read view whose batch methods fail on command.

    Wraps any object exposing the view protocol (``estimate_batch`` /
    ``exact_batch`` / ``certified_bound`` / ``epoch`` / ``version``) and
    raises ``error`` from the wrapped batch methods while :attr:`failing`
    is true.  ``fail_next`` arms a one-shot failure counter instead, so a
    test can fail exactly the first k calls (a transient partition outage).
    """

    def __init__(self, view, *, failing: bool = True, error: Exception | None = None) -> None:
        self._view = view
        self.failing = bool(failing)
        self.fail_next = 0
        self.calls = 0
        self._error = error

    def _maybe_fail(self) -> None:
        self.calls += 1
        if self.fail_next > 0:
            self.fail_next -= 1
            raise self._make_error()
        if self.failing:
            raise self._make_error()

    def _make_error(self) -> Exception:
        if self._error is not None:
            return self._error
        from ..errors import SerializationError

        return SerializationError("injected partition failure")

    @property
    def certified_bound(self) -> float:
        return self._view.certified_bound

    @property
    def aggregate(self):
        return self._view.aggregate

    @property
    def epoch(self) -> int:
        return getattr(self._view, "epoch", 0)

    @property
    def version(self) -> int:
        return getattr(self._view, "version", 0)

    def estimate_batch(self, lows, highs):
        self._maybe_fail()
        return self._view.estimate_batch(lows, highs)

    def exact_batch(self, lows, highs):
        self._maybe_fail()
        return self._view.exact_batch(lows, highs)


def crash_point_offsets(total: int, *, stride: int = 1) -> range:
    """Every byte offset a write of ``total`` bytes can be killed at.

    ``stride`` thins the sweep for large payloads (the frame-boundary
    offsets the WAL tests care about are covered separately); offset 0
    (nothing written) and offsets inside the final byte are included.
    """
    return range(0, max(0, int(total)), max(1, int(stride)))


def flip_bit(path: str | Path, byte_offset: int, bit: int = 0) -> None:
    """Flip one bit of a file in place (deterministic bit-rot injection)."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not 0 <= byte_offset < len(data):
        raise ValueError(f"offset {byte_offset} outside file of {len(data)} bytes")
    data[byte_offset] ^= 1 << (bit % 8)
    path.write_bytes(bytes(data))


def truncate_file(path: str | Path, size: int) -> None:
    """Truncate a file to ``size`` bytes (a torn-tail simulator)."""
    path = Path(path)
    current = path.stat().st_size
    if not 0 <= size <= current:
        raise ValueError(f"cannot truncate {current}-byte file to {size}")
    with open(path, "r+b") as handle:
        handle.truncate(size)
