"""Deterministic fault-injection harness for durability testing.

Everything the crash-point sweeps need to prove the recovery invariants:
injectable file handles that die at an exact byte offset or refuse to
``fsync``, a deterministic clock for backoff/deadline tests, bit-flip and
truncation helpers for corrupting artifacts on disk, and a flaky partition
view for exercising the fleet router's ``degrade`` policy.  Shipped inside
the library (not under ``tests/``) so benchmarks and downstream users can
run the same sweeps against their own deployments.
"""

from .faults import (
    CrashPoint,
    FaultClock,
    FaultyFile,
    FlakyView,
    crash_point_offsets,
    flip_bit,
    truncate_file,
)

__all__ = [
    "CrashPoint",
    "FaultClock",
    "FaultyFile",
    "FlakyView",
    "crash_point_offsets",
    "flip_bit",
    "truncate_file",
]
