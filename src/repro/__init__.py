"""repro — reproduction of PolyFit (EDBT 2021).

PolyFit answers approximate range aggregate queries (COUNT, SUM, MIN, MAX)
with deterministic absolute/relative error guarantees by indexing piecewise
minimax-fitted polynomials instead of individual keys.

Quickstart
----------
>>> import numpy as np
>>> from repro import PolyFitIndex, RangeQuery, Aggregate, Guarantee
>>> keys = np.sort(np.random.default_rng(0).uniform(0, 1000, size=10_000))
>>> index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT,
...                            guarantee=Guarantee.absolute(100))
>>> result = index.query(RangeQuery(100, 600, Aggregate.COUNT),
...                      Guarantee.absolute(100))
>>> abs(result.value - np.count_nonzero((keys >= 100) & (keys <= 600))) <= 100
True

Batch queries
-------------
Workloads should go through :meth:`PolyFitIndex.query_batch`, which answers
N queries with O(1) NumPy calls over the index's flat coefficient-matrix
layout (50-100x the throughput of the per-query loop):

>>> lows = np.array([100.0, 200.0, 300.0])
>>> highs = np.array([600.0, 700.0, 800.0])
>>> batch = index.query_batch(lows, highs, Guarantee.absolute(100))
>>> batch.values.shape
(3,)

Large workloads can additionally be fanned out across threads or processes
with :class:`ShardedQueryEngine` (bit-identical to the serial path), and
built indexes persist through either the portable JSON codec or the
zero-copy binary codec (:func:`save_index_binary` / mmap loading).

See README.md for the quickstart and benchmark entry points.
"""

from .config import (
    Aggregate,
    GuaranteeKind,
    FitConfig,
    SegmentationConfig,
    IndexConfig,
    QuadTreeConfig,
    DEFAULT_DEGREE,
)
from .errors import (
    ReproError,
    DataError,
    FittingError,
    SegmentationError,
    QueryError,
    GuaranteeNotSatisfiedError,
    NotSupportedError,
    SerializationError,
)
from .queries import (
    RangeQuery,
    RangeQuery2D,
    QueryResult,
    BatchQueryResult,
    Guarantee,
    generate_range_queries,
    generate_rectangle_queries,
    QueryEngine,
    ShardedQueryEngine,
    evaluate_accuracy,
)
from .index import (
    CellDirectory,
    SegmentDirectory,
    QuadDirectory,
    DeltaSnapshot,
    DirectoryOverlay,
    PolyFitIndex,
    PolyFit2DIndex,
    save_index,
    load_index,
    save_index_binary,
    load_index_binary,
    index_to_dict,
    index_from_dict,
)
from .stream import (
    CompactionPolicy,
    DeltaBuffer,
    UpdatablePolyFitIndex,
    UpdatablePolyFit2DIndex,
)
from .fleet import (
    PartitionMap,
    Partition,
    FleetPolicy,
    FleetRouter,
    IndexFleet,
    FleetSnapshot,
    Fleet2D,
    save_fleet,
    load_fleet,
)
from .fitting import (
    Polynomial1D,
    Polynomial2D,
    PolynomialBank,
    SurfaceBank,
    fit_minimax_polynomial,
    fit_lstsq_polynomial,
    fit_minimax_surface,
    greedy_segmentation,
    dp_segmentation,
)
from .functions import (
    build_cumulative_function,
    build_key_measure_function,
    build_cumulative_2d,
    CumulativeFunction,
    KeyMeasureFunction,
    Cumulative2D,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "Aggregate",
    "GuaranteeKind",
    "FitConfig",
    "SegmentationConfig",
    "IndexConfig",
    "QuadTreeConfig",
    "DEFAULT_DEGREE",
    # errors
    "ReproError",
    "DataError",
    "FittingError",
    "SegmentationError",
    "QueryError",
    "GuaranteeNotSatisfiedError",
    "NotSupportedError",
    "SerializationError",
    # queries
    "RangeQuery",
    "RangeQuery2D",
    "QueryResult",
    "BatchQueryResult",
    "Guarantee",
    "generate_range_queries",
    "generate_rectangle_queries",
    "QueryEngine",
    "ShardedQueryEngine",
    "evaluate_accuracy",
    # indexes
    "CellDirectory",
    "SegmentDirectory",
    "QuadDirectory",
    "DeltaSnapshot",
    "DirectoryOverlay",
    "PolyFitIndex",
    "PolyFit2DIndex",
    "save_index",
    "load_index",
    "save_index_binary",
    "load_index_binary",
    "index_to_dict",
    "index_from_dict",
    # streaming ingestion
    "CompactionPolicy",
    "DeltaBuffer",
    "UpdatablePolyFitIndex",
    "UpdatablePolyFit2DIndex",
    # partitioned fleet
    "PartitionMap",
    "Partition",
    "FleetPolicy",
    "FleetRouter",
    "IndexFleet",
    "FleetSnapshot",
    "Fleet2D",
    "save_fleet",
    "load_fleet",
    # fitting
    "Polynomial1D",
    "Polynomial2D",
    "PolynomialBank",
    "SurfaceBank",
    "fit_minimax_polynomial",
    "fit_lstsq_polynomial",
    "fit_minimax_surface",
    "greedy_segmentation",
    "dp_segmentation",
    # functions
    "build_cumulative_function",
    "build_key_measure_function",
    "build_cumulative_2d",
    "CumulativeFunction",
    "KeyMeasureFunction",
    "Cumulative2D",
]
