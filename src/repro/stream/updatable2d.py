"""The two-key updatable PolyFit index (minimal delta-buffer variant).

:class:`UpdatablePolyFit2DIndex` pairs a base
:class:`~repro.index.polyfit2d.PolyFit2DIndex` with a point buffer whose
query contribution is served *exactly* by a per-epoch
:class:`~repro.functions.cumulative2d.Cumulative2D` over the buffered
points — so, as in 1-D, the certified ``4 * delta`` bound (Lemma 6) holds
with a non-empty buffer.  Compaction is a full rebuild over the merged point
set (bounded by the policy threshold); incremental quadtree compaction — the
2-D analogue of the tail re-segmentation — is a ROADMAP follow-up.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from ..config import Aggregate, QuadTreeConfig
from ..errors import DataError, SerializationError
from ..functions.cumulative2d import Cumulative2D, build_cumulative_2d
from ..index.polyfit2d import PolyFit2DIndex
from ..queries.batch import resolve_batch_certificates
from ..queries.types import BatchQueryResult, Guarantee, QueryResult, RangeQuery2D
from .policy import CompactionPolicy
from .updatable import IngestMetrics, _open_fresh_wal, _replay_wal
from .wal import WriteAheadLog

__all__ = ["UpdatablePolyFit2DIndex"]


class _Overlay2D:
    """Frozen per-epoch read view: base estimate + exact buffered part."""

    def __init__(
        self, base: PolyFit2DIndex, delta_exact: Cumulative2D | None, epoch: int
    ) -> None:
        self._base = base
        self._delta_exact = delta_exact
        self._epoch = int(epoch)

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the overlay answers."""
        return self._base.aggregate

    @property
    def certified_bound(self) -> float:
        """Certified absolute bound — the base's; the delta part is exact."""
        return self._base.certified_bound

    @property
    def epoch(self) -> int:
        """Flush epoch this overlay was frozen at."""
        return self._epoch

    @property
    def version(self) -> int:
        """Cache-key version: the frozen epoch (the view never mutates)."""
        return self._epoch

    def _contribution(self, x_lows, x_highs, y_lows, y_highs) -> np.ndarray | float:
        if self._delta_exact is None:
            return 0.0
        return self._delta_exact.range_count_batch(x_lows, x_highs, y_lows, y_highs)

    def estimate_batch(self, x_lows, x_highs, y_lows, y_highs) -> np.ndarray:
        """Combined approximate answers for N rectangles."""
        base = self._base.estimate_batch(x_lows, x_highs, y_lows, y_highs)
        return base + self._contribution(x_lows, x_highs, y_lows, y_highs)

    def exact_batch(self, x_lows, x_highs, y_lows, y_highs) -> np.ndarray:
        """Combined exact answers for N rectangles."""
        base = self._base.exact_batch(x_lows, x_highs, y_lows, y_highs)
        return base + self._contribution(x_lows, x_highs, y_lows, y_highs)

    def query_batch(
        self, x_lows, x_highs, y_lows, y_highs, guarantee: Guarantee | None = None
    ) -> BatchQueryResult:
        """Answer N rectangle queries with the base's guarantee semantics."""
        approx = self.estimate_batch(x_lows, x_highs, y_lows, y_highs)
        return resolve_batch_certificates(
            approx,
            error_bound=self.certified_bound,
            guarantee=guarantee,
            exact_for_mask=lambda mask: self.exact_batch(
                np.asarray(x_lows, dtype=np.float64)[mask],
                np.asarray(x_highs, dtype=np.float64)[mask],
                np.asarray(y_lows, dtype=np.float64)[mask],
                np.asarray(y_highs, dtype=np.float64)[mask],
            ),
            absolute_fallback=False,
        )

    def estimate(self, query: RangeQuery2D) -> float:
        """Combined approximate answer for one rectangle."""
        return float(
            self.estimate_batch(
                [query.x_low], [query.x_high], [query.y_low], [query.y_high]
            )[0]
        )

    def exact(self, query: RangeQuery2D) -> float:
        """Combined exact answer for one rectangle."""
        return float(
            self.exact_batch(
                [query.x_low], [query.x_high], [query.y_low], [query.y_high]
            )[0]
        )

    def query(self, query: RangeQuery2D, guarantee: Guarantee | None = None) -> QueryResult:
        """Answer one rectangle query (via the batch path)."""
        return self.query_batch(
            [query.x_low], [query.x_high], [query.y_low], [query.y_high], guarantee
        ).to_results()[0]


class UpdatablePolyFit2DIndex:
    """PolyFit2D with an insert path: point buffer, epochs, rebuild compaction."""

    def __init__(
        self,
        base: PolyFit2DIndex,
        policy: CompactionPolicy | None = None,
        *,
        wal_path: str | Path | None = None,
        wal_sync_every: int = 1,
        wal_opener=None,
    ) -> None:
        self._base = base
        self._policy = policy or CompactionPolicy()
        self._x_chunks: list[np.ndarray] = []
        self._y_chunks: list[np.ndarray] = []
        self._w_chunks: list[np.ndarray] = []
        self._size = 0
        self._epoch = 0
        self._version = 0
        self._overlay: _Overlay2D | None = None
        # Durability (mirrors the 1-D index): log first, apply second.
        self._wal: WriteAheadLog | None = None
        self._replaying = False
        self._restored_wal_counts: dict | None = None
        self._obs = IngestMetrics()
        if wal_path is not None:
            self._wal = _open_fresh_wal(
                wal_path, sync_every=wal_sync_every, opener=wal_opener
            )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        xs: np.ndarray,
        ys: np.ndarray,
        measures: np.ndarray | None = None,
        *,
        delta: float | None = None,
        guarantee: Guarantee | None = None,
        config: QuadTreeConfig | None = None,
        grid_resolution: int = 96,
        aggregate: Aggregate = Aggregate.COUNT,
        policy: CompactionPolicy | None = None,
        wal_path: str | Path | None = None,
        wal_sync_every: int = 1,
        wal_opener=None,
    ) -> "UpdatablePolyFit2DIndex":
        """Build the base 2-D index from points and make it updatable."""
        base = PolyFit2DIndex.build(
            xs,
            ys,
            measures=measures,
            delta=delta,
            guarantee=guarantee,
            config=config,
            grid_resolution=grid_resolution,
            aggregate=aggregate,
        )
        return cls(
            base, policy=policy, wal_path=wal_path,
            wal_sync_every=wal_sync_every, wal_opener=wal_opener,
        )

    @classmethod
    def wrap(
        cls,
        index: PolyFit2DIndex,
        policy: CompactionPolicy | None = None,
        *,
        wal_path: str | Path | None = None,
        wal_sync_every: int = 1,
        wal_opener=None,
    ) -> "UpdatablePolyFit2DIndex":
        """Adopt an already-built static 2-D index as the base."""
        return cls(
            index, policy=policy, wal_path=wal_path,
            wal_sync_every=wal_sync_every, wal_opener=wal_opener,
        )

    @classmethod
    def _restore(
        cls,
        base: PolyFit2DIndex,
        policy: CompactionPolicy,
        delta_xs: np.ndarray,
        delta_ys: np.ndarray,
        delta_ws: np.ndarray | None,
        *,
        epoch: int,
    ) -> "UpdatablePolyFit2DIndex":
        """Codec entry point: rebuild with a persisted point buffer and epoch.

        Bypasses auto-compaction so a loaded index reproduces the persisted
        snapshot byte for byte (same buffer, same epoch).
        """
        index = cls(base, policy=policy)
        delta_xs = np.asarray(delta_xs, dtype=np.float64)
        if delta_xs.size:
            index._x_chunks.append(delta_xs.copy())
            index._y_chunks.append(np.asarray(delta_ys, dtype=np.float64).copy())
            ws = (
                np.asarray(delta_ws, dtype=np.float64).copy()
                if delta_ws is not None
                else np.ones_like(delta_xs)
            )
            index._w_chunks.append(ws)
            index._size = int(delta_xs.size)
        index._epoch = int(epoch)
        return index

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def base(self) -> PolyFit2DIndex:
        """The current immutable base index (replaced by compaction)."""
        return self._base

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the index answers."""
        return self._base.aggregate

    @property
    def delta(self) -> float:
        """Per-cell fitting budget of the base."""
        return self._base.delta

    @property
    def certified_bound(self) -> float:
        """Certified absolute bound — unchanged by the exact delta buffer."""
        return self._base.certified_bound

    @property
    def policy(self) -> CompactionPolicy:
        """The compaction policy."""
        return self._policy

    @property
    def epoch(self) -> int:
        """Number of completed compactions (flush epochs)."""
        return self._epoch

    @property
    def version(self) -> int:
        """Monotone write counter: bumped by every insert and compaction.

        Unlike :attr:`epoch` (compactions only), the version changes on
        *every* visible mutation, so result caches keyed on it can never
        serve an answer computed against a different index state.
        """
        return self._version

    @property
    def buffer_size(self) -> int:
        """Number of points currently buffered."""
        return self._size

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    def _coerce_insert(
        self, xs: np.ndarray, ys: np.ndarray, measures: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Validate and coerce an insert chunk without applying it (so a
        rejected chunk never reaches the WAL — replay must never fail)."""
        xs = np.atleast_1d(np.asarray(xs, dtype=np.float64))
        ys = np.atleast_1d(np.asarray(ys, dtype=np.float64))
        if xs.ndim != 1 or xs.shape != ys.shape:
            raise DataError("inserted coordinates must be equal-length 1-D arrays")
        if xs.size == 0:
            return xs, ys, xs
        if not (np.all(np.isfinite(xs)) and np.all(np.isfinite(ys))):
            raise DataError("inserted coordinates contain NaN or infinite values")
        if self.aggregate is Aggregate.SUM:
            if measures is None:
                raise DataError("SUM inserts require per-point measures")
            measures = np.atleast_1d(np.asarray(measures, dtype=np.float64))
            if measures.shape != xs.shape:
                raise DataError("inserted measures must match the coordinates")
            if not np.all(np.isfinite(measures)):
                raise DataError("inserted measures contain NaN or infinite values")
            if np.any(measures < 0):
                raise DataError("SUM inserts require non-negative measures")
        else:
            measures = np.ones_like(xs)
        return xs, ys, measures

    def insert(
        self, xs: np.ndarray, ys: np.ndarray, measures: np.ndarray | None = None
    ) -> int:
        """Buffer a chunk of points; compacts when the policy says so.

        With a WAL attached the chunk is logged before it is applied, so an
        acknowledged insert survives a crash (see the 1-D index for the
        group-commit caveat).
        """
        xs, ys, measures = self._coerce_insert(xs, ys, measures)
        if xs.size == 0:
            return 0
        if self._wal is not None and not self._replaying:
            self._wal.append_insert2d(
                xs, ys, measures if self.aggregate is Aggregate.SUM else None
            )
        self._x_chunks.append(xs.copy())
        self._y_chunks.append(ys.copy())
        self._w_chunks.append(measures.copy())
        self._size += xs.size
        self._overlay = None
        self._version += 1
        if (
            not self._replaying
            and self._policy.auto
            and self._policy.should_compact(self._size, self._base_points()[0].size)
        ):
            self.compact()
        return int(xs.size)

    def compact(self) -> bool:
        """Rebuild the base over the merged point set; True if it ran.

        The rebuild reuses the base's configuration (delta, quadtree knobs,
        grid resolution), so the result is bit-identical to a from-scratch
        build over the merged points.
        """
        if self._size == 0:
            return False
        t0 = time.perf_counter()
        self._obs.trigger_buffer_size.observe(self._size)
        base_xs, base_ys, base_ws = self._base_points()
        xs = np.concatenate([base_xs] + self._x_chunks)
        ys = np.concatenate([base_ys] + self._y_chunks)
        if self.aggregate is Aggregate.SUM:
            weights = np.concatenate(
                [base_ws if base_ws is not None else np.ones_like(base_xs)]
                + self._w_chunks
            )
        else:
            weights = None
        self._base = PolyFit2DIndex.build(
            xs,
            ys,
            measures=weights,
            delta=self._base.delta,
            config=self._base.config,
            grid_resolution=self._base.grid_resolution,
            aggregate=self.aggregate,
        )
        self._x_chunks.clear()
        self._y_chunks.clear()
        self._w_chunks.clear()
        self._size = 0
        self._overlay = None
        self._epoch += 1
        self._version += 1
        if self._wal is not None and not self._replaying:
            # After the rebuild, like the 1-D index: a crash in between just
            # replays the buffered points over the old base.
            self._wal.append_compaction(self._epoch)
        self._obs.compactions_total.inc()
        self._obs.compaction_seconds.observe(time.perf_counter() - t0)
        return True

    def _base_points(self) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        exact = self._base._exact  # noqa: SLF001 - stream is a friend module
        return exact.xs, exact.ys, exact.weights

    def _buffer_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Buffered points in arrival order (the codec/checkpoint input)."""
        if not self._x_chunks:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty.copy(), empty.copy()
        return (
            np.concatenate(self._x_chunks),
            np.concatenate(self._y_chunks),
            np.concatenate(self._w_chunks),
        )

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #

    @property
    def wal(self) -> WriteAheadLog | None:
        """The attached write-ahead log, if any."""
        return self._wal

    def metrics_families(self) -> list:
        """Compaction + WAL metric families, for registry registration."""
        fams = self._obs.families()
        if self._wal is not None:
            fams += self._wal.metrics.families()
        return fams

    def checkpoint(self, path: str | Path) -> Path:
        """Persist the full state atomically and seal the WAL position."""
        from ..index.codec import save_index_binary

        path = Path(path)
        save_index_binary(self, path)
        if self._wal is not None:
            self._wal.append_seal(epoch=self._epoch, buffer_size=self._size)
        return path

    @classmethod
    def recover(
        cls,
        checkpoint,
        wal_path: str | Path,
        *,
        policy: CompactionPolicy | None = None,
        wal_sync_every: int = 1,
        wal_opener=None,
        verify: bool = False,
    ) -> "UpdatablePolyFit2DIndex":
        """Rebuild the pre-crash state: checkpoint (or base) + WAL replay.

        Mirrors :meth:`UpdatablePolyFitIndex.recover` — ``checkpoint`` is a
        codec file path, a loaded :class:`UpdatablePolyFit2DIndex`, or a bare
        :class:`~repro.index.polyfit2d.PolyFit2DIndex`.
        """
        if isinstance(checkpoint, (str, Path)):
            from ..index.codec import load_index_binary

            index = load_index_binary(checkpoint, mmap=False, verify=verify)
        else:
            index = checkpoint
        if isinstance(index, PolyFit2DIndex):
            index = cls(index, policy=policy)
        if not isinstance(index, cls):
            raise SerializationError(
                f"cannot recover a 2-D updatable index from {type(index).__name__}"
            )
        wal = WriteAheadLog(wal_path, sync_every=wal_sync_every, opener=wal_opener)
        _replay_wal(index, wal, two_dimensional=True)
        return index

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #

    def snapshot(self) -> _Overlay2D:
        """Frozen overlay of the current epoch (cached until a mutation)."""
        if self._overlay is None:
            delta_exact = None
            if self._size:
                delta_exact = build_cumulative_2d(
                    np.concatenate(self._x_chunks),
                    np.concatenate(self._y_chunks),
                    weights=(
                        np.concatenate(self._w_chunks)
                        if self.aggregate is Aggregate.SUM
                        else None
                    ),
                )
            self._overlay = _Overlay2D(self._base, delta_exact, self._epoch)
        return self._overlay

    def estimate(self, query: RangeQuery2D) -> float:
        """Combined approximate answer for one rectangle."""
        return self.snapshot().estimate(query)

    def exact(self, query: RangeQuery2D) -> float:
        """Combined exact answer for one rectangle."""
        return self.snapshot().exact(query)

    def query(self, query: RangeQuery2D, guarantee: Guarantee | None = None) -> QueryResult:
        """Answer one rectangle query with guarantee handling."""
        return self.snapshot().query(query, guarantee)

    def estimate_batch(self, x_lows, x_highs, y_lows, y_highs) -> np.ndarray:
        """Combined approximate answers for N rectangles."""
        return self.snapshot().estimate_batch(x_lows, x_highs, y_lows, y_highs)

    def exact_batch(self, x_lows, x_highs, y_lows, y_highs) -> np.ndarray:
        """Combined exact answers for N rectangles."""
        return self.snapshot().exact_batch(x_lows, x_highs, y_lows, y_highs)

    def query_batch(
        self, x_lows, x_highs, y_lows, y_highs, guarantee: Guarantee | None = None
    ) -> BatchQueryResult:
        """Answer N rectangle queries with certificates over combined values."""
        return self.snapshot().query_batch(x_lows, x_highs, y_lows, y_highs, guarantee)

    def size_in_bytes(self) -> int:
        """Base directory payload plus the buffered point arrays."""
        return self._base.size_in_bytes() + int(24 * self._size)
