"""Streaming ingestion: the delta-buffer write path over the static indexes.

The PolyFit structures are build-once; this package adds the system's first
mutation lifecycle — inserts, flush epochs, snapshots and compaction:

* :class:`~repro.stream.policy.CompactionPolicy` — when the buffer folds
  into the base (record cap, base-fraction cap, auto/manual).
* :class:`~repro.stream.buffer.DeltaBuffer` — arrival-order record buffer
  with a cached sorted snapshot per flush epoch.
* :class:`~repro.stream.updatable.UpdatablePolyFitIndex` — the one-key
  updatable index: exact delta contributions preserve the certified error
  bounds, and compaction re-segments only the tail from the last unaffected
  segment boundary (resuming the degree-1 corridor scanner for append-only
  workloads), producing boundaries identical to a from-scratch build.
* :class:`~repro.stream.updatable2d.UpdatablePolyFit2DIndex` — the minimal
  two-key variant: exact :class:`~repro.functions.cumulative2d.Cumulative2D`
  merge over the buffered points, full rebuild at compaction.
* :class:`~repro.stream.wal.WriteAheadLog` — CRC-framed durability for the
  insert path: both updatable indexes accept ``wal_path=`` so acknowledged
  inserts replay bit-identically after a crash via ``recover()``, with torn
  log tails truncated at the last valid frame (see ``docs/FORMATS.md``).
"""

from .buffer import DeltaBuffer
from .policy import CompactionPolicy
from .updatable import UpdatablePolyFitIndex
from .updatable2d import UpdatablePolyFit2DIndex
from .wal import WalRecord, WalScan, WriteAheadLog, scan_wal

__all__ = [
    "CompactionPolicy",
    "DeltaBuffer",
    "UpdatablePolyFitIndex",
    "UpdatablePolyFit2DIndex",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "scan_wal",
]
