"""Compaction policy for the streaming write path.

The delta buffer gives O(log m) exact query contributions but costs memory
and one extra ``searchsorted`` per query side; compaction folds it into the
base directory at the price of a re-segmentation pause.  The policy decides
when that trade flips.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QueryError

__all__ = ["CompactionPolicy"]


@dataclass(frozen=True)
class CompactionPolicy:
    """When an updatable index folds its delta buffer into the base.

    Parameters
    ----------
    max_buffer:
        Hard cap on buffered records; reaching it triggers compaction.
    max_fraction:
        Optional cap as a fraction of the base function size — useful for
        small indexes where a fixed record count would let the buffer dwarf
        the base.  The effective threshold is the smaller of the two caps.
    auto:
        Whether inserts compact automatically when the threshold is reached.
        With ``auto=False`` the buffer grows until :meth:`~repro.stream.
        updatable.UpdatablePolyFitIndex.compact` is called explicitly
        (bench/bulk-load mode).
    """

    max_buffer: int = 65_536
    max_fraction: float | None = None
    auto: bool = True

    def __post_init__(self) -> None:
        if self.max_buffer < 1:
            raise QueryError(f"max_buffer must be >= 1, got {self.max_buffer}")
        if self.max_fraction is not None and self.max_fraction <= 0:
            raise QueryError(f"max_fraction must be positive, got {self.max_fraction}")

    def to_payload(self) -> dict:
        """JSON-compatible form shared by the binary and JSON codecs."""
        return {
            "max_buffer": self.max_buffer,
            "max_fraction": self.max_fraction,
            "auto": self.auto,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CompactionPolicy":
        """Inverse of :meth:`to_payload`."""
        max_fraction = payload["max_fraction"]
        return cls(
            max_buffer=int(payload["max_buffer"]),
            max_fraction=None if max_fraction is None else float(max_fraction),
            auto=bool(payload["auto"]),
        )

    def threshold(self, base_size: int) -> int:
        """Effective buffered-record threshold for a base of ``base_size``."""
        limit = self.max_buffer
        if self.max_fraction is not None:
            limit = min(limit, max(1, int(base_size * self.max_fraction)))
        return limit

    def should_compact(self, buffered: int, base_size: int) -> bool:
        """Whether a buffer of ``buffered`` records is due for compaction."""
        return buffered >= self.threshold(base_size)
