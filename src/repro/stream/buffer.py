"""Mutable in-memory delta buffer feeding the updatable indexes.

:class:`DeltaBuffer` absorbs inserted (key, measure) records in arrival
order — appending a chunk is O(chunk) with no sort — and materializes a
frozen, key-sorted :class:`~repro.index.overlay.DeltaSnapshot` lazily on the
first query after a mutation.  The snapshot is cached until the next insert,
so a read-heavy phase pays the sort once per flush epoch, which is what
keeps the per-query overhead at one ``searchsorted`` per side.
"""

from __future__ import annotations

import numpy as np

from ..config import Aggregate
from ..errors import DataError
from ..index.overlay import DeltaSnapshot

__all__ = ["DeltaBuffer"]


class DeltaBuffer:
    """Arrival-order record buffer with a cached sorted snapshot."""

    def __init__(self, aggregate: Aggregate) -> None:
        self._aggregate = aggregate
        self._key_chunks: list[np.ndarray] = []
        self._measure_chunks: list[np.ndarray] = []
        self._size = 0
        self._snapshot: DeltaSnapshot | None = None

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the buffered records feed."""
        return self._aggregate

    def __len__(self) -> int:
        return self._size

    @property
    def is_empty(self) -> bool:
        """Whether the buffer holds no records."""
        return self._size == 0

    def coerce(self, keys: np.ndarray, measures: np.ndarray | None = None):
        """Validate and coerce an insert chunk without applying it.

        Validation mirrors the build path: finite keys, COUNT forces unit
        measures, SUM requires non-negative measures (the cumulative function
        must stay monotone), MAX/MIN require measures.  Split from
        :meth:`insert` so the write-ahead log can validate *before* logging —
        a rejected chunk must never reach the log, or replay would fail on it.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.float64))
        if keys.ndim != 1:
            raise DataError("inserted keys must be a 1-D array")
        if keys.size == 0:
            return keys, keys
        if not np.all(np.isfinite(keys)):
            raise DataError("inserted keys contain NaN or infinite values")
        if self._aggregate is Aggregate.COUNT:
            measures = np.ones_like(keys)
        else:
            if measures is None:
                raise DataError(f"{self._aggregate.value} inserts require measures")
            measures = np.atleast_1d(np.asarray(measures, dtype=np.float64))
            if measures.shape != keys.shape:
                raise DataError("inserted keys and measures must have equal length")
            if not np.all(np.isfinite(measures)):
                raise DataError("inserted measures contain NaN or infinite values")
            if self._aggregate is Aggregate.SUM and np.any(measures < 0):
                raise DataError("SUM inserts require non-negative measures")
        return keys, measures

    def insert(self, keys: np.ndarray, measures: np.ndarray | None = None) -> int:
        """Append a chunk of records; returns the number inserted.

        Keys may arrive in any order — ordering is resolved at
        snapshot/compaction time (see :meth:`coerce` for the validation).
        """
        keys, measures = self.coerce(keys, measures)
        if keys.size == 0:
            return 0
        self._key_chunks.append(keys.copy())
        self._measure_chunks.append(measures.copy())
        self._size += keys.size
        self._snapshot = None
        return int(keys.size)

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """All buffered records in arrival order (the compaction input)."""
        if not self._key_chunks:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty.copy()
        return (
            np.concatenate(self._key_chunks),
            np.concatenate(self._measure_chunks),
        )

    def snapshot(self) -> DeltaSnapshot:
        """Frozen sorted view of the current contents (cached until mutated)."""
        if self._snapshot is None:
            keys, measures = self.arrays()
            self._snapshot = DeltaSnapshot(keys, measures, self._aggregate)
        return self._snapshot

    def clear(self) -> None:
        """Drop all buffered records (after a compaction folded them in)."""
        self._key_chunks.clear()
        self._measure_chunks.clear()
        self._size = 0
        self._snapshot = None

    def size_in_bytes(self) -> int:
        """Footprint of the raw chunks (snapshot payload counted separately)."""
        return int(16 * self._size)
