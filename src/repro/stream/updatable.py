"""The one-key updatable PolyFit index: delta buffer + tail re-segmentation.

:class:`UpdatablePolyFitIndex` is the system's first mutation lifecycle over
the otherwise build-once PolyFit structures.  It wraps an immutable base
:class:`~repro.index.polyfit1d.PolyFitIndex` with a sorted in-memory delta
buffer and serves queries through a :class:`~repro.index.overlay.
DirectoryOverlay`: the base directory's certified estimate plus the buffer's
*exact* contribution, so every error guarantee of the static index survives
a non-empty buffer unchanged.

Compaction folds the buffer into the base.  The invariant it maintains is
strong: **post-compaction segment boundaries are identical to a from-scratch
Greedy Segmentation of the merged target function** — for *any* workload,
not just append-only ones.  That follows from GS being a deterministic
left-to-right greedy (Theorem 1): a base segment whose closing witness
sample precedes the first merged sample that changed would be re-derived
verbatim by a from-scratch build, so only the suffix from the last
unaffected boundary needs re-segmentation:

* **append-only** (all inserted keys above the base key span) — only the
  open last segment is re-examined.  For degree 1 the index keeps the
  segment's :class:`~repro.fitting.incremental.CorridorScanner` alive
  between compactions, so the appended tail is scanned by *resuming* the
  corridor instead of re-scanning the segment — the FITing-tree/PGM-style
  delta-buffer trick, with exact (not heuristic) boundaries.
* **out-of-order / duplicate keys** — a bounded merge-rebuild: the merged
  function is re-accumulated from the first affected key onward and the
  suffix from the containing segment boundary is re-segmented (one linear
  scanner pass for degree <= 1; Remez-accelerated search for degree >= 2).

Deletions are out of scope (the cumulative function must stay monotone);
see ROADMAP.
"""

from __future__ import annotations

import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from ..config import Aggregate, IndexConfig
from ..errors import GuaranteeNotSatisfiedError, SerializationError
from ..fitting.incremental import CorridorScanner, fit_incremental_polynomial
from ..fitting.segmentation import Segment, greedy_segmentation
from ..index.overlay import DirectoryOverlay
from ..index.polyfit1d import PolyFitIndex
from ..index.serialization import assemble_index1d
from ..queries.types import BatchQueryResult, Guarantee, QueryResult, RangeQuery
from ..obs.metrics import SIZE_BUCKETS, counter_family, histogram_family
from .buffer import DeltaBuffer
from .policy import CompactionPolicy
from .wal import RT_COMPACT, RT_INSERT1D, RT_INSERT2D, RT_SEAL, WriteAheadLog

__all__ = ["IngestMetrics", "UpdatablePolyFitIndex"]


class IngestMetrics:
    """Compaction instruments shared by the 1-D and 2-D updatable indexes.

    Compaction is the ingest path's stop-the-world pause, so both its
    duration and the buffer fill that triggered it are histogram-tracked;
    a registry picks these up (plus the attached WAL's families) via the
    index's ``metrics_families()``.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.compactions_total = counter_family(
            "repro_compactions_total", "Completed compactions (buffer folds into base)", enabled=enabled
        )
        self.compaction_seconds = histogram_family(
            "repro_compaction_seconds", "Compaction pause duration in seconds", enabled=enabled
        )
        self.trigger_buffer_size = histogram_family(
            "repro_compaction_trigger_buffer_size",
            "Buffered records at the moment a compaction started",
            buckets=SIZE_BUCKETS,
            enabled=enabled,
        )

    def families(self) -> list:
        fams = [self.compactions_total, self.compaction_seconds, self.trigger_buffer_size]
        return [f for f in fams if getattr(f, "enabled", False)]


def _open_fresh_wal(wal_path, *, sync_every: int, opener) -> WriteAheadLog:
    """Attach a WAL to a *new* index: an existing non-empty log is refused.

    Constructing a fresh index over a log that already holds acknowledged
    records would silently fork history — those records exist durably but
    not in memory.  The reopen path is ``recover()``, which replays first.
    """
    wal = WriteAheadLog(wal_path, sync_every=sync_every, opener=opener)
    if wal.scanned_records:
        wal.close()
        raise SerializationError(
            f"WAL {wal_path} already holds {len(wal.scanned_records)} records; "
            "use recover() to replay them instead of attaching a fresh index"
        )
    return wal


def _replay_wal(index, wal: WriteAheadLog, *, two_dimensional: bool) -> int:
    """Replay a scanned WAL over ``index``, skipping checkpointed records.

    ``index._restored_wal_counts`` (stamped by the codec when loading a
    checkpoint) says how many insert/compaction records the checkpoint
    already subsumes; everything after that prefix re-runs the same
    deterministic ``insert``/``compact`` code paths — with
    ``index._replaying`` set so nothing is re-logged and auto-compaction
    stays quiet (compactions replay exactly where their durable markers
    are, not where the policy would fire mid-prefix).  Returns the number
    of records applied.
    """
    counts = getattr(index, "_restored_wal_counts", None) or {}
    skip_inserts = int(counts.get("inserts", 0))
    skip_compactions = int(counts.get("compactions", 0))
    insert_kinds = (RT_INSERT2D,) if two_dimensional else (RT_INSERT1D,)
    seen_inserts = seen_compactions = applied = 0
    index._replaying = True
    try:
        for record in wal.scanned_records:
            if record.kind in insert_kinds:
                seen_inserts += 1
                if seen_inserts <= skip_inserts:
                    continue
                if two_dimensional:
                    index.insert(record.keys, record.ys, record.measures)
                else:
                    index.insert(record.keys, record.measures)
                applied += 1
            elif record.kind == RT_COMPACT:
                seen_compactions += 1
                if seen_compactions <= skip_compactions:
                    continue
                index.compact()
                if index.epoch != record.epoch:
                    raise SerializationError(
                        f"WAL replay of {wal.path} diverged: compaction record "
                        f"says epoch {record.epoch}, replayed index is at "
                        f"epoch {index.epoch} — checkpoint and log disagree"
                    )
                applied += 1
            elif record.kind == RT_SEAL:
                continue  # advisory: fsck cross-checks seals, replay does not
            else:
                raise SerializationError(
                    f"WAL {wal.path} holds a 1-D/2-D record mismatching the "
                    f"index being recovered (record type {record.kind})"
                )
    finally:
        index._replaying = False
    if seen_inserts < skip_inserts or seen_compactions < skip_compactions:
        raise SerializationError(
            f"checkpoint subsumes {skip_inserts} inserts / "
            f"{skip_compactions} compactions but WAL {wal.path} holds only "
            f"{seen_inserts} / {seen_compactions} — wrong log for this checkpoint"
        )
    index._wal = wal
    index._restored_wal_counts = None
    wal.metrics.recoveries_total.inc()
    wal.metrics.replayed_records_total.inc(applied)
    return applied


class UpdatablePolyFitIndex:
    """PolyFit index with an insert path: delta buffer, epochs, compaction.

    Use :meth:`build` (records + guarantee/delta, like the static index) or
    :meth:`wrap` (adopt an already-built static index).  Reads go through
    :meth:`snapshot` — a frozen overlay per flush epoch — so concurrent
    shard workers always serve one consistent epoch.
    """

    def __init__(
        self,
        base: PolyFitIndex,
        policy: CompactionPolicy | None = None,
        *,
        wal_path: str | Path | None = None,
        wal_sync_every: int = 1,
        wal_opener=None,
    ) -> None:
        self._base = base
        self._policy = policy or CompactionPolicy()
        self._buffer = DeltaBuffer(base.aggregate)
        self._epoch = 0
        self._version = 0
        self._overlay: DirectoryOverlay | None = None
        # Corridor state of the open last segment (degree-1 append fast path).
        self._scanner: CorridorScanner | None = None
        self._scanner_start = -1
        self._scanned_until = -1
        # Durability: acknowledged inserts/compactions go through the WAL
        # first; ``recover()`` replays them after a crash.
        self._wal: WriteAheadLog | None = None
        self._replaying = False
        self._restored_wal_counts: dict | None = None
        self._obs = IngestMetrics()
        if wal_path is not None:
            self._wal = _open_fresh_wal(
                wal_path, sync_every=wal_sync_every, opener=wal_opener
            )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        keys: np.ndarray,
        measures: np.ndarray | None = None,
        aggregate: Aggregate = Aggregate.COUNT,
        *,
        delta: float | None = None,
        guarantee: Guarantee | None = None,
        config: IndexConfig | None = None,
        policy: CompactionPolicy | None = None,
        wal_path: str | Path | None = None,
        wal_sync_every: int = 1,
        wal_opener=None,
    ) -> "UpdatablePolyFitIndex":
        """Build the base index from records and make it updatable."""
        base = PolyFitIndex.build(
            keys,
            measures,
            aggregate=aggregate,
            delta=delta,
            guarantee=guarantee,
            config=config,
        )
        return cls(
            base, policy=policy, wal_path=wal_path,
            wal_sync_every=wal_sync_every, wal_opener=wal_opener,
        )

    @classmethod
    def wrap(
        cls,
        index: PolyFitIndex,
        policy: CompactionPolicy | None = None,
        *,
        wal_path: str | Path | None = None,
        wal_sync_every: int = 1,
        wal_opener=None,
    ) -> "UpdatablePolyFitIndex":
        """Adopt an already-built static index as the base."""
        return cls(
            index, policy=policy, wal_path=wal_path,
            wal_sync_every=wal_sync_every, wal_opener=wal_opener,
        )

    @classmethod
    def _restore(
        cls,
        base: PolyFitIndex,
        policy: CompactionPolicy,
        delta_keys: np.ndarray,
        delta_measures: np.ndarray,
        epoch: int,
    ) -> "UpdatablePolyFitIndex":
        """Codec entry point: rebuild with a persisted delta log and epoch.

        Bypasses auto-compaction so a loaded index reproduces the persisted
        snapshot byte for byte (same buffer, same epoch) — what mmap'd shard
        workers rely on for consistency.
        """
        index = cls(base, policy=policy)
        if np.asarray(delta_keys).size:
            index._buffer.insert(
                delta_keys,
                None if base.aggregate is Aggregate.COUNT else delta_measures,
            )
        index._epoch = int(epoch)
        return index

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def base(self) -> PolyFitIndex:
        """The current immutable base index (replaced by compaction)."""
        return self._base

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the index answers."""
        return self._base.aggregate

    @property
    def delta(self) -> float:
        """Per-segment fitting budget of the base."""
        return self._base.delta

    @property
    def certified_bound(self) -> float:
        """Certified absolute bound — unchanged by the exact delta buffer."""
        return self._base.certified_bound

    @property
    def policy(self) -> CompactionPolicy:
        """The compaction policy."""
        return self._policy

    @property
    def epoch(self) -> int:
        """Number of completed compactions (flush epochs)."""
        return self._epoch

    @property
    def version(self) -> int:
        """Monotone write counter: bumped by every insert and compaction.

        Unlike :attr:`epoch` (compactions only), the version changes on
        *every* visible mutation, so result caches keyed on it can never
        serve an answer computed against a different index state.
        """
        return self._version

    @property
    def buffer_size(self) -> int:
        """Number of records currently buffered."""
        return len(self._buffer)

    @property
    def num_segments(self) -> int:
        """Segment count of the current base."""
        return self._base.num_segments

    @property
    def segments(self) -> list[Segment]:
        """Segments of the current base (read-only view)."""
        return self._base.segments

    @property
    def config(self) -> IndexConfig:
        """Configuration the base was built with (preserved by compaction)."""
        return self._base.config

    def size_in_bytes(self) -> int:
        """Base payload plus the raw buffered records.

        Deliberately avoids :meth:`snapshot`: introspection must not build
        the per-epoch sorted query payload as a side effect.  A snapshot's
        own ``size_in_bytes`` additionally counts its prefix/extreme arrays.
        """
        return self._base.size_in_bytes() + self._buffer.size_in_bytes()

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    def insert(self, keys: np.ndarray, measures: np.ndarray | None = None) -> int:
        """Buffer a chunk of records; compacts when the policy says so.

        Returns the number of records inserted.  Keys may arrive in any
        order and may duplicate existing keys; only the compaction cost
        differs (append-only tails resume the corridor scanner, everything
        else takes the bounded merge-rebuild).

        With a WAL attached, the chunk is validated, logged, and only then
        applied — so every record the log holds replays cleanly, and an
        insert this method acknowledged survives a crash (modulo the
        group-commit window, see :class:`~repro.stream.wal.WriteAheadLog`).
        """
        if self._wal is not None and not self._replaying:
            keys, measures = self._buffer.coerce(keys, measures)
            if keys.size:
                self._wal.append_insert(
                    keys,
                    None if self.aggregate is Aggregate.COUNT else measures,
                )
        count = self._buffer.insert(keys, measures)
        if count:
            self._overlay = None
            self._version += 1
            if (
                not self._replaying
                and self._policy.auto
                and self._policy.should_compact(len(self._buffer), self._function_size())
            ):
                self.compact()
        return count

    def compact(self) -> bool:
        """Fold the buffer into the base; returns whether anything changed.

        The merged target function is re-accumulated only from the first
        affected key onward, and re-segmentation starts at the last base
        boundary whose closing witness precedes that key — so the resulting
        boundaries are exactly those of a from-scratch Greedy Segmentation
        over the merged function (see the module docstring for why).

        The merged function itself is bit-identical to rebuilding from all
        records for COUNT/MAX/MIN and for append-only SUM; out-of-order SUM
        inserts reconstruct the base's per-key sums from cumulative
        differences, which can differ from a raw rebuild by float ulps —
        far below any meaningful ``delta``, and the boundary invariant
        above always holds relative to the merged function.
        """
        if self._buffer.is_empty:
            return False
        t0 = time.perf_counter()
        self._obs.trigger_buffer_size.observe(len(self._buffer))
        base_keys, base_values = self._function_arrays()
        add_keys, add_measures = self._buffer.arrays()
        merged_keys, merged_values = self._merge_function(
            base_keys, base_values, add_keys, add_measures
        )
        old_n = base_keys.size
        # First merged sample that differs from the base function; everything
        # before it is bit-identical, so GS re-derives the same boundaries.
        same = (merged_keys[:old_n] == base_keys) & (merged_values[:old_n] == base_values)
        affected = int(old_n if bool(same.all()) else np.argmin(same))
        if affected == old_n and merged_keys.size == old_n:
            # Dominated duplicates (MAX/MIN) or zero-measure SUM inserts:
            # the merged function equals the base; nothing to re-fit.
            self._finish_epoch()
            self._obs.compactions_total.inc()
            self._obs.compaction_seconds.observe(time.perf_counter() - t0)
            return True
        segments = self._resegment(merged_keys, merged_values, affected, old_n)
        self._base = assemble_index1d(
            aggregate=self.aggregate,
            delta=self._base.delta,
            degree=self._base.degree,
            fanout=self._base.config.fanout,
            segmentation_method=self._base.config.segmentation.method,
            segments=segments,
            function_keys=merged_keys,
            function_values=merged_values,
            config=self._base.config,
        )
        self._finish_epoch()
        self._obs.compactions_total.inc()
        self._obs.compaction_seconds.observe(time.perf_counter() - t0)
        return True

    def _finish_epoch(self) -> None:
        self._buffer.clear()
        self._overlay = None
        self._epoch += 1
        self._version += 1
        if self._wal is not None and not self._replaying:
            # Logged *after* the compaction completes: a crash in between
            # replays the buffered inserts over the old base instead — the
            # exact answers are identical, the compaction just re-runs later.
            self._wal.append_compaction(self._epoch)

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #

    @property
    def wal(self) -> WriteAheadLog | None:
        """The attached write-ahead log, if any."""
        return self._wal

    def metrics_families(self) -> list:
        """Compaction + WAL metric families, for registry registration."""
        fams = self._obs.families()
        if self._wal is not None:
            fams += self._wal.metrics.families()
        return fams

    def checkpoint(self, path: str | Path) -> Path:
        """Persist the full state atomically and seal the WAL position.

        The checkpoint file carries the WAL record counts it subsumes (in
        its codec meta), so a later :meth:`recover` replays only the suffix.
        Crash-safe in either half: the checkpoint write is atomic, and the
        seal is advisory — whichever checkpoint file survives describes its
        own log position exactly.
        """
        from ..index.codec import save_index_binary

        path = Path(path)
        save_index_binary(self, path)
        if self._wal is not None:
            self._wal.append_seal(epoch=self._epoch, buffer_size=self.buffer_size)
        return path

    @classmethod
    def recover(
        cls,
        checkpoint,
        wal_path: str | Path,
        *,
        policy: CompactionPolicy | None = None,
        wal_sync_every: int = 1,
        wal_opener=None,
        verify: bool = False,
    ) -> "UpdatablePolyFitIndex":
        """Rebuild the pre-crash state: checkpoint (or base) + WAL replay.

        ``checkpoint`` is a codec file path, an already-loaded
        :class:`UpdatablePolyFitIndex`, or a bare
        :class:`~repro.index.polyfit1d.PolyFitIndex` (no checkpoint — the
        whole log replays).  Opening the WAL truncates a torn tail at the
        last valid frame; mid-file corruption raises
        :class:`~repro.errors.SerializationError`.  The replayed state is
        bit-identical to the crashed process at its last durable record,
        and the returned index keeps appending to the same log.
        """
        if isinstance(checkpoint, (str, Path)):
            from ..index.codec import load_index_binary

            # mmap=False: recovery must not keep serving off a file the
            # caller may rewrite with the next checkpoint.
            index = load_index_binary(checkpoint, mmap=False, verify=verify)
        else:
            index = checkpoint
        if isinstance(index, PolyFitIndex):
            index = cls(index, policy=policy)
        if not isinstance(index, cls):
            raise SerializationError(
                f"cannot recover a 1-D updatable index from {type(index).__name__}"
            )
        wal = WriteAheadLog(wal_path, sync_every=wal_sync_every, opener=wal_opener)
        _replay_wal(index, wal, two_dimensional=False)
        return index

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #

    def snapshot(self) -> DirectoryOverlay:
        """Frozen overlay of the current epoch (cached until a mutation)."""
        if self._overlay is None:
            self._overlay = DirectoryOverlay(
                self._base, self._buffer.snapshot(), epoch=self._epoch
            )
        return self._overlay

    def estimate(self, query: RangeQuery) -> float:
        """Combined approximate answer for one range."""
        return self.snapshot().estimate(query)

    def exact(self, query: RangeQuery) -> float:
        """Combined exact answer (base fallback + exact buffer part)."""
        return self.snapshot().exact(query)

    def query(self, query: RangeQuery, guarantee: Guarantee | None = None) -> QueryResult:
        """Answer one query with the static index's guarantee semantics."""
        return self.snapshot().query(query, guarantee)

    def estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Combined approximate answers for N ranges."""
        return self.snapshot().estimate_batch(lows, highs)

    def exact_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Combined exact answers for N ranges."""
        return self.snapshot().exact_batch(lows, highs)

    def query_batch(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        guarantee: Guarantee | None = None,
    ) -> BatchQueryResult:
        """Answer N queries with certificates over the combined values."""
        return self.snapshot().query_batch(lows, highs, guarantee)

    # ------------------------------------------------------------------ #
    # Merge + re-segmentation internals
    # ------------------------------------------------------------------ #

    def _function_size(self) -> int:
        return int(self._function_arrays()[0].size)

    def _function_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if self.aggregate.is_cumulative:
            function = self._base._cumulative  # noqa: SLF001 - stream is a friend module
            return function.keys, function.values
        function = self._base._key_measure  # noqa: SLF001
        return function.keys, function.measures

    def _merge_function(
        self,
        base_keys: np.ndarray,
        base_values: np.ndarray,
        add_keys: np.ndarray,
        add_measures: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Merged target function; the prefix below the first inserted key is
        carried over verbatim so the affected-sample comparison is exact."""
        first = int(np.searchsorted(base_keys, add_keys.min(), side="left"))
        prefix_keys = base_keys[:first]
        prefix_values = base_values[:first]
        tail_keys = np.concatenate((base_keys[first:], add_keys))
        if self.aggregate.is_cumulative:
            # Per-key summed measures of the base suffix recover from the
            # cumulative values; re-accumulating them with the inserts keeps
            # CF a monotone function of the key.
            if first:
                base_sums = np.diff(base_values[first - 1:])
            else:
                base_sums = np.diff(base_values, prepend=0.0)
            tail_measures = np.concatenate((base_sums, add_measures))
            unique, inverse = np.unique(tail_keys, return_inverse=True)
            summed = np.zeros(unique.size, dtype=np.float64)
            np.add.at(summed, inverse, tail_measures)
            start_total = float(prefix_values[-1]) if first else 0.0
            # Seeding the running sum and letting cumsum continue reproduces
            # a from-scratch accumulation's exact floating-point association
            # (((total + s_f) + s_{f+1}) ...), so the merged CF is
            # bit-identical to rebuilding from all records.
            merged_values = np.cumsum(np.concatenate(([start_total], summed)))[1:]
        else:
            tail_measures = np.concatenate((base_values[first:], add_measures))
            unique, inverse = np.unique(tail_keys, return_inverse=True)
            if self.aggregate is Aggregate.MAX:
                merged_values = np.full(unique.size, -np.inf)
                np.maximum.at(merged_values, inverse, tail_measures)
            else:
                merged_values = np.full(unique.size, np.inf)
                np.minimum.at(merged_values, inverse, tail_measures)
        return (
            np.concatenate((prefix_keys, unique)),
            np.concatenate((prefix_values, merged_values)),
        )

    def _resegment(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        affected: int,
        old_n: int,
    ) -> list[Segment]:
        """Kept prefix segments plus a re-segmented suffix from the last
        unaffected boundary."""
        base_segments = self._base.segments
        stops = np.array([segment.stop for segment in base_segments], dtype=np.intp)
        # A base segment is re-derived verbatim by a from-scratch GS iff its
        # closing witness sample (index == stop) precedes the first affected
        # sample; the rest — including the open last segment, whose end was
        # "end of data", not a witness — must be re-examined.
        kept = int(np.searchsorted(stops, affected, side="left"))
        keep = base_segments[:kept]
        start = int(stops[kept - 1]) if kept else 0
        config = self._base.config
        degree = self._base.degree
        if (
            degree == 1
            and config.fit.solver in ("auto", "incremental")
            and affected == old_n
        ):
            # Pure append beyond the base key span: resume (or warm) the open
            # last segment's corridor and scan only the new samples.
            tail = self._scan_tail(keys, values, start, old_n)
        else:
            self._drop_scanner()
            budget = self._base.delta
            sub = greedy_segmentation(
                keys[start:],
                values[start:],
                delta=budget,
                degree=degree,
                use_exponential_search=config.segmentation.method != "greedy",
                solver=config.fit.solver,
                early_accept=config.segmentation.early_accept,
            )
            tail = [
                replace(segment, start=segment.start + start, stop=segment.stop + start)
                for segment in sub
            ]
        return keep + tail

    def _drop_scanner(self) -> None:
        self._scanner = None
        self._scanner_start = -1
        self._scanned_until = -1

    def _scan_tail(
        self, keys: np.ndarray, values: np.ndarray, start: int, old_n: int
    ) -> list[Segment]:
        """Degree-1 scanner pass over ``[start, n)``, resuming when possible.

        A retained scanner whose state covers exactly the open segment
        ``[start, old_n)`` continues over the appended samples only;
        otherwise a fresh scanner warms up over the open segment first
        (O(segment) — still bounded by one segment, never the whole prefix).
        The scanner left covering the new last segment is retained for the
        next epoch.
        """
        n = keys.size
        budget = self._base.delta
        if (
            self._scanner is not None
            and self._scanner.alive
            and self._scanner_start == start
            and self._scanned_until == old_n
        ):
            # The retained corridor already covers [start, old_n); scanning
            # resumes on the appended samples only, so only they need the
            # list conversion — not the (possibly huge) open segment.
            scanner = self._scanner
            list_base = old_n
        else:
            scanner = CorridorScanner(budget)
            list_base = start
        ks = keys[list_base:].tolist()
        vs = values[list_base:].tolist()
        limit = n - list_base
        segments: list[Segment] = []
        segment_start = start
        # Relative to list_base both branches start scanning at its first
        # element: the resumed corridor has consumed everything before it.
        position = 0
        while True:
            stop = scanner.extend(ks, vs, position, limit)
            if stop == limit:
                segments.append(self._emit(keys, values, segment_start, n))
                break
            segments.append(self._emit(keys, values, segment_start, list_base + stop))
            scanner = CorridorScanner(budget)
            segment_start = list_base + stop
            position = stop
        self._scanner = scanner
        self._scanner_start = segment_start
        self._scanned_until = n
        return segments

    def _emit(
        self, keys: np.ndarray, values: np.ndarray, start: int, stop: int
    ) -> Segment:
        """Closed-form hull refit on the accepted slice (mirrors GS's
        ``_linear_pass`` emission, so fits match a from-scratch build)."""
        fit = fit_incremental_polynomial(keys[start:stop], values[start:stop], 1)
        return Segment(
            key_low=float(keys[start]),
            key_high=float(keys[stop - 1]),
            start=start,
            stop=stop,
            polynomial=fit.polynomial,
            max_error=fit.max_error,
        )

    def require_guarantee(self, query: RangeQuery, guarantee: Guarantee) -> float:
        """Answer and raise if the guarantee cannot be certified."""
        result = self.query(query, guarantee)
        if not result.guaranteed:
            raise GuaranteeNotSatisfiedError(
                f"index certifies only +/-{self.certified_bound}, "
                f"requested {guarantee.kind.value} eps={guarantee.epsilon}"
            )
        return result.value
