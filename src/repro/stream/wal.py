"""Write-ahead log for the streaming ingest path.

An acknowledged insert must survive a crash.  The delta buffers of
:class:`~repro.stream.updatable.UpdatablePolyFitIndex` and
:class:`~repro.stream.updatable2d.UpdatablePolyFit2DIndex` live in memory,
so each updatable index can attach a :class:`WriteAheadLog`: every insert
batch, compaction and checkpoint seal is appended as one CRC-framed record
*before* the call returns, and ``recover()`` replays the log over a base (or
checkpoint) to reproduce the pre-crash state **bit-identically** — replay
re-runs the same deterministic ``insert``/``compact`` code paths, and both
are bit-reproducible by construction (see the compaction invariants in the
``updatable`` module docstrings).

File layout
-----------

``PFWAL001`` magic (8 bytes), then a sequence of frames::

    length (uint32 LE) | crc32 (uint32 LE) | type (uint8) | payload[length]

``crc32`` covers the type byte plus the payload (``zlib.crc32`` — the
stdlib's C-speed CRC; the framing field is what matters, not the exact
polynomial).  Record types:

======  ==========  =====================================================
 type    name        payload
======  ==========  =====================================================
 1       INSERT1D    ``has_measures u8 | n u64 | keys f64*n [| measures]``
 2       INSERT2D    ``has_measures u8 | n u64 | xs f64*n | ys f64*n [| measures]``
 3       COMPACT     ``epoch u64`` (the epoch *after* the compaction)
 4       SEAL        ``inserts u64 | compactions u64 | epoch u64 | buffer u64``
======  ==========  =====================================================

Torn tails vs corruption
------------------------

The scan distinguishes the two failure modes a crash and bit rot produce —
the distinction is the "never a silent wrong answer" invariant:

* **torn tail** — the final frame is incomplete (header or payload runs past
  EOF), fails its CRC, or the remainder of the file is zero-filled
  (filesystems may zero-extend across a crash).  The tail is *truncated* at
  the last valid frame: those bytes were mid-write when the process died, so
  no reader was ever promised them.
* **corruption** — a frame *before* the last fails its CRC while non-zero
  bytes follow it.  That frame was once durable and acknowledged; silently
  dropping it (and everything after) would un-acknowledge writes, so the
  scan raises a typed :class:`~repro.errors.SerializationError` instead.

Group commit
------------

``sync_every=k`` batches the ``fsync`` barrier: appends buffer in the OS and
every k-th record (or an explicit :meth:`WriteAheadLog.sync`, or any
compaction/seal record, or :meth:`WriteAheadLog.close`) makes the log
durable.  The durability contract is correspondingly per-barrier: records
appended since the last barrier may be lost to a crash — but replay still
never yields wrong data, only a (bit-identical) earlier prefix.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import SerializationError
from ..obs.metrics import counter_family, histogram_family, log_buckets

__all__ = [
    "WAL_MAGIC",
    "RT_INSERT1D",
    "RT_INSERT2D",
    "RT_COMPACT",
    "RT_SEAL",
    "WalMetrics",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "scan_wal",
]

#: Leading bytes of every WAL file (8 bytes, versioned like the codec magic).
WAL_MAGIC = b"PFWAL001"

RT_INSERT1D = 1
RT_INSERT2D = 2
RT_COMPACT = 3
RT_SEAL = 4

_VALID_TYPES = frozenset({RT_INSERT1D, RT_INSERT2D, RT_COMPACT, RT_SEAL})
_FRAME_HEADER = struct.Struct("<IIB")


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL record (fields beyond ``kind`` depend on the type)."""

    kind: int
    keys: np.ndarray | None = None  #: insert keys (1-D) or x coordinates (2-D)
    ys: np.ndarray | None = None  #: y coordinates (2-D inserts only)
    measures: np.ndarray | None = None
    epoch: int = 0  #: COMPACT/SEAL: epoch after the operation
    inserts: int = 0  #: SEAL: insert records subsumed by the checkpoint
    compactions: int = 0  #: SEAL: compaction records subsumed
    buffer_size: int = 0  #: SEAL: buffered records at checkpoint time


@dataclass
class WalScan:
    """Result of scanning a WAL file front to back."""

    records: list[WalRecord] = field(default_factory=list)
    valid_bytes: int = 0  #: offset of the first byte past the last valid frame
    truncated_bytes: int = 0  #: torn-tail bytes past ``valid_bytes``
    damage: str | None = None  #: mid-file corruption description (lenient scans)

    @property
    def insert_records(self) -> int:
        return sum(1 for r in self.records if r.kind in (RT_INSERT1D, RT_INSERT2D))

    @property
    def compaction_records(self) -> int:
        return sum(1 for r in self.records if r.kind == RT_COMPACT)

    @property
    def seal_records(self) -> int:
        return sum(1 for r in self.records if r.kind == RT_SEAL)


# --------------------------------------------------------------------- #
# Encoding / decoding
# --------------------------------------------------------------------- #


def _as_f64(values) -> np.ndarray:
    return np.ascontiguousarray(np.atleast_1d(np.asarray(values, dtype="<f8")))


def _encode_insert1d(keys, measures) -> bytes:
    keys = _as_f64(keys)
    parts = [struct.pack("<BQ", 0 if measures is None else 1, keys.size), keys.tobytes()]
    if measures is not None:
        parts.append(_as_f64(measures).tobytes())
    return b"".join(parts)


def _encode_insert2d(xs, ys, measures) -> bytes:
    xs, ys = _as_f64(xs), _as_f64(ys)
    parts = [
        struct.pack("<BQ", 0 if measures is None else 1, xs.size),
        xs.tobytes(),
        ys.tobytes(),
    ]
    if measures is not None:
        parts.append(_as_f64(measures).tobytes())
    return b"".join(parts)


def _decode_arrays(payload: bytes, columns: int) -> tuple[np.ndarray, ...] | None:
    """Split an insert payload into ``columns`` f64 arrays (+measures flag)."""
    if len(payload) < 9:
        return None
    has_measures, n = struct.unpack_from("<BQ", payload)
    total = columns + (1 if has_measures else 0)
    if has_measures not in (0, 1) or len(payload) != 9 + 8 * n * total:
        return None
    arrays = tuple(
        np.frombuffer(payload, dtype="<f8", count=n, offset=9 + 8 * n * i)
        for i in range(total)
    )
    if not has_measures:
        arrays = arrays + (None,)
    return arrays


def _decode(rtype: int, payload: bytes) -> WalRecord | None:
    """Decode one frame payload; ``None`` means structurally malformed."""
    if rtype == RT_INSERT1D:
        decoded = _decode_arrays(payload, 1)
        if decoded is None:
            return None
        keys, measures = decoded
        return WalRecord(RT_INSERT1D, keys=keys, measures=measures)
    if rtype == RT_INSERT2D:
        decoded = _decode_arrays(payload, 2)
        if decoded is None:
            return None
        xs, ys, measures = decoded
        return WalRecord(RT_INSERT2D, keys=xs, ys=ys, measures=measures)
    if rtype == RT_COMPACT:
        if len(payload) != 8:
            return None
        return WalRecord(RT_COMPACT, epoch=struct.unpack("<Q", payload)[0])
    if rtype == RT_SEAL:
        if len(payload) != 32:
            return None
        inserts, compactions, epoch, buffer_size = struct.unpack("<QQQQ", payload)
        return WalRecord(
            RT_SEAL,
            inserts=inserts,
            compactions=compactions,
            epoch=epoch,
            buffer_size=buffer_size,
        )
    return None


def _frame(rtype: int, payload: bytes) -> bytes:
    crc = zlib.crc32(bytes([rtype]) + payload)
    return _FRAME_HEADER.pack(len(payload), crc, rtype) + payload


# --------------------------------------------------------------------- #
# Scanning
# --------------------------------------------------------------------- #


def scan_wal(path: str | Path, *, strict: bool = True) -> WalScan:
    """Scan a WAL front to back, classifying any trailing damage.

    With ``strict=True`` (the recovery path) mid-file corruption raises
    :class:`~repro.errors.SerializationError`; a torn tail is reported via
    ``truncated_bytes`` and the caller truncates.  With ``strict=False``
    (the ``fsck`` path) corruption is reported in ``damage`` instead, with
    the valid prefix still decoded.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise SerializationError(f"cannot read WAL {path}: {exc}") from exc
    scan = WalScan()
    if len(data) < len(WAL_MAGIC):
        # An empty or partially written magic is a torn creation: nothing was
        # ever acknowledged through this log.
        if WAL_MAGIC.startswith(data):
            scan.truncated_bytes = len(data)
            return scan
        raise SerializationError(f"{path} is not a PolyFit WAL (bad magic)")
    if data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise SerializationError(f"{path} is not a PolyFit WAL (bad magic)")
    offset = len(WAL_MAGIC)
    size = len(data)
    while offset < size:
        if size - offset < _FRAME_HEADER.size:
            break  # torn header
        length, crc, rtype = _FRAME_HEADER.unpack_from(data, offset)
        end = offset + _FRAME_HEADER.size + length
        if end > size:
            break  # torn payload (or a length corrupted past EOF — see docs)
        payload = data[offset + _FRAME_HEADER.size: end]
        record = None
        if rtype in _VALID_TYPES and zlib.crc32(bytes([rtype]) + payload) == crc:
            record = _decode(rtype, payload)
        if record is None:
            if end == size or not any(data[offset:]):
                # Invalid final frame, or a zero-filled remainder: both are
                # crash artifacts of the tail, never acknowledged history.
                break
            message = (
                f"corrupt WAL frame at byte {offset} of {path} "
                f"({size - offset} bytes before EOF)"
            )
            if strict:
                raise SerializationError(message)
            scan.damage = message
            scan.valid_bytes = offset
            scan.truncated_bytes = 0
            return scan
        scan.records.append(record)
        offset = end
    scan.valid_bytes = offset
    scan.truncated_bytes = size - offset
    return scan


# --------------------------------------------------------------------- #
# The log
# --------------------------------------------------------------------- #


# fsync spans ~50 us (battery-backed / fake handles) to ~100 ms (spinning
# rust under load); dedicated buckets keep the barrier cost resolvable.
_FSYNC_BUCKETS = log_buckets(1e-5, 1.0, 18)


class WalMetrics:
    """Durability instruments for one :class:`WriteAheadLog`."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.appends_total = counter_family(
            "repro_wal_appends_total",
            "WAL records appended, by record kind",
            ("kind",),
            enabled=enabled,
        )
        self.fsyncs_total = counter_family(
            "repro_wal_fsyncs_total", "WAL durability barriers (fsync) issued", enabled=enabled
        )
        self.fsync_seconds = histogram_family(
            "repro_wal_fsync_seconds",
            "WAL durability-barrier latency in seconds",
            buckets=_FSYNC_BUCKETS,
            enabled=enabled,
        )
        self.recoveries_total = counter_family(
            "repro_wal_recoveries_total", "Successful WAL replays into an index", enabled=enabled
        )
        self.replayed_records_total = counter_family(
            "repro_wal_replayed_records_total",
            "WAL records re-applied during recovery replays",
            enabled=enabled,
        )

    def families(self) -> list:
        fams = [
            self.appends_total,
            self.fsyncs_total,
            self.fsync_seconds,
            self.recoveries_total,
            self.replayed_records_total,
        ]
        return [f for f in fams if getattr(f, "enabled", False)]


class WriteAheadLog:
    """Append-only record log with CRC framing and group-commit fsync.

    Opening an existing log scans it first: a torn tail is truncated in
    place (so new appends extend the valid prefix, never garbage) and the
    decoded records are retained in :attr:`scanned_records` for replay.
    Mid-file corruption refuses to open with a typed error — appending after
    silently dropped history would fork the log.

    Parameters
    ----------
    path:
        Log file (created with the magic header when missing or empty).
    sync_every:
        Group-commit factor: fsync after every k-th appended insert record.
        Compactions and seals always sync (they are rare and gate recovery
        semantics).  ``sync_every=1`` is classic write-through.
    opener:
        Fault-injection hook: ``opener(path, mode)`` returning a file-like
        with ``write``/``flush``/``seek``/``truncate``/``close`` and
        optionally ``sync`` (preferred over raw ``os.fsync`` when present).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        sync_every: int = 1,
        opener=None,
        instrument: bool = True,
    ) -> None:
        if sync_every < 1:
            raise SerializationError(f"sync_every must be >= 1, got {sync_every}")
        self._path = Path(path)
        self._sync_every = int(sync_every)
        self._opener = opener or (lambda p, mode: open(p, mode))
        self._pending = 0
        self._closed = False
        self.metrics = WalMetrics(enabled=instrument)
        self.insert_records = 0
        self.compaction_records = 0
        self.seal_records = 0
        #: Insert-record count captured by the most recent checkpoint seal;
        #: ``records_since_seal`` (WAL lag) is derived from it for /healthz.
        self.sealed_inserts = 0
        #: Records decoded from the existing file at open time (replay input).
        self.scanned_records: list[WalRecord] = []

        exists = self._path.exists() and self._path.stat().st_size > 0
        if exists:
            scan = scan_wal(self._path, strict=True)
            self.scanned_records = scan.records
            self.insert_records = scan.insert_records
            self.compaction_records = scan.compaction_records
            self.seal_records = scan.seal_records
            for record in scan.records:
                if record.kind == RT_SEAL:
                    self.sealed_inserts = record.inserts
            self._handle = self._opener(self._path, "r+b")
            start = max(scan.valid_bytes, len(WAL_MAGIC))
            self._handle.truncate(start)
            self._handle.seek(start)
            if scan.valid_bytes < len(WAL_MAGIC):
                # The previous process died inside the magic write itself.
                self._handle.seek(0)
                self._handle.write(WAL_MAGIC)
                self._sync_handle()
        else:
            self._handle = self._opener(self._path, "wb")
            self._handle.write(WAL_MAGIC)
            self._sync_handle()

    # -- introspection -------------------------------------------------- #

    @property
    def path(self) -> Path:
        return self._path

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pending_records(self) -> int:
        """Appended insert records not yet covered by a durability barrier."""
        return self._pending

    @property
    def records_since_seal(self) -> int:
        """Insert records appended since the last checkpoint seal (WAL lag)."""
        return self.insert_records - self.sealed_inserts

    # -- durability ----------------------------------------------------- #

    def _sync_handle(self) -> None:
        t0 = time.perf_counter()
        sync = getattr(self._handle, "sync", None)
        if sync is not None:
            sync()
        else:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self.metrics.fsyncs_total.inc()
        self.metrics.fsync_seconds.observe(time.perf_counter() - t0)

    def sync(self) -> None:
        """Force the durability barrier (flush + fsync) now."""
        self._sync_handle()
        self._pending = 0

    # -- appends -------------------------------------------------------- #

    def _append(self, rtype: int, payload: bytes, *, force_sync: bool) -> None:
        if self._closed:
            raise SerializationError(f"WAL {self._path} is closed")
        self._handle.write(_frame(rtype, payload))
        if force_sync:
            self.sync()
        else:
            self._pending += 1
            if self._pending >= self._sync_every:
                self.sync()
            else:
                self._handle.flush()

    def append_insert(self, keys, measures=None) -> None:
        """Log a 1-D insert batch (call *before* acknowledging the insert)."""
        self._append(RT_INSERT1D, _encode_insert1d(keys, measures), force_sync=False)
        self.insert_records += 1
        self.metrics.appends_total.labels(kind="insert").inc()

    def append_insert2d(self, xs, ys, measures=None) -> None:
        """Log a 2-D insert batch."""
        self._append(RT_INSERT2D, _encode_insert2d(xs, ys, measures), force_sync=False)
        self.insert_records += 1
        self.metrics.appends_total.labels(kind="insert").inc()

    def append_compaction(self, epoch: int) -> None:
        """Log a completed compaction (always fsync'd: it gates replay)."""
        self._append(RT_COMPACT, struct.pack("<Q", int(epoch)), force_sync=True)
        self.compaction_records += 1
        self.metrics.appends_total.labels(kind="compaction").inc()

    def append_seal(self, *, epoch: int, buffer_size: int) -> None:
        """Log a checkpoint seal: the counts a just-saved checkpoint subsumes.

        Advisory (recovery trusts the checkpoint's own ``wal_counts`` meta,
        which lands atomically with the checkpoint file); ``fsck`` uses seals
        to cross-check checkpoint/WAL consistency, and a future log-rotation
        can drop everything before the last seal.
        """
        payload = struct.pack(
            "<QQQQ",
            self.insert_records,
            self.compaction_records,
            int(epoch),
            int(buffer_size),
        )
        self._append(RT_SEAL, payload, force_sync=True)
        self.seal_records += 1
        self.sealed_inserts = self.insert_records
        self.metrics.appends_total.labels(kind="seal").inc()

    # -- lifecycle ------------------------------------------------------ #

    def close(self) -> None:
        """Sync and close (idempotent)."""
        if self._closed:
            return
        try:
            self.sync()
        finally:
            self._closed = True
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
