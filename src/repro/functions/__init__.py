"""Target-function construction.

The paper approximates one of three target functions with piecewise
polynomials:

* ``CFsum(k)`` — the key-cumulative function used for SUM/COUNT queries
  (Equation 4/7),
* ``DFmax(k)`` / ``DFmin(k)`` — the key-measure step function used for
  MAX/MIN queries (Equation 6/7),
* ``CFcount(u, v)`` — the two-key cumulative count surface (Definition 5).

This package turns raw (key, measure) arrays into those functions, exposed as
sampled point sets ready for fitting plus exact evaluators used by tests and
the exact-fallback path.
"""

from .cumulative import CumulativeFunction, build_cumulative_function
from .key_measure import KeyMeasureFunction, build_key_measure_function
from .cumulative2d import Cumulative2D, build_cumulative_2d

__all__ = [
    "CumulativeFunction",
    "build_cumulative_function",
    "KeyMeasureFunction",
    "build_key_measure_function",
    "Cumulative2D",
    "build_cumulative_2d",
]
