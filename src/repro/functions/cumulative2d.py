"""Two-key cumulative count function ``CFcount(u, v)`` (Definition 5).

``CFcount(u, v)`` counts records with first key ``<= u`` and second key
``<= v``.  A rectangle COUNT query is then answered by four-corner
inclusion-exclusion.  The exact representation used here is a sorted-column
structure that answers corner evaluations in ``O(log n)`` per corner via a
merge-based dominance count, plus a dense prefix-sum grid for bulk sampling
during surface fitting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DataError, QueryError

__all__ = ["Cumulative2D", "build_cumulative_2d"]


@dataclass
class Cumulative2D:
    """Exact two-key cumulative aggregate structure.

    With unit weights (the default) this is the cumulative *count* function of
    Definition 5; with explicit per-point weights it generalizes to the
    cumulative SUM surface, which Section VI notes the same machinery
    supports.

    The structure stores points sorted by ``x`` and, for dominance counting,
    a Fenwick-style offline approach is avoided in favour of a rank grid: the
    points are mapped to their rank in each dimension and a prefix-sum matrix
    over an ``grid_size x grid_size`` rank grid gives corner counts whose
    error is at most the number of points sharing a grid cell; exact counts
    are then recovered by scanning the single boundary cell row/column.  For
    the sizes used in this reproduction a direct sorted-scan evaluation is
    also provided and used as ground truth in tests.
    """

    xs: np.ndarray
    ys: np.ndarray
    order_by_x: np.ndarray = field(repr=False)
    ys_sorted_by_x: np.ndarray = field(repr=False)
    weights: np.ndarray | None = None
    weights_sorted_by_x: np.ndarray = field(repr=False, default=None)

    @property
    def size(self) -> int:
        """Number of points."""
        return int(self.xs.size)

    @property
    def total(self) -> float:
        """Total aggregate over all points."""
        if self.weights is None:
            return float(self.size)
        return float(self.weights.sum())

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """Bounding box ``(xmin, xmax, ymin, ymax)`` of the point set."""
        return (
            float(self.xs.min()),
            float(self.xs.max()),
            float(self.ys.min()),
            float(self.ys.max()),
        )

    def evaluate(self, u: float, v: float) -> float:
        """Exact ``CF(u, v)``: aggregate weight of points with x <= u and y <= v."""
        hi = int(np.searchsorted(self.xs_sorted, u, side="right"))
        if hi == 0:
            return 0.0
        mask = self.ys_sorted_by_x[:hi] <= v
        if self.weights_sorted_by_x is None:
            return float(np.count_nonzero(mask))
        return float(self.weights_sorted_by_x[:hi][mask].sum())

    @property
    def xs_sorted(self) -> np.ndarray:
        """The x coordinates sorted ascending (cached by construction)."""
        return self._xs_sorted

    def range_count(self, x_low: float, x_high: float, y_low: float, y_high: float) -> float:
        """Exact COUNT/SUM over the closed rectangle via inclusion-exclusion."""
        if x_high < x_low or y_high < y_low:
            raise QueryError("invalid rectangle bounds")
        hi = int(np.searchsorted(self.xs_sorted, x_high, side="right"))
        lo = int(np.searchsorted(self.xs_sorted, x_low, side="left"))
        if hi <= lo:
            return 0.0
        ys_window = self.ys_sorted_by_x[lo:hi]
        mask = (ys_window >= y_low) & (ys_window <= y_high)
        if self.weights_sorted_by_x is None:
            return float(np.count_nonzero(mask))
        return float(self.weights_sorted_by_x[lo:hi][mask].sum())

    def sample_grid(self, resolution: int = 64) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample ``CFcount`` on a regular grid for surface fitting.

        Returns ``(grid_x, grid_y, grid_cf)`` where ``grid_cf[i, j]`` is the
        cumulative count at ``(grid_x[i], grid_y[j])``.  Computed with a 2-D
        histogram + double cumulative sum, so it costs ``O(n + resolution^2)``.
        """
        if resolution < 2:
            raise QueryError("resolution must be >= 2")
        xmin, xmax, ymin, ymax = self.bounds
        grid_x = np.linspace(xmin, xmax, resolution)
        grid_y = np.linspace(ymin, ymax, resolution)
        hist, _, _ = np.histogram2d(
            self.xs,
            self.ys,
            bins=[_edges_from_centers(grid_x), _edges_from_centers(grid_y)],
            weights=self.weights,
        )
        grid_cf = np.cumsum(np.cumsum(hist, axis=0), axis=1)
        return grid_x, grid_y, grid_cf

    def __post_init__(self) -> None:
        self._xs_sorted = self.xs[self.order_by_x]


def _edges_from_centers(centers: np.ndarray) -> np.ndarray:
    """Bin edges such that each center is the right edge of its bin.

    This makes ``cumsum(hist)`` at grid point ``i`` equal the count of points
    with coordinate <= centers[i] (up to points exactly on edges).
    """
    left = np.concatenate(([-np.inf], centers[:-1]))
    # Use the centers themselves as right edges; the first left edge is -inf
    # so every point below the first center falls into bin 0.
    edges = np.concatenate((left[:1], centers))
    edges[0] = min(centers[0] - 1.0, centers[0] - abs(centers[0]) * 0.01 - 1.0)
    return edges


def build_cumulative_2d(
    xs: np.ndarray,
    ys: np.ndarray,
    weights: np.ndarray | None = None,
) -> Cumulative2D:
    """Build the exact two-key cumulative structure from point coordinates.

    Parameters
    ----------
    xs, ys:
        Point coordinates (first and second key).
    weights:
        Optional non-negative per-point measures; omit for COUNT semantics.

    Raises
    ------
    DataError
        If the coordinate arrays are malformed, contain non-finite values, or
        weights are negative (the cumulative surface must stay monotone).
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.ndim != 1 or ys.ndim != 1:
        raise DataError("coordinates must be 1-D arrays")
    if xs.size == 0:
        raise DataError("point set is empty")
    if xs.size != ys.size:
        raise DataError("x and y arrays must have equal length")
    if not (np.all(np.isfinite(xs)) and np.all(np.isfinite(ys))):
        raise DataError("coordinates contain NaN or infinite values")
    weight_array = None
    if weights is not None:
        weight_array = np.asarray(weights, dtype=np.float64)
        if weight_array.shape != xs.shape:
            raise DataError("weights must have the same length as the coordinates")
        if not np.all(np.isfinite(weight_array)):
            raise DataError("weights contain NaN or infinite values")
        if np.any(weight_array < 0):
            raise DataError("weights must be non-negative")
    order = np.argsort(xs, kind="stable")
    return Cumulative2D(
        xs=xs,
        ys=ys,
        order_by_x=order,
        ys_sorted_by_x=ys[order],
        weights=weight_array,
        weights_sorted_by_x=None if weight_array is None else weight_array[order],
    )
