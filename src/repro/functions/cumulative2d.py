"""Two-key cumulative count function ``CFcount(u, v)`` (Definition 5).

``CFcount(u, v)`` counts records with first key ``<= u`` and second key
``<= v``.  A rectangle COUNT query is then answered by four-corner
inclusion-exclusion.  The exact representation used here is a sorted-column
structure that answers corner evaluations in ``O(log n)`` per corner via a
merge-based dominance count, plus a dense prefix-sum grid for bulk sampling
during surface fitting.

For *batch* workloads the per-query scan is replaced by an offline sweep
over the x-sorted point arrays (:meth:`Cumulative2D.range_count_batch`):
each rectangle reduces to four prefix dominance counts
``D(k, r) = #{i < k : rank(y_i) < r}``, and those are answered by a
Fenwick-style merge tree (:class:`_PrefixMergeTree`) built once over the
y-ranks in x-order — ``log n`` levels of block-sorted arrays, with every
level answering all pending queries in a single ``searchsorted``.  The whole
workload costs O((n + q) log n) inside a handful of NumPy passes instead of
O(q) Python-level scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DataError, QueryError

__all__ = ["Cumulative2D", "build_cumulative_2d"]


class _PrefixMergeTree:
    """Offline prefix dominance counting over a permutation of ``[0, n)``.

    Level ``l`` stores the rank array sorted inside blocks of ``2**l``
    elements; a prefix ``[0, k)`` decomposes into one block per set bit of
    ``k`` (the Fenwick decomposition), so ``D(k, r) = #{i < k : rank_i < r}``
    is the sum of at most ``log n`` within-block counts.  Blocks at one level
    are disambiguated by adding ``block_index * (n + 2)`` to both the stored
    ranks and the query thresholds, which makes the whole level one globally
    sorted array — every level then answers all queries with a single
    ``searchsorted`` call.

    With ``weights`` the tree also stores within-block prefix sums aligned to
    the sorted order, turning the same machinery into weighted dominance
    *sums* for the cumulative-SUM surface.
    """

    __slots__ = ("_n", "_offset", "_levels")

    def __init__(self, ranks: np.ndarray, weights: np.ndarray | None = None) -> None:
        n = int(ranks.size)
        self._n = n
        self._offset = np.int64(n + 2)
        height = max(1, (n - 1).bit_length() if n > 1 else 1)
        padded = 1 << height
        rank_pad = np.full(padded, n, dtype=np.int64)
        rank_pad[:n] = ranks
        weight_pad = None
        if weights is not None:
            weight_pad = np.zeros(padded, dtype=np.float64)
            weight_pad[:n] = weights
        self._levels: list[tuple[np.ndarray, np.ndarray | None]] = []
        # The top level (one block spanning the whole padded array) is only
        # reachable when some prefix k has bit `height` set, i.e. k == padded
        # — which requires n == padded; otherwise skip its build entirely.
        top = height + 1 if n == padded else height
        for level in range(top):
            block = 1 << level
            view = rank_pad.reshape(-1, block)
            order = np.argsort(view, axis=1, kind="stable")
            sorted_ranks = np.take_along_axis(view, order, axis=1)
            offsets = (np.arange(view.shape[0], dtype=np.int64) * self._offset)[:, None]
            flat = (sorted_ranks + offsets).ravel()
            cumulative = None
            if weight_pad is not None:
                sorted_weights = np.take_along_axis(
                    weight_pad.reshape(-1, block), order, axis=1
                )
                cumulative = np.cumsum(sorted_weights, axis=1).ravel()
            self._levels.append((flat, cumulative))

    def query(self, prefixes: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """``D(prefixes[i], thresholds[i])`` for all ``i`` — counts, or
        weighted sums when the tree was built with weights."""
        prefixes = np.asarray(prefixes, dtype=np.int64)
        thresholds = np.asarray(thresholds, dtype=np.int64)
        out = np.zeros(prefixes.shape, dtype=np.float64)
        for level, (flat, cumulative) in enumerate(self._levels):
            mask = ((prefixes >> level) & 1) == 1
            if not np.any(mask):
                continue
            k = prefixes[mask]
            # Fenwick decomposition: bit ``level`` of k covers the block
            # [m, m + 2**level) with m = (k >> (level+1)) << (level+1).
            block = (k >> (level + 1)) << 1
            position = np.searchsorted(
                flat, thresholds[mask] + block * self._offset, side="left"
            )
            within = position - (block << level)
            if cumulative is None:
                out[mask] += within
            else:
                out[mask] += np.where(
                    within > 0, cumulative[(block << level) + within - 1], 0.0
                )
        return out


@dataclass
class Cumulative2D:
    """Exact two-key cumulative aggregate structure.

    With unit weights (the default) this is the cumulative *count* function of
    Definition 5; with explicit per-point weights it generalizes to the
    cumulative SUM surface, which Section VI notes the same machinery
    supports.

    The structure stores points sorted by ``x`` and, for dominance counting,
    a Fenwick-style offline approach is avoided in favour of a rank grid: the
    points are mapped to their rank in each dimension and a prefix-sum matrix
    over an ``grid_size x grid_size`` rank grid gives corner counts whose
    error is at most the number of points sharing a grid cell; exact counts
    are then recovered by scanning the single boundary cell row/column.  For
    the sizes used in this reproduction a direct sorted-scan evaluation is
    also provided and used as ground truth in tests.
    """

    xs: np.ndarray
    ys: np.ndarray
    order_by_x: np.ndarray = field(repr=False)
    ys_sorted_by_x: np.ndarray = field(repr=False)
    weights: np.ndarray | None = None
    weights_sorted_by_x: np.ndarray = field(repr=False, default=None)

    @property
    def size(self) -> int:
        """Number of points."""
        return int(self.xs.size)

    @property
    def total(self) -> float:
        """Total aggregate over all points."""
        if self.weights is None:
            return float(self.size)
        return float(self.weights.sum())

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """Bounding box ``(xmin, xmax, ymin, ymax)`` of the point set."""
        return (
            float(self.xs.min()),
            float(self.xs.max()),
            float(self.ys.min()),
            float(self.ys.max()),
        )

    def evaluate(self, u: float, v: float) -> float:
        """Exact ``CF(u, v)``: aggregate weight of points with x <= u and y <= v."""
        hi = int(np.searchsorted(self.xs_sorted, u, side="right"))
        if hi == 0:
            return 0.0
        mask = self.ys_sorted_by_x[:hi] <= v
        if self.weights_sorted_by_x is None:
            return float(np.count_nonzero(mask))
        return float(self.weights_sorted_by_x[:hi][mask].sum())

    @property
    def xs_sorted(self) -> np.ndarray:
        """The x coordinates sorted ascending (cached by construction)."""
        return self._xs_sorted

    def range_count(self, x_low: float, x_high: float, y_low: float, y_high: float) -> float:
        """Exact COUNT/SUM over the closed rectangle via inclusion-exclusion."""
        if x_high < x_low or y_high < y_low:
            raise QueryError("invalid rectangle bounds")
        hi = int(np.searchsorted(self.xs_sorted, x_high, side="right"))
        lo = int(np.searchsorted(self.xs_sorted, x_low, side="left"))
        if hi <= lo:
            return 0.0
        ys_window = self.ys_sorted_by_x[lo:hi]
        mask = (ys_window >= y_low) & (ys_window <= y_high)
        if self.weights_sorted_by_x is None:
            return float(np.count_nonzero(mask))
        return float(self.weights_sorted_by_x[lo:hi][mask].sum())

    def range_count_batch(
        self,
        x_lows: np.ndarray,
        x_highs: np.ndarray,
        y_lows: np.ndarray,
        y_highs: np.ndarray,
    ) -> np.ndarray:
        """Exact COUNT/SUM for N closed rectangles — the offline sweep.

        Each rectangle is four prefix dominance counts over the x-sorted
        point order (the closed bounds become half-open rank thresholds via
        ``searchsorted`` side selection, matching :meth:`range_count`'s tie
        semantics exactly), all answered together by the lazily built
        :class:`_PrefixMergeTree`.  COUNT results are bit-identical to the
        per-query scan; SUM results differ only by floating-point summation
        order.
        """
        x_lows = np.asarray(x_lows, dtype=np.float64)
        x_highs = np.asarray(x_highs, dtype=np.float64)
        y_lows = np.asarray(y_lows, dtype=np.float64)
        y_highs = np.asarray(y_highs, dtype=np.float64)
        if np.any(x_highs < x_lows) or np.any(y_highs < y_lows):
            raise QueryError("invalid rectangle bounds")
        tree, ys_by_value = self._prefix_structures()
        hi = np.searchsorted(self.xs_sorted, x_highs, side="right")
        lo = np.searchsorted(self.xs_sorted, x_lows, side="left")
        r_hi = np.searchsorted(ys_by_value, y_highs, side="right")
        r_lo = np.searchsorted(ys_by_value, y_lows, side="left")
        prefixes = np.concatenate((hi, hi, lo, lo))
        thresholds = np.concatenate((r_hi, r_lo, r_hi, r_lo))
        dominance = tree.query(prefixes, thresholds)
        n = x_lows.size
        return (
            dominance[:n]
            - dominance[n: 2 * n]
            - dominance[2 * n: 3 * n]
            + dominance[3 * n:]
        )

    def _prefix_structures(self) -> tuple["_PrefixMergeTree", np.ndarray]:
        """The merge tree over y-ranks in x-order, built on first batch use.

        An O(n log n)-memory acceleration cache for the exact *fallback*
        path only; scalar users and (de)serialization never pay for it.
        """
        if self._merge_tree is None:
            order = np.argsort(self.ys_sorted_by_x, kind="stable")
            ranks = np.empty(order.size, dtype=np.int64)
            ranks[order] = np.arange(order.size, dtype=np.int64)
            self._ys_by_value = self.ys_sorted_by_x[order]
            self._merge_tree = _PrefixMergeTree(ranks, self.weights_sorted_by_x)
        return self._merge_tree, self._ys_by_value

    def sample_grid(self, resolution: int = 64) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample ``CFcount`` on a regular grid for surface fitting.

        Returns ``(grid_x, grid_y, grid_cf)`` where ``grid_cf[i, j]`` is the
        cumulative count at ``(grid_x[i], grid_y[j])``.  Computed with a 2-D
        histogram + double cumulative sum, so it costs ``O(n + resolution^2)``.
        """
        if resolution < 2:
            raise QueryError("resolution must be >= 2")
        xmin, xmax, ymin, ymax = self.bounds
        grid_x = np.linspace(xmin, xmax, resolution)
        grid_y = np.linspace(ymin, ymax, resolution)
        hist, _, _ = np.histogram2d(
            self.xs,
            self.ys,
            bins=[_edges_from_centers(grid_x), _edges_from_centers(grid_y)],
            weights=self.weights,
        )
        grid_cf = np.cumsum(np.cumsum(hist, axis=0), axis=1)
        return grid_x, grid_y, grid_cf

    def __post_init__(self) -> None:
        self._xs_sorted = self.xs[self.order_by_x]
        # Batch-only acceleration caches (built lazily by range_count_batch).
        self._merge_tree: _PrefixMergeTree | None = None
        self._ys_by_value: np.ndarray | None = None


def _edges_from_centers(centers: np.ndarray) -> np.ndarray:
    """Bin edges such that each center is the right edge of its bin.

    This makes ``cumsum(hist)`` at grid point ``i`` equal the count of points
    with coordinate <= centers[i] (up to points exactly on edges).
    """
    left = np.concatenate(([-np.inf], centers[:-1]))
    # Use the centers themselves as right edges; the first left edge is -inf
    # so every point below the first center falls into bin 0.
    edges = np.concatenate((left[:1], centers))
    edges[0] = min(centers[0] - 1.0, centers[0] - abs(centers[0]) * 0.01 - 1.0)
    return edges


def build_cumulative_2d(
    xs: np.ndarray,
    ys: np.ndarray,
    weights: np.ndarray | None = None,
) -> Cumulative2D:
    """Build the exact two-key cumulative structure from point coordinates.

    Parameters
    ----------
    xs, ys:
        Point coordinates (first and second key).
    weights:
        Optional non-negative per-point measures; omit for COUNT semantics.

    Raises
    ------
    DataError
        If the coordinate arrays are malformed, contain non-finite values, or
        weights are negative (the cumulative surface must stay monotone).
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.ndim != 1 or ys.ndim != 1:
        raise DataError("coordinates must be 1-D arrays")
    if xs.size == 0:
        raise DataError("point set is empty")
    if xs.size != ys.size:
        raise DataError("x and y arrays must have equal length")
    if not (np.all(np.isfinite(xs)) and np.all(np.isfinite(ys))):
        raise DataError("coordinates contain NaN or infinite values")
    weight_array = None
    if weights is not None:
        weight_array = np.asarray(weights, dtype=np.float64)
        if weight_array.shape != xs.shape:
            raise DataError("weights must have the same length as the coordinates")
        if not np.all(np.isfinite(weight_array)):
            raise DataError("weights contain NaN or infinite values")
        if np.any(weight_array < 0):
            raise DataError("weights must be non-negative")
    order = np.argsort(xs, kind="stable")
    return Cumulative2D(
        xs=xs,
        ys=ys,
        order_by_x=order,
        ys_sorted_by_x=ys[order],
        weights=weight_array,
        weights_sorted_by_x=None if weight_array is None else weight_array[order],
    )
