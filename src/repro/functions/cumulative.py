"""Key-cumulative function ``CFsum`` (Equation 4 of the paper).

``CFsum(k) = Rsum(D, [-inf, k])`` — the running sum of measures over all
records with key at most ``k``.  With unit measures it becomes the cumulative
count function used for COUNT queries.  The paper represents it discretely as
the key-cumulative array (KCA, Figure 3) and evaluates it by binary search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import Aggregate
from ..errors import DataError, QueryError

__all__ = ["CumulativeFunction", "build_cumulative_function"]


def _validate_key_measure(keys: np.ndarray, measures: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    keys = np.asarray(keys, dtype=np.float64)
    measures = np.asarray(measures, dtype=np.float64)
    if keys.ndim != 1 or measures.ndim != 1:
        raise DataError("keys and measures must be 1-D arrays")
    if keys.size == 0:
        raise DataError("dataset is empty")
    if keys.size != measures.size:
        raise DataError(
            f"keys and measures must have equal length, got {keys.size} and {measures.size}"
        )
    if not np.all(np.isfinite(keys)):
        raise DataError("keys contain NaN or infinite values")
    if not np.all(np.isfinite(measures)):
        raise DataError("measures contain NaN or infinite values")
    return keys, measures


@dataclass(frozen=True)
class CumulativeFunction:
    """A sampled key-cumulative function (the paper's KCA).

    Attributes
    ----------
    keys:
        Sorted, strictly increasing keys of the dataset.
    values:
        ``values[i] = sum of measures of records with key <= keys[i]``.
    aggregate:
        Either :attr:`Aggregate.SUM` or :attr:`Aggregate.COUNT` depending on
        whether the original measures or unit measures were accumulated.
    """

    keys: np.ndarray
    values: np.ndarray
    aggregate: Aggregate

    def __post_init__(self) -> None:
        if self.keys.shape != self.values.shape:
            raise DataError("keys and values must have identical shapes")

    @property
    def size(self) -> int:
        """Number of sampled points."""
        return int(self.keys.size)

    @property
    def total(self) -> float:
        """Total aggregate over the entire dataset."""
        return float(self.values[-1])

    def evaluate(self, k: float | np.ndarray) -> np.ndarray | float:
        """Exact evaluation ``CFsum(k)`` by binary search.

        Keys strictly below the smallest data key map to 0; keys at or above
        the largest data key map to the total.  Works on scalars and arrays.
        """
        k_arr = np.asarray(k, dtype=np.float64)
        idx = np.searchsorted(self.keys, k_arr, side="right")
        padded = np.concatenate(([0.0], self.values))
        result = padded[idx]
        if np.isscalar(k) or k_arr.ndim == 0:
            return float(result)
        return result

    def range_sum(self, low: float, high: float) -> float:
        """Exact range aggregate over ``[low, high]`` (Equation 5).

        The range is closed on both ends; following the paper we compute
        ``CFsum(high) - CFsum(low)`` where the lower term excludes the record
        at ``low`` itself only if ``low`` is strictly between keys.  To match
        the relational-algebra semantics (``k in [lq, uq]`` inclusive) we
        subtract the cumulative value just *below* ``low``.
        """
        if high < low:
            raise QueryError(f"invalid range [{low}, {high}]")
        upper = self.evaluate(high)
        lower_idx = int(np.searchsorted(self.keys, low, side="left"))
        lower = 0.0 if lower_idx == 0 else float(self.values[lower_idx - 1])
        return float(upper) - lower

    def range_sum_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`range_sum` over N ranges in O(1) NumPy calls."""
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        if lows.shape != highs.shape:
            raise QueryError("lows and highs must have matching shapes")
        if np.any(highs < lows):
            raise QueryError("invalid range: high < low")
        padded = np.concatenate(([0.0], self.values))
        upper = padded[np.searchsorted(self.keys, highs, side="right")]
        lower = padded[np.searchsorted(self.keys, lows, side="left")]
        return upper - lower

    def slice_points(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        """Return the (keys, values) points with indices in ``[start, stop)``."""
        if not 0 <= start <= stop <= self.size:
            raise QueryError(f"bad slice [{start}, {stop}) for size {self.size}")
        return self.keys[start:stop], self.values[start:stop]


def build_cumulative_function(
    keys: np.ndarray,
    measures: np.ndarray | None = None,
    aggregate: Aggregate = Aggregate.SUM,
    *,
    presorted: bool = False,
) -> CumulativeFunction:
    """Build the key-cumulative function from a (key, measure) dataset.

    Parameters
    ----------
    keys:
        Record keys (any order unless ``presorted``).
    measures:
        Record measures.  Ignored for COUNT (unit measures are used); required
        for SUM.
    aggregate:
        :attr:`Aggregate.SUM` or :attr:`Aggregate.COUNT`.
    presorted:
        Set when ``keys`` are already sorted ascending to skip the sort.

    Returns
    -------
    CumulativeFunction
        The sampled cumulative function.

    Raises
    ------
    DataError
        If the input arrays are malformed, contain non-finite values, or SUM
        is requested with negative measures (the paper assumes non-negative
        measures so that CFsum is monotone).
    """
    if aggregate not in (Aggregate.SUM, Aggregate.COUNT):
        raise DataError(f"cumulative function only supports SUM/COUNT, got {aggregate}")
    keys = np.asarray(keys, dtype=np.float64)
    if measures is None:
        measures = np.ones_like(keys)
    keys, measures = _validate_key_measure(keys, measures)

    if aggregate is Aggregate.COUNT:
        measures = np.ones_like(keys)
    elif np.any(measures < 0):
        raise DataError("SUM cumulative function requires non-negative measures")

    if not presorted:
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        measures = measures[order]
    elif np.any(np.diff(keys) < 0):
        raise DataError("presorted=True but keys are not sorted ascending")

    # Collapse duplicate keys: their measures accumulate onto a single sample,
    # which keeps the cumulative array a function of the key.
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    if unique_keys.size != keys.size:
        summed = np.zeros(unique_keys.size, dtype=np.float64)
        np.add.at(summed, inverse, measures)
        keys, measures = unique_keys, summed

    values = np.cumsum(measures)
    return CumulativeFunction(keys=keys, values=values, aggregate=aggregate)
