"""Key-measure step function ``DFmax`` / ``DFmin`` (Equation 6 of the paper).

For MAX/MIN queries the target function is simply the measure as a (step)
function of the key.  The PolyFit index fits piecewise polynomials to the
sampled (key, measure) points; the exact baseline is an aggregate tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import Aggregate
from ..errors import DataError, QueryError

__all__ = ["KeyMeasureFunction", "build_key_measure_function"]


@dataclass(frozen=True)
class KeyMeasureFunction:
    """A sampled key-measure function.

    Attributes
    ----------
    keys:
        Sorted, strictly increasing keys.
    measures:
        Measure of the record at each key.
    aggregate:
        :attr:`Aggregate.MAX` or :attr:`Aggregate.MIN` — records which extreme
        queries on this function will compute.
    """

    keys: np.ndarray
    measures: np.ndarray
    aggregate: Aggregate

    def __post_init__(self) -> None:
        if self.keys.shape != self.measures.shape:
            raise DataError("keys and measures must have identical shapes")

    @property
    def size(self) -> int:
        """Number of sampled points."""
        return int(self.keys.size)

    def evaluate(self, k: float) -> float:
        """Step-function evaluation ``DF(k)`` (Equation 6).

        Returns the measure of the last record whose key is ``<= k``, or 0
        when ``k`` lies before the first key (the paper's "0 otherwise"
        branch).
        """
        idx = int(np.searchsorted(self.keys, k, side="right")) - 1
        if idx < 0:
            return 0.0
        return float(self.measures[idx])

    def range_extreme(self, low: float, high: float) -> float:
        """Exact range MAX/MIN over keys in ``[low, high]`` by scanning.

        Used as the ground truth in tests; the fast exact method is the
        aggregate tree in :mod:`repro.baselines.aggregate_tree`.
        """
        if high < low:
            raise QueryError(f"invalid range [{low}, {high}]")
        lo = int(np.searchsorted(self.keys, low, side="left"))
        hi = int(np.searchsorted(self.keys, high, side="right"))
        if hi <= lo:
            return float("nan")
        window = self.measures[lo:hi]
        if self.aggregate is Aggregate.MAX:
            return float(window.max())
        return float(window.min())

    def range_extreme_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Exact MAX/MIN over N ranges.

        The index bounds are located with one vectorized ``searchsorted`` per
        side; the per-range extreme itself is a window reduction, evaluated
        per query (window sizes differ, so there is no single ufunc for it).
        Empty ranges yield NaN, matching :meth:`range_extreme`.
        """
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        if lows.shape != highs.shape:
            raise QueryError("lows and highs must have matching shapes")
        if np.any(highs < lows):
            raise QueryError("invalid range: high < low")
        lo = np.searchsorted(self.keys, lows, side="left")
        hi = np.searchsorted(self.keys, highs, side="right")
        reduce = np.max if self.aggregate is Aggregate.MAX else np.min
        out = np.full(lows.shape, np.nan, dtype=np.float64)
        for i in range(out.size):
            if hi[i] > lo[i]:
                out[i] = reduce(self.measures[lo[i]: hi[i]])
        return out

    def slice_points(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        """Return the (keys, measures) points with indices in ``[start, stop)``."""
        if not 0 <= start <= stop <= self.size:
            raise QueryError(f"bad slice [{start}, {stop}) for size {self.size}")
        return self.keys[start:stop], self.measures[start:stop]


def build_key_measure_function(
    keys: np.ndarray,
    measures: np.ndarray,
    aggregate: Aggregate = Aggregate.MAX,
    *,
    presorted: bool = False,
) -> KeyMeasureFunction:
    """Build the key-measure function from a (key, measure) dataset.

    Duplicate keys are collapsed to a single sample keeping the extreme
    measure consistent with ``aggregate`` (max for MAX, min for MIN) so the
    result is still a function of the key and range extremes are preserved.

    Raises
    ------
    DataError
        If arrays are malformed or contain non-finite values, or if the
        aggregate is not MIN/MAX.
    """
    if aggregate not in (Aggregate.MAX, Aggregate.MIN):
        raise DataError(f"key-measure function only supports MAX/MIN, got {aggregate}")
    keys = np.asarray(keys, dtype=np.float64)
    measures = np.asarray(measures, dtype=np.float64)
    if keys.ndim != 1 or measures.ndim != 1:
        raise DataError("keys and measures must be 1-D arrays")
    if keys.size == 0:
        raise DataError("dataset is empty")
    if keys.size != measures.size:
        raise DataError("keys and measures must have equal length")
    if not (np.all(np.isfinite(keys)) and np.all(np.isfinite(measures))):
        raise DataError("keys/measures contain NaN or infinite values")

    if not presorted:
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        measures = measures[order]
    elif np.any(np.diff(keys) < 0):
        raise DataError("presorted=True but keys are not sorted ascending")

    unique_keys, inverse = np.unique(keys, return_inverse=True)
    if unique_keys.size != keys.size:
        if aggregate is Aggregate.MAX:
            collapsed = np.full(unique_keys.size, -np.inf)
            np.maximum.at(collapsed, inverse, measures)
        else:
            collapsed = np.full(unique_keys.size, np.inf)
            np.minimum.at(collapsed, inverse, measures)
        keys, measures = unique_keys, collapsed

    return KeyMeasureFunction(keys=keys, measures=measures, aggregate=aggregate)
