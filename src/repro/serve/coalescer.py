"""Request coalescing: scalar traffic in, vectorized batches out.

The batch read path answers N queries 60-80x faster per query than N scalar
calls (``BENCH_batch_throughput.json``), but end users issue *scalar*
requests.  :class:`Coalescer` converts one into the other: concurrent
requests accumulate in per-``(index, guarantee)`` queues, and every
``max_wait_ms`` tick the queue is flushed as **one** ``query_batch`` call
whose per-query answers are scattered back to per-request futures.

Correctness invariant: every batch kernel in the library is
element-independent (evaluating a concatenation of workloads equals
concatenating their evaluations — the property the sharding layer already
relies on), and a queue only ever mixes requests with the *same* guarantee
against the *same* index, evaluated against the *same* pinned epoch view.
A coalesced answer is therefore bit-identical to calling ``query_batch``
directly with the request's bounds.

Operational behaviour:

* **Ticking** — a flusher task per queue wakes every ``max_wait_ms``; a
  wake-up with an empty queue (a zero-arrival tick) terminates the task
  (no idle spinning; the next submit restarts it).
* **Overflow splitting** — a flush drains the queue in ``max_batch``-sized
  slices, issuing one engine call per slice, all within the same tick.
* **Admission control** — at most ``max_pending`` requests may be queued
  across all queues; beyond that :meth:`submit` fails fast with
  :class:`~repro.errors.ServerOverloadedError` (HTTP 503) instead of
  building an unbounded backlog.
* **Drain-then-stop** — :meth:`stop` rejects new submissions, flushes
  everything already accepted, and resolves every in-flight future before
  returning.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Mapping, NamedTuple, Sequence

import numpy as np

from ..errors import QueryError, ServerOverloadedError
from ..queries.types import Guarantee
from .host import EngineHost

__all__ = ["Coalescer", "ServedAnswer", "CoalescerStats"]

#: Queue key: one coalescing stream per (index name, guarantee).
_QueueKey = tuple[str, Guarantee | None]


class ServedAnswer(NamedTuple):
    """One scalar answer scattered out of a coalesced batch.

    Mirrors :class:`~repro.queries.types.QueryResult` plus serving metadata:
    the epoch/version of the pinned view that produced it and the size of
    the batch it rode in (1 when the request was alone in its tick).

    A NamedTuple rather than a dataclass: the scatter loop builds one per
    request on the serving hot path, and tuple construction is several
    times cheaper than frozen-dataclass ``__init__``.
    """

    value: float
    guaranteed: bool
    exact_fallback: bool
    error_bound: float | None
    epoch: int
    version: int
    batch_size: int
    #: True when the answer was computed around failed fleet partitions
    #: (degraded read: the certified bound is widened, see FleetRouter).
    partial: bool = False


@dataclass
class CoalescerStats:
    """Monotone counters exposed through the server's ``/stats`` endpoint."""

    submitted: int = 0
    served: int = 0
    rejected: int = 0
    failed: int = 0
    batches: int = 0
    ticks: int = 0
    max_batch_size: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average requests per engine call (the coalescing win)."""
        return self.served / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "served": self.served,
            "rejected": self.rejected,
            "failed": self.failed,
            "batches": self.batches,
            "ticks": self.ticks,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": round(self.mean_batch_size, 2),
        }


class Coalescer:
    """Collects concurrent scalar requests into vectorized batch calls.

    Parameters
    ----------
    hosts:
        Named :class:`~repro.serve.host.EngineHost` instances (or one host,
        registered under its own name).
    max_wait_ms:
        Tick length: the longest a lone request waits before its flush.
        Smaller ticks trade batch size (throughput) for latency.
    max_batch:
        Largest single engine call; a fuller queue is drained in slices.
    max_pending:
        Admission-control bound on queued requests across all queues.
    """

    def __init__(
        self,
        hosts: Mapping[str, EngineHost] | EngineHost,
        *,
        max_wait_ms: float = 1.0,
        max_batch: int = 8192,
        max_pending: int = 65536,
    ) -> None:
        if isinstance(hosts, EngineHost):
            hosts = {hosts.name: hosts}
        if not hosts:
            raise QueryError("coalescer needs at least one host")
        if max_wait_ms <= 0:
            raise QueryError(f"max_wait_ms must be positive, got {max_wait_ms}")
        if max_batch < 1:
            raise QueryError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise QueryError(f"max_pending must be >= 1, got {max_pending}")
        self._hosts = dict(hosts)
        self._max_wait = max_wait_ms / 1000.0
        self._max_batch = int(max_batch)
        self._max_pending = int(max_pending)
        self._queues: dict[_QueueKey, list[tuple[tuple[float, ...], asyncio.Future]]] = {}
        self._flushers: dict[_QueueKey, asyncio.Task] = {}
        self._pending = 0
        self._closed = False
        self.stats = CoalescerStats()

    # ------------------------------------------------------------------ #
    # Submission (event-loop thread)
    # ------------------------------------------------------------------ #

    def submit(
        self,
        bounds: Sequence[float],
        guarantee: Guarantee | None = None,
        *,
        index: str = "default",
    ) -> "asyncio.Future[ServedAnswer]":
        """Enqueue one scalar request; the future resolves at the next flush.

        ``bounds`` is ``(low, high)`` for 1-D hosts and ``(x_low, x_high,
        y_low, y_high)`` for 2-D hosts.  Malformed bounds are rejected here,
        per request — never inside a flush, where one bad request would fail
        its whole batch.
        """
        if self._closed:
            self.stats.rejected += 1
            raise ServerOverloadedError("server is shutting down")
        host = self._hosts.get(index)
        if host is None:
            raise QueryError(f"unknown index {index!r}")
        bounds = tuple(map(float, bounds))
        if len(bounds) != 2 * host.dims:
            raise QueryError(
                f"index {index!r} expects {2 * host.dims} bounds, got {len(bounds)}"
            )
        for low, high in zip(bounds[::2], bounds[1::2]):
            if high < low:
                raise QueryError(f"invalid query range [{low}, {high}]")
        if self._pending >= self._max_pending:
            self.stats.rejected += 1
            raise ServerOverloadedError(
                f"admission control: {self._pending} requests already pending "
                f"(max_pending={self._max_pending})"
            )
        key: _QueueKey = (index, guarantee)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queues.setdefault(key, []).append((bounds, future))
        self._pending += 1
        self.stats.submitted += 1
        flusher = self._flushers.get(key)
        if flusher is None or flusher.done():
            self._flushers[key] = asyncio.ensure_future(self._flush_loop(key))
        return future

    @property
    def pending(self) -> int:
        """Requests accepted but not yet answered."""
        return self._pending

    @property
    def closed(self) -> bool:
        """Whether :meth:`stop` has begun (new submissions are rejected)."""
        return self._closed

    @property
    def hosts(self) -> dict[str, EngineHost]:
        """The named hosts this coalescer serves (read-only view)."""
        return dict(self._hosts)

    # ------------------------------------------------------------------ #
    # Flushing
    # ------------------------------------------------------------------ #

    async def _flush_loop(self, key: _QueueKey) -> None:
        """Per-queue ticker: sleep a tick, drain, exit when a tick is empty.

        The empty-check-then-return path contains no await, so a submit can
        only interleave while this task is parked on ``sleep`` or inside a
        flush — both of which re-examine the queue afterwards; no request
        can be stranded.
        """
        while True:
            await asyncio.sleep(self._max_wait)
            self.stats.ticks += 1
            queue = self._queues.get(key)
            if not queue:
                return
            while queue:
                batch = queue[:self._max_batch]
                del queue[:self._max_batch]
                await self._flush(key, batch)

    async def _flush(
        self, key: _QueueKey, batch: list[tuple[tuple[float, ...], asyncio.Future]]
    ) -> None:
        """Evaluate one slice as a single batch call and scatter the answers."""
        index_name, guarantee = key
        host = self._hosts[index_name]
        # One C-level conversion of the bounds tuples, then column views.
        bounds_matrix = np.array([bounds for bounds, _ in batch], dtype=np.float64)
        columns = tuple(
            np.ascontiguousarray(bounds_matrix[:, i])
            for i in range(2 * host.dims)
        )
        view = host.pin()  # on the loop: atomic w.r.t. writes
        loop = asyncio.get_running_loop()
        try:
            answer = await loop.run_in_executor(
                None, host.execute, view, columns, guarantee
            )
        except Exception as error:  # pragma: no cover - engine faults are rare
            self._pending -= len(batch)
            self.stats.failed += len(batch)
            for _, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        self._pending -= len(batch)
        self.stats.batches += 1
        self.stats.served += len(batch)
        self.stats.max_batch_size = max(self.stats.max_batch_size, len(batch))
        size = len(batch)
        epoch, version = view.epoch, view.version
        # Bulk-convert the columns once (C loops) instead of indexing numpy
        # scalars per request — the scatter loop is the serving hot path.
        values = answer.values.tolist()
        guaranteed = answer.guaranteed.tolist()
        fallback = answer.exact_fallback.tolist()
        error_bounds = answer.error_bounds.tolist()
        degraded_column = getattr(answer, "degraded", None)
        degraded = (
            degraded_column.tolist() if degraded_column is not None else [False] * size
        )
        for i, (_, future) in enumerate(batch):
            if future.done():  # cancelled by the client
                continue
            bound = error_bounds[i]
            future.set_result(
                ServedAnswer(
                    values[i], guaranteed[i], fallback[i],
                    bound if bound == bound else None,  # NaN -> None
                    epoch, version, size, degraded[i],
                )
            )

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #

    async def stop(self) -> None:
        """Drain-then-stop: reject new work, answer everything accepted.

        Idempotent.  After it returns every previously returned future is
        resolved (with an answer or an engine error) and :meth:`submit`
        raises :class:`~repro.errors.ServerOverloadedError`.
        """
        self._closed = True
        # Drain directly instead of waiting out the tickers: each slice is
        # popped synchronously, so a concurrently flushing ticker and this
        # loop never double-serve a request.
        for key in list(self._queues):
            queue = self._queues[key]
            while queue:
                batch = queue[:self._max_batch]
                del queue[:self._max_batch]
                await self._flush(key, batch)
        # Never cancel a ticker: one caught mid-flush would abandon its
        # batch's futures.  With the queues empty each ticker exits on its
        # own at the next tick, so this waits at most ~one max_wait_ms.
        flushers = [task for task in self._flushers.values() if not task.done()]
        await asyncio.gather(*flushers, return_exceptions=True)
        self._flushers.clear()
