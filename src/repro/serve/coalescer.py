"""Request coalescing: scalar traffic in, vectorized batches out.

The batch read path answers N queries 60-80x faster per query than N scalar
calls (``BENCH_batch_throughput.json``), but end users issue *scalar*
requests.  :class:`Coalescer` converts one into the other: concurrent
requests accumulate in per-``(index, guarantee)`` queues, and every
``max_wait_ms`` tick the queue is flushed as **one** ``query_batch`` call
whose per-query answers are scattered back to per-request futures.

Correctness invariant: every batch kernel in the library is
element-independent (evaluating a concatenation of workloads equals
concatenating their evaluations — the property the sharding layer already
relies on), and a queue only ever mixes requests with the *same* guarantee
against the *same* index, evaluated against the *same* pinned epoch view.
A coalesced answer is therefore bit-identical to calling ``query_batch``
directly with the request's bounds.

Operational behaviour:

* **Ticking** — a flusher task per queue wakes every ``max_wait_ms``; a
  wake-up with an empty queue (a zero-arrival tick) terminates the task
  (no idle spinning; the next submit restarts it).
* **Overflow splitting** — a flush drains the queue in ``max_batch``-sized
  slices, issuing one engine call per slice, all within the same tick.
* **Admission control** — at most ``max_pending`` requests may be queued
  across all queues; beyond that :meth:`submit` fails fast with
  :class:`~repro.errors.ServerOverloadedError` (HTTP 503) instead of
  building an unbounded backlog.
* **Drain-then-stop** — :meth:`stop` rejects new submissions, flushes
  everything already accepted, and resolves every in-flight future before
  returning.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Mapping, NamedTuple, Sequence

import numpy as np

from ..errors import QueryError, ServerOverloadedError
from ..obs.metrics import SIZE_BUCKETS, counter_family, gauge_family, histogram_family
from ..obs.tracing import Trace, Tracer
from ..queries.types import Guarantee
from .host import EngineHost

__all__ = ["Coalescer", "CoalescerMetrics", "ServedAnswer", "CoalescerStats"]

#: Queue key: one coalescing stream per (index name, guarantee).
_QueueKey = tuple[str, Guarantee | None]

#: Queue entry: request bounds, its future, the perf-counter enqueue instant
#: (queue-wait measurement) and the request's sampled trace (usually None).
_QueueItem = tuple[tuple[float, ...], asyncio.Future, float, "Trace | None"]


class ServedAnswer(NamedTuple):
    """One scalar answer scattered out of a coalesced batch.

    Mirrors :class:`~repro.queries.types.QueryResult` plus serving metadata:
    the epoch/version of the pinned view that produced it and the size of
    the batch it rode in (1 when the request was alone in its tick).

    A NamedTuple rather than a dataclass: the scatter loop builds one per
    request on the serving hot path, and tuple construction is several
    times cheaper than frozen-dataclass ``__init__``.
    """

    value: float
    guaranteed: bool
    exact_fallback: bool
    error_bound: float | None
    epoch: int
    version: int
    batch_size: int
    #: True when the answer was computed around failed fleet partitions
    #: (degraded read: the certified bound is widened, see FleetRouter).
    partial: bool = False


@dataclass
class CoalescerStats:
    """Monotone counters exposed through the server's ``/stats`` endpoint."""

    submitted: int = 0
    served: int = 0
    rejected: int = 0
    failed: int = 0
    batches: int = 0
    ticks: int = 0
    max_batch_size: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average requests per engine call (the coalescing win)."""
        return self.served / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "served": self.served,
            "rejected": self.rejected,
            "failed": self.failed,
            "batches": self.batches,
            "ticks": self.ticks,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": round(self.mean_batch_size, 2),
        }


class CoalescerMetrics:
    """Per-coalescer instrument bundle (the single source of truth).

    :attr:`Coalescer.stats` is a *view* over these instruments, so the
    ``/stats`` JSON and the ``/metrics`` exposition can never disagree.
    Label-less children are pre-resolved once — the flush path touches
    plain ``Counter``/``Histogram`` objects, never the family dict.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self._fam_submitted = counter_family(
            "repro_coalescer_submitted_total",
            "Scalar requests accepted into a coalescing queue.",
            enabled=enabled,
        )
        self._fam_served = counter_family(
            "repro_coalescer_served_total",
            "Requests answered out of a coalesced batch.",
            enabled=enabled,
        )
        self._fam_rejected = counter_family(
            "repro_coalescer_rejected_total",
            "Requests refused by admission control or shutdown.",
            enabled=enabled,
        )
        self._fam_failed = counter_family(
            "repro_coalescer_failed_total",
            "Requests failed by an engine error during their flush.",
            enabled=enabled,
        )
        self._fam_batches = counter_family(
            "repro_coalescer_batches_total",
            "Engine calls issued (one per flushed slice).",
            enabled=enabled,
        )
        self._fam_ticks = counter_family(
            "repro_coalescer_ticks_total",
            "Flusher wake-ups, including empty (terminating) ticks.",
            enabled=enabled,
        )
        self._fam_pending = gauge_family(
            "repro_coalescer_pending",
            "Requests accepted but not yet answered.",
            enabled=enabled,
        )
        self._fam_max_batch = gauge_family(
            "repro_coalescer_max_batch_size",
            "Largest batch flushed so far.",
            enabled=enabled,
        )
        self._fam_queue_wait = histogram_family(
            "repro_coalescer_queue_wait_seconds",
            "Time a request spent queued before its flush began.",
            enabled=enabled,
        )
        self._fam_flush = histogram_family(
            "repro_coalescer_flush_seconds",
            "Engine-call latency of one flushed slice (pin to answer).",
            enabled=enabled,
        )
        self._fam_batch_size = histogram_family(
            "repro_coalescer_batch_size",
            "Requests per engine call (the coalescing win).",
            buckets=SIZE_BUCKETS,
            enabled=enabled,
        )
        self.submitted = self._fam_submitted.labels()
        self.served = self._fam_served.labels()
        self.rejected = self._fam_rejected.labels()
        self.failed = self._fam_failed.labels()
        self.batches = self._fam_batches.labels()
        self.ticks = self._fam_ticks.labels()
        self.pending = self._fam_pending.labels()
        self.max_batch_size = self._fam_max_batch.labels()
        self.queue_wait_seconds = self._fam_queue_wait.labels()
        self.flush_seconds = self._fam_flush.labels()
        self.batch_size = self._fam_batch_size.labels()

    def families(self) -> list:
        return [
            family
            for family in (
                self._fam_submitted,
                self._fam_served,
                self._fam_rejected,
                self._fam_failed,
                self._fam_batches,
                self._fam_ticks,
                self._fam_pending,
                self._fam_max_batch,
                self._fam_queue_wait,
                self._fam_flush,
                self._fam_batch_size,
            )
            if getattr(family, "enabled", False)
        ]


class Coalescer:
    """Collects concurrent scalar requests into vectorized batch calls.

    Parameters
    ----------
    hosts:
        Named :class:`~repro.serve.host.EngineHost` instances (or one host,
        registered under its own name).
    max_wait_ms:
        Tick length: the longest a lone request waits before its flush.
        Smaller ticks trade batch size (throughput) for latency.
    max_batch:
        Largest single engine call; a fuller queue is drained in slices.
    max_pending:
        Admission-control bound on queued requests across all queues.
    instrument:
        When False, every instrument in :class:`CoalescerMetrics` is the
        shared null no-op (for overhead A/B runs); :attr:`stats` then reads
        all zeros.
    tracer:
        Optional sampled :class:`~repro.obs.tracing.Tracer`.  The sampling
        decision is made per request at :meth:`submit`; sampled requests
        carry a :class:`~repro.obs.tracing.Trace` through the queue and the
        flush, picking up queue-wait, pin and engine-side spans.
    """

    def __init__(
        self,
        hosts: Mapping[str, EngineHost] | EngineHost,
        *,
        max_wait_ms: float = 1.0,
        max_batch: int = 8192,
        max_pending: int = 65536,
        instrument: bool = True,
        tracer: Tracer | None = None,
    ) -> None:
        if isinstance(hosts, EngineHost):
            hosts = {hosts.name: hosts}
        if not hosts:
            raise QueryError("coalescer needs at least one host")
        if max_wait_ms <= 0:
            raise QueryError(f"max_wait_ms must be positive, got {max_wait_ms}")
        if max_batch < 1:
            raise QueryError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise QueryError(f"max_pending must be >= 1, got {max_pending}")
        self._hosts = dict(hosts)
        self._max_wait = max_wait_ms / 1000.0
        self._max_batch = int(max_batch)
        self._max_pending = int(max_pending)
        self._queues: dict[_QueueKey, list[_QueueItem]] = {}
        self._flushers: dict[_QueueKey, asyncio.Task] = {}
        self._pending = 0
        self._closed = False
        self._obs = CoalescerMetrics(enabled=instrument)
        self._tracer = tracer

    @property
    def stats(self) -> CoalescerStats:
        """Counter view for ``/stats`` — reads the same instruments as
        ``/metrics``, so the two endpoints cannot drift apart."""
        obs = self._obs
        return CoalescerStats(
            submitted=int(obs.submitted.value),
            served=int(obs.served.value),
            rejected=int(obs.rejected.value),
            failed=int(obs.failed.value),
            batches=int(obs.batches.value),
            ticks=int(obs.ticks.value),
            max_batch_size=int(obs.max_batch_size.value),
        )

    @property
    def metrics(self) -> CoalescerMetrics:
        """The live instrument bundle (register via ``families()``)."""
        return self._obs

    def metrics_families(self) -> list:
        """Metric families for registry registration."""
        return self._obs.families()

    # ------------------------------------------------------------------ #
    # Submission (event-loop thread)
    # ------------------------------------------------------------------ #

    def submit(
        self,
        bounds: Sequence[float],
        guarantee: Guarantee | None = None,
        *,
        index: str = "default",
    ) -> "asyncio.Future[ServedAnswer]":
        """Enqueue one scalar request; the future resolves at the next flush.

        ``bounds`` is ``(low, high)`` for 1-D hosts and ``(x_low, x_high,
        y_low, y_high)`` for 2-D hosts.  Malformed bounds are rejected here,
        per request — never inside a flush, where one bad request would fail
        its whole batch.
        """
        if self._closed:
            self._obs.rejected.inc()
            raise ServerOverloadedError("server is shutting down")
        host = self._hosts.get(index)
        if host is None:
            raise QueryError(f"unknown index {index!r}")
        bounds = tuple(map(float, bounds))
        if len(bounds) != 2 * host.dims:
            raise QueryError(
                f"index {index!r} expects {2 * host.dims} bounds, got {len(bounds)}"
            )
        for low, high in zip(bounds[::2], bounds[1::2]):
            if high < low:
                raise QueryError(f"invalid query range [{low}, {high}]")
        if self._pending >= self._max_pending:
            self._obs.rejected.inc()
            raise ServerOverloadedError(
                f"admission control: {self._pending} requests already pending "
                f"(max_pending={self._max_pending})"
            )
        key: _QueueKey = (index, guarantee)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        trace = (
            self._tracer.start(
                "query",
                index=index,
                guarantee=getattr(guarantee, "value", None),
            )
            if self._tracer is not None
            else None
        )
        self._queues.setdefault(key, []).append(
            (bounds, future, time.perf_counter(), trace)
        )
        self._pending += 1
        self._obs.submitted.inc()
        self._obs.pending.set(self._pending)
        flusher = self._flushers.get(key)
        if flusher is None or flusher.done():
            self._flushers[key] = asyncio.ensure_future(self._flush_loop(key))
        return future

    @property
    def pending(self) -> int:
        """Requests accepted but not yet answered."""
        return self._pending

    @property
    def closed(self) -> bool:
        """Whether :meth:`stop` has begun (new submissions are rejected)."""
        return self._closed

    @property
    def hosts(self) -> dict[str, EngineHost]:
        """The named hosts this coalescer serves (read-only view)."""
        return dict(self._hosts)

    # ------------------------------------------------------------------ #
    # Flushing
    # ------------------------------------------------------------------ #

    async def _flush_loop(self, key: _QueueKey) -> None:
        """Per-queue ticker: sleep a tick, drain, exit when a tick is empty.

        The empty-check-then-return path contains no await, so a submit can
        only interleave while this task is parked on ``sleep`` or inside a
        flush — both of which re-examine the queue afterwards; no request
        can be stranded.
        """
        while True:
            await asyncio.sleep(self._max_wait)
            self._obs.ticks.inc()
            queue = self._queues.get(key)
            if not queue:
                return
            while queue:
                batch = queue[:self._max_batch]
                del queue[:self._max_batch]
                await self._flush(key, batch)

    async def _flush(self, key: _QueueKey, batch: list[_QueueItem]) -> None:
        """Evaluate one slice as a single batch call and scatter the answers."""
        index_name, guarantee = key
        host = self._hosts[index_name]
        flush_start = time.perf_counter()
        self._obs.queue_wait_seconds.observe_many(
            [flush_start - enqueued for _, _, enqueued, _ in batch]
        )
        traces = [trace for _, _, _, trace in batch if trace is not None]
        for trace in traces:
            trace.attrs.setdefault("batch_size", len(batch))
        # One C-level conversion of the bounds tuples, then column views.
        bounds_matrix = np.array([bounds for bounds, _, _, _ in batch], dtype=np.float64)
        columns = tuple(
            np.ascontiguousarray(bounds_matrix[:, i])
            for i in range(2 * host.dims)
        )
        view = host.pin()  # on the loop: atomic w.r.t. writes
        pinned_at = time.perf_counter()
        for _, _, enqueued, trace in batch:
            if trace is not None:
                trace.add_span("queue_wait", enqueued, flush_start)
                trace.add_span("pin", flush_start, pinned_at, epoch=view.epoch)
        # Only the first sampled request carries the trace into the engine:
        # the whole slice shares one execute call, so the engine-side spans
        # (cache probe, fan-out, shard exec, merge) would be identical.
        lead_trace = traces[0] if traces else None
        loop = asyncio.get_running_loop()
        try:
            answer = await loop.run_in_executor(
                None, host.execute, view, columns, guarantee, lead_trace
            )
        except Exception as error:  # pragma: no cover - engine faults are rare
            self._pending -= len(batch)
            self._obs.pending.set(self._pending)
            self._obs.failed.inc(len(batch))
            self._finish_traces(traces, error=type(error).__name__)
            for _, future, _, _ in batch:
                if not future.done():
                    future.set_exception(error)
            return
        self._pending -= len(batch)
        self._obs.pending.set(self._pending)
        self._obs.batches.inc()
        self._obs.served.inc(len(batch))
        self._obs.max_batch_size.set_max(len(batch))
        self._obs.flush_seconds.observe(time.perf_counter() - flush_start)
        self._obs.batch_size.observe(len(batch))
        self._finish_traces(traces)
        size = len(batch)
        epoch, version = view.epoch, view.version
        # Bulk-convert the columns once (C loops) instead of indexing numpy
        # scalars per request — the scatter loop is the serving hot path.
        values = answer.values.tolist()
        guaranteed = answer.guaranteed.tolist()
        fallback = answer.exact_fallback.tolist()
        error_bounds = answer.error_bounds.tolist()
        degraded_column = getattr(answer, "degraded", None)
        degraded = (
            degraded_column.tolist() if degraded_column is not None else [False] * size
        )
        for i, (_, future, _, _) in enumerate(batch):
            if future.done():  # cancelled by the client
                continue
            bound = error_bounds[i]
            future.set_result(
                ServedAnswer(
                    values[i], guaranteed[i], fallback[i],
                    bound if bound == bound else None,  # NaN -> None
                    epoch, version, size, degraded[i],
                )
            )

    def _finish_traces(self, traces: list[Trace], error: str | None = None) -> None:
        if self._tracer is None:
            return
        for trace in traces:
            if error is not None:
                trace.attrs["error"] = error
            self._tracer.finish(trace)

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #

    async def stop(self) -> None:
        """Drain-then-stop: reject new work, answer everything accepted.

        Idempotent.  After it returns every previously returned future is
        resolved (with an answer or an engine error) and :meth:`submit`
        raises :class:`~repro.errors.ServerOverloadedError`.
        """
        self._closed = True
        # Drain directly instead of waiting out the tickers: each slice is
        # popped synchronously, so a concurrently flushing ticker and this
        # loop never double-serve a request.
        for key in list(self._queues):
            queue = self._queues[key]
            while queue:
                batch = queue[:self._max_batch]
                del queue[:self._max_batch]
                await self._flush(key, batch)
        # Never cancel a ticker: one caught mid-flush would abandon its
        # batch's futures.  With the queues empty each ticker exits on its
        # own at the next tick, so this waits at most ~one max_wait_ms.
        flushers = [task for task in self._flushers.values() if not task.done()]
        await asyncio.gather(*flushers, return_exceptions=True)
        self._flushers.clear()
