"""Blocking HTTP client for a running serve instance.

Thin ``urllib``-based helpers so the ``repro query-remote`` CLI (and tests)
can smoke-test a server without pulling in an HTTP client dependency.  Every
helper returns the decoded JSON payload; non-2xx responses raise
:class:`~repro.errors.QueryError` (or
:class:`~repro.errors.ServerOverloadedError` for 503) carrying the server's
error message.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from ..errors import QueryError, ServerOverloadedError
from ..queries.types import Guarantee

__all__ = ["request_json", "query_remote", "query_batch_remote", "stats_remote", "health_remote"]


def request_json(
    base_url: str,
    path: str,
    payload: dict | None = None,
    *,
    timeout: float = 10.0,
) -> dict:
    """One HTTP round-trip: GET when ``payload`` is None, POST otherwise."""
    url = base_url.rstrip("/") + path
    body = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url,
        data=body,
        headers={"Content-Type": "application/json", "Connection": "close"},
        method="GET" if payload is None else "POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        try:
            message = json.loads(error.read().decode()).get("error", str(error))
        except (json.JSONDecodeError, UnicodeDecodeError):
            message = str(error)
        if error.code == 503:
            raise ServerOverloadedError(message) from None
        raise QueryError(f"server returned {error.code}: {message}") from None
    except urllib.error.URLError as error:
        raise QueryError(f"cannot reach {url}: {error.reason}") from None


def _guarantee_spec(guarantee: Guarantee | None) -> dict | None:
    if guarantee is None:
        return None
    return {"kind": guarantee.kind.value, "epsilon": guarantee.epsilon}


def query_remote(
    base_url: str,
    *bounds: float,
    guarantee: Guarantee | None = None,
    index: str = "default",
    timeout: float = 10.0,
) -> dict:
    """Answer one scalar query: 2 bounds for 1-D hosts, 4 for 2-D hosts."""
    if len(bounds) == 2:
        payload: dict = {"low": bounds[0], "high": bounds[1]}
    elif len(bounds) == 4:
        payload = {
            "x_low": bounds[0], "x_high": bounds[1],
            "y_low": bounds[2], "y_high": bounds[3],
        }
    else:
        raise QueryError(f"expected 2 or 4 bounds, got {len(bounds)}")
    payload["index"] = index
    spec = _guarantee_spec(guarantee)
    if spec is not None:
        payload["guarantee"] = spec
    return request_json(base_url, "/query", payload, timeout=timeout)


def query_batch_remote(
    base_url: str,
    lows,
    highs,
    *,
    guarantee: Guarantee | None = None,
    index: str = "default",
    timeout: float = 30.0,
) -> dict:
    """Answer a 1-D workload in one ``/query_batch`` call."""
    payload: dict = {"lows": list(lows), "highs": list(highs), "index": index}
    spec = _guarantee_spec(guarantee)
    if spec is not None:
        payload["guarantee"] = spec
    return request_json(base_url, "/query_batch", payload, timeout=timeout)


def stats_remote(base_url: str, *, timeout: float = 10.0) -> dict:
    """Fetch the server's ``/stats`` payload."""
    return request_json(base_url, "/stats", timeout=timeout)


def health_remote(base_url: str, *, timeout: float = 10.0) -> dict:
    """Fetch the server's ``/healthz`` payload."""
    return request_json(base_url, "/healthz", timeout=timeout)
