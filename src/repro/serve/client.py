"""Blocking HTTP client for a running serve instance.

Thin ``urllib``-based helpers so the ``repro query-remote`` CLI (and tests)
can smoke-test a server without pulling in an HTTP client dependency.  Every
helper returns the decoded JSON payload; non-2xx responses raise
:class:`~repro.errors.QueryError` (or
:class:`~repro.errors.ServerOverloadedError` for 503) carrying the server's
error message.

**Retries.**  ``retries=`` enables bounded retry with exponential backoff
and full jitter, but only for failures where retrying can help: a 503
(admission control — the server explicitly asked us to come back later) or
a connection-level error (server not yet listening, connection refused).
Application errors (400/404, malformed responses) never retry — the request
would fail identically every time.  When the server sends a
``retry_after_s`` hint it overrides the computed backoff, and an overall
``deadline_s`` caps the total time spent including sleeps, so a retrying
client still observes its caller's budget.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request

from ..errors import QueryError, ServerOverloadedError
from ..queries.types import Guarantee

__all__ = [
    "request_json",
    "request_text",
    "query_remote",
    "query_batch_remote",
    "stats_remote",
    "health_remote",
    "metrics_remote",
    "slowlog_remote",
    "traces_remote",
]


class _ConnectionFailed(QueryError):
    """Internal marker: the request never reached the server (retryable)."""


def _request_once(base_url: str, path: str, payload: dict | None, timeout: float) -> dict:
    """One HTTP round-trip: GET when ``payload`` is None, POST otherwise."""
    url = base_url.rstrip("/") + path
    body = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url,
        data=body,
        headers={"Content-Type": "application/json", "Connection": "close"},
        method="GET" if payload is None else "POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        try:
            decoded = json.loads(error.read().decode())
        except (json.JSONDecodeError, UnicodeDecodeError):
            decoded = {}
        message = decoded.get("error", str(error)) if isinstance(decoded, dict) else str(error)
        if error.code == 503:
            hint = decoded.get("retry_after_s") if isinstance(decoded, dict) else None
            raise ServerOverloadedError(
                message,
                retry_after_s=float(hint) if isinstance(hint, (int, float)) else None,
            ) from None
        raise QueryError(f"server returned {error.code}: {message}") from None
    except urllib.error.URLError as error:
        raise _ConnectionFailed(f"cannot reach {url}: {error.reason}") from None


def request_json(
    base_url: str,
    path: str,
    payload: dict | None = None,
    *,
    timeout: float = 10.0,
    retries: int = 0,
    backoff_s: float = 0.05,
    max_backoff_s: float = 2.0,
    deadline_s: float | None = None,
    sleep=time.sleep,
    rng: random.Random | None = None,
    clock=time.monotonic,
) -> dict:
    """HTTP round-trip with up to ``retries`` retries on retryable failures.

    ``sleep``/``rng``/``clock`` are injectable for deterministic tests: the
    k-th backoff is drawn uniformly from ``(0, min(backoff_s * 2**k,
    max_backoff_s)]`` (full jitter), unless the server supplied a
    ``Retry-After`` hint, which wins.  ``deadline_s`` bounds the *total*
    elapsed time; once it would be exceeded the last error is re-raised
    instead of sleeping.
    """
    if retries < 0:
        raise QueryError(f"retries must be >= 0, got {retries}")
    rng = rng if rng is not None else random.Random()
    started = clock()
    attempt = 0
    while True:
        try:
            return _request_once(base_url, path, payload, timeout)
        except (ServerOverloadedError, _ConnectionFailed) as error:
            if attempt >= retries:
                raise
            hint = getattr(error, "retry_after_s", None)
            if hint is not None and hint >= 0:
                delay = float(hint)
            else:
                ceiling = min(backoff_s * (2.0 ** attempt), max_backoff_s)
                delay = rng.uniform(0.0, ceiling) if ceiling > 0 else 0.0
            if deadline_s is not None and (clock() - started) + delay > deadline_s:
                raise
            sleep(delay)
            attempt += 1


def _guarantee_spec(guarantee: Guarantee | None) -> dict | None:
    if guarantee is None:
        return None
    return {"kind": guarantee.kind.value, "epsilon": guarantee.epsilon}


def query_remote(
    base_url: str,
    *bounds: float,
    guarantee: Guarantee | None = None,
    index: str = "default",
    timeout: float = 10.0,
    retries: int = 0,
    deadline_ms: float | None = None,
) -> dict:
    """Answer one scalar query: 2 bounds for 1-D hosts, 4 for 2-D hosts.

    ``deadline_ms`` is forwarded to the server as the request's budget and
    also caps the client's own retry loop.
    """
    if len(bounds) == 2:
        payload: dict = {"low": bounds[0], "high": bounds[1]}
    elif len(bounds) == 4:
        payload = {
            "x_low": bounds[0], "x_high": bounds[1],
            "y_low": bounds[2], "y_high": bounds[3],
        }
    else:
        raise QueryError(f"expected 2 or 4 bounds, got {len(bounds)}")
    payload["index"] = index
    spec = _guarantee_spec(guarantee)
    if spec is not None:
        payload["guarantee"] = spec
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    return request_json(
        base_url, "/query", payload,
        timeout=timeout, retries=retries,
        deadline_s=None if deadline_ms is None else deadline_ms / 1000.0,
    )


def query_batch_remote(
    base_url: str,
    lows,
    highs,
    *,
    guarantee: Guarantee | None = None,
    index: str = "default",
    timeout: float = 30.0,
    retries: int = 0,
    deadline_ms: float | None = None,
) -> dict:
    """Answer a 1-D workload in one ``/query_batch`` call."""
    payload: dict = {"lows": list(lows), "highs": list(highs), "index": index}
    spec = _guarantee_spec(guarantee)
    if spec is not None:
        payload["guarantee"] = spec
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    return request_json(
        base_url, "/query_batch", payload,
        timeout=timeout, retries=retries,
        deadline_s=None if deadline_ms is None else deadline_ms / 1000.0,
    )


def stats_remote(base_url: str, *, timeout: float = 10.0, retries: int = 0) -> dict:
    """Fetch the server's ``/stats`` payload."""
    return request_json(base_url, "/stats", timeout=timeout, retries=retries)


def health_remote(base_url: str, *, timeout: float = 10.0, retries: int = 0) -> dict:
    """Fetch the server's ``/healthz`` payload."""
    return request_json(base_url, "/healthz", timeout=timeout, retries=retries)


def request_text(base_url: str, path: str, *, timeout: float = 10.0) -> str:
    """One GET round-trip returning the raw response body as text.

    For non-JSON endpoints (the Prometheus ``/metrics`` exposition).
    """
    url = base_url.rstrip("/") + path
    request = urllib.request.Request(
        url, headers={"Connection": "close"}, method="GET"
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        raise QueryError(f"server returned {error.code} for {path}") from None
    except urllib.error.URLError as error:
        raise _ConnectionFailed(f"cannot reach {url}: {error.reason}") from None


def metrics_remote(base_url: str, *, timeout: float = 10.0) -> str:
    """Fetch the server's ``/metrics`` Prometheus text exposition."""
    return request_text(base_url, "/metrics", timeout=timeout)


def slowlog_remote(base_url: str, *, timeout: float = 10.0, retries: int = 0) -> dict:
    """Fetch the server's ``/slowlog`` payload."""
    return request_json(base_url, "/slowlog", timeout=timeout, retries=retries)


def traces_remote(base_url: str, *, timeout: float = 10.0, retries: int = 0) -> dict:
    """Fetch the server's ``/traces`` payload (sampled span timelines)."""
    return request_json(base_url, "/traces", timeout=timeout, retries=retries)
