"""Query serving: asyncio micro-batching in front of the batch engines.

The library's batch read path answers N queries 60-80x faster per query
than N scalar calls, but a server's clients issue scalar requests.  This
package turns one into the other:

* :class:`~repro.serve.coalescer.Coalescer` — collects each ~1 ms tick's
  concurrent requests per ``(index, guarantee)`` and flushes them as one
  vectorized ``query_batch`` call, bit-identical to direct calls.
* :class:`~repro.serve.host.EngineHost` — pins epoch snapshots on
  updatable indexes and wires the cache/kernel/shard knobs.
* :class:`~repro.serve.http.ServeServer` — a dependency-free asyncio
  HTTP/JSON front (``/query``, ``/query_batch``, ``/stats``, ``/healthz``,
  plus write endpoints for updatable indexes).
* :mod:`~repro.serve.client` — blocking helpers for remote smoke tests
  (``repro query-remote``).

See ``benchmarks/bench_serve_latency.py`` for the latency/throughput
protocol and the coalesced-vs-naive gates.
"""

from .coalescer import Coalescer, CoalescerMetrics, CoalescerStats, ServedAnswer
from .host import EngineHost, HostMetrics, PinnedView
from .http import HttpMetrics, ServeServer
from .client import (
    health_remote,
    metrics_remote,
    query_batch_remote,
    query_remote,
    request_json,
    request_text,
    slowlog_remote,
    stats_remote,
    traces_remote,
)

__all__ = [
    "Coalescer",
    "CoalescerMetrics",
    "CoalescerStats",
    "ServedAnswer",
    "EngineHost",
    "HostMetrics",
    "PinnedView",
    "ServeServer",
    "HttpMetrics",
    "request_json",
    "request_text",
    "query_remote",
    "query_batch_remote",
    "stats_remote",
    "health_remote",
    "metrics_remote",
    "slowlog_remote",
    "traces_remote",
]
