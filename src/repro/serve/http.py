"""Asyncio HTTP/JSON front-end over the coalescing query engine.

A deliberately small HTTP/1.1 server on raw :func:`asyncio.start_server`
streams — no third-party web framework, so the serving layer runs anywhere
the library does (aiohttp-style frameworks add nothing here: the handlers
are four tiny JSON routes and the hot path is the coalescer, not the
parser).  Keep-alive is supported; request bodies are JSON.

Routes
------
``GET /healthz``
    Liveness: ``{"status": "ok", "hosts": {..}}`` where each host reports
    its epoch, write version, buffered-insert count and WAL lag (insert
    records since the last checkpoint seal — what a restart would replay).
``GET /stats``
    Coalescer counters, per-host epoch/version/cache info, uptime.  A JSON
    *view* over the same instruments ``/metrics`` exposes — the two can
    never disagree.
``GET /metrics``
    The full metrics registry in Prometheus text exposition format 0.0.4:
    HTTP, coalescer, host, cache, shard, fleet, WAL and compaction series.
``GET /slowlog``
    Recent requests slower than ``slow_query_ms``, newest last.
``GET /traces``
    Recently sampled query traces (see ``trace_sample_rate``): per-request
    span timelines (queue wait -> pin -> cache probe -> fan-out -> merge).
``POST /query``
    One scalar query ``{"low": .., "high": ..}`` (2-D: ``x_low``/``x_high``/
    ``y_low``/``y_high``), optional ``"index"`` and ``"guarantee":
    {"kind": "absolute"|"relative", "epsilon": ..}``.  Served through the
    coalescer — concurrent clients share one vectorized engine call.
``POST /query_batch``
    A whole workload ``{"lows": [..], "highs": [..]}`` in one call,
    bypassing the coalescer (it already *is* a batch); same cache and
    epoch pinning.
``POST /insert`` / ``POST /compact``
    Write endpoints for updatable indexes (404 on immutable hosts would be
    wrong — they return 400 with the library's NotSupported message).

Status codes: 400 malformed request, 404 unknown route/index, 503 admission
control / shutdown / expired deadline, 500 engine fault.  A query answered
*around* failed fleet partitions (degraded read, see
:class:`~repro.fleet.router.FleetRouter`) returns **206 Partial Content**:
the body is a normal answer whose certified bound was widened to cover the
missing partitions, with ``"partial": true`` so clients can tell.  Every 503
carries a ``Retry-After`` header (and ``retry_after_s`` in the JSON body) so
well-behaved clients back off instead of hammering an overloaded server.

Requests may set ``"deadline_ms"``: if the server cannot answer within that
budget the request fails with 503 rather than occupying a queue slot forever.
"""

from __future__ import annotations

import asyncio
import json
import math
import sys
import time
from typing import Mapping, NamedTuple

import numpy as np

from ..errors import NotSupportedError, QueryError, ReproError, ServerOverloadedError
from ..obs.metrics import (
    EXPOSITION_CONTENT_TYPE,
    MetricsRegistry,
    counter_family,
    histogram_family,
)
from ..obs.slowlog import SlowQueryLog
from ..obs.tracing import Tracer
from ..queries.types import Guarantee
from .coalescer import Coalescer, ServedAnswer
from .host import EngineHost

__all__ = ["ServeServer", "HttpMetrics"]

_MAX_BODY_BYTES = 64 * 1024 * 1024

#: Back-off hint attached to 503 responses that carry no explicit hint.
_DEFAULT_RETRY_AFTER_S = 0.1

#: Routes that get their own ``endpoint`` label value; anything else is
#: folded into ``"other"`` so junk paths cannot explode series cardinality.
_KNOWN_ENDPOINTS = frozenset(
    {
        "/healthz",
        "/stats",
        "/metrics",
        "/metrics.json",
        "/slowlog",
        "/traces",
        "/query",
        "/query_batch",
        "/insert",
        "/compact",
    }
)


class _RawText(NamedTuple):
    """A non-JSON response body (the ``/metrics`` exposition)."""

    content_type: str
    text: str


class HttpMetrics:
    """Front-door instruments: per-endpoint traffic, latency, slow queries."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.requests_total = counter_family(
            "repro_http_requests_total",
            "HTTP requests answered, by endpoint and status code.",
            ("endpoint", "status"),
            enabled=enabled,
        )
        self.request_seconds = histogram_family(
            "repro_http_request_seconds",
            "Wall time from routing a request to having its response body.",
            ("endpoint",),
            enabled=enabled,
        )
        self.slow_queries_total = counter_family(
            "repro_http_slow_queries_total",
            "Query requests that crossed the slow-query threshold.",
            enabled=enabled,
        )

    def families(self) -> list:
        return [
            family
            for family in (
                self.requests_total,
                self.request_seconds,
                self.slow_queries_total,
            )
            if getattr(family, "enabled", False)
        ]


def _parse_guarantee(payload: dict) -> Guarantee | None:
    """Build a :class:`Guarantee` from the optional request field."""
    spec = payload.get("guarantee")
    if spec is None:
        return None
    if not isinstance(spec, dict) or "kind" not in spec or "epsilon" not in spec:
        raise QueryError('guarantee must be {"kind": "absolute"|"relative", "epsilon": x}')
    kind = spec["kind"]
    epsilon = float(spec["epsilon"])
    if kind == "absolute":
        return Guarantee.absolute(epsilon)
    if kind == "relative":
        return Guarantee.relative(epsilon)
    raise QueryError(f"unknown guarantee kind {kind!r}")


def _scalar_bounds(payload: dict, dims: int) -> tuple[float, ...]:
    """Extract one request's bounds for a 1-D or 2-D host."""
    names = ("low", "high") if dims == 1 else ("x_low", "x_high", "y_low", "y_high")
    try:
        return tuple(float(payload[name]) for name in names)
    except KeyError as missing:
        raise QueryError(f"missing bound {missing.args[0]!r}") from None
    except (TypeError, ValueError):
        raise QueryError("bounds must be numbers") from None


def _batch_bounds(payload: dict, dims: int) -> tuple[np.ndarray, ...]:
    """Extract a workload's bound arrays for a 1-D or 2-D host."""
    names = ("lows", "highs") if dims == 1 else ("x_lows", "x_highs", "y_lows", "y_highs")
    try:
        columns = tuple(
            np.asarray(payload[name], dtype=np.float64) for name in names
        )
    except KeyError as missing:
        raise QueryError(f"missing bound array {missing.args[0]!r}") from None
    except (TypeError, ValueError):
        raise QueryError("bound arrays must be lists of numbers") from None
    sizes = {column.shape for column in columns}
    if len(sizes) != 1 or columns[0].ndim != 1 or columns[0].size == 0:
        raise QueryError("bound arrays must be equal-length non-empty lists")
    return columns


def _answer_payload(answer: ServedAnswer) -> dict:
    return {
        "value": answer.value,
        "guaranteed": answer.guaranteed,
        "exact_fallback": answer.exact_fallback,
        "error_bound": answer.error_bound,
        "epoch": answer.epoch,
        "version": answer.version,
        "batch_size": answer.batch_size,
        "partial": answer.partial,
    }


def _deadline_s(payload: dict) -> float | None:
    """Parse the optional per-request ``deadline_ms`` budget."""
    raw = payload.get("deadline_ms")
    if raw is None:
        return None
    try:
        deadline = float(raw)
    except (TypeError, ValueError):
        raise QueryError("deadline_ms must be a positive number") from None
    if not deadline > 0:
        raise QueryError("deadline_ms must be a positive number")
    return deadline / 1000.0


async def _within_deadline(awaitable, deadline: float | None):
    """Await with an optional budget; expiry becomes a retryable 503."""
    if deadline is None:
        return await awaitable
    try:
        return await asyncio.wait_for(awaitable, timeout=deadline)
    except asyncio.TimeoutError:
        raise ServerOverloadedError(
            f"deadline of {deadline * 1000:.0f}ms expired before the answer "
            f"was ready",
            retry_after_s=deadline,
        ) from None


class ServeServer:
    """The serving process: hosts + coalescer + HTTP listener.

    Parameters mirror the coalescer's; ``hosts`` is one
    :class:`EngineHost` or a name->host mapping.  Use :meth:`start` /
    :meth:`stop` (drain-then-stop) directly, or :meth:`serve_forever` from
    a CLI entry point.

    Observability knobs
    -------------------
    ``instrument``
        When False the server's own instruments (HTTP + coalescer) are
        no-ops and the registry exposes only whatever the hosts still
        record; pair with ``EngineHost(instrument=False)`` for a fully
        uninstrumented A/B baseline.
    ``trace_sample_rate`` / ``trace_capacity`` / ``trace_seed``
        Fraction of ``/query`` requests that record a span timeline, the
        ring size, and an optional seed for deterministic sampling.
    ``slow_query_ms``
        Query requests at or above this wall time land in ``/slowlog``.
    ``log_format`` / ``log_stream``
        ``"json"`` emits one access-log line per request (status, latency,
        epoch, batch size) to ``log_stream`` (default stdout); the default
        ``"plain"`` keeps the historical behaviour of logging nothing.
    """

    def __init__(
        self,
        hosts: Mapping[str, EngineHost] | EngineHost,
        *,
        max_wait_ms: float = 1.0,
        max_batch: int = 8192,
        max_pending: int = 65536,
        instrument: bool = True,
        trace_sample_rate: float = 0.0,
        trace_capacity: int = 256,
        trace_seed: int | None = None,
        slow_query_ms: float = 250.0,
        log_format: str = "plain",
        log_stream=None,
    ) -> None:
        if log_format not in ("plain", "json"):
            raise QueryError(f"log_format must be 'plain' or 'json', got {log_format!r}")
        self.tracer = Tracer(
            sample_rate=trace_sample_rate,
            capacity=trace_capacity,
            seed=trace_seed,
        )
        self.coalescer = Coalescer(
            hosts,
            max_wait_ms=max_wait_ms,
            max_batch=max_batch,
            max_pending=max_pending,
            instrument=instrument,
            tracer=self.tracer,
        )
        self._hosts = self.coalescer.hosts
        self._server: asyncio.AbstractServer | None = None
        self._started_at = time.monotonic()
        self.requests_served = 0
        self.slowlog = SlowQueryLog(threshold_ms=slow_query_ms)
        self._log_format = log_format
        self._log_stream = log_stream
        self._obs = HttpMetrics(enabled=instrument)
        self.metrics = MetricsRegistry()
        self.metrics.register_all(self._obs.families())
        self.metrics.register_all(self.coalescer.metrics_families())
        self._refresh_host_families()

    def _refresh_host_families(self) -> None:
        """(Re-)register every host's families under its ``index`` label.

        Idempotent (the registry dedupes), and called again on each
        ``/metrics`` scrape so families created after startup — e.g. by a
        fleet partition split — are picked up without a restart.
        """
        for name, engine_host in self._hosts.items():
            self.metrics.register_all(
                engine_host.metrics_families(), {"index": name}
            )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's choice)."""
        if self._server is None or not self._server.sockets:
            raise QueryError("server is not listening")
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self, host: str = "127.0.0.1", port: int = 8080) -> None:
        """Bind and start accepting connections."""
        self._started_at = time.monotonic()
        self._server = await asyncio.start_server(self._handle_connection, host, port)

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, then drain in-flight requests."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.coalescer.stop()
        for engine_host in self._hosts.values():
            engine_host.close()

    async def serve_forever(self, host: str = "127.0.0.1", port: int = 8080) -> None:
        """Start and serve until cancelled; drains on the way out."""
        await self.start(host, port)
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                started = time.perf_counter()
                status, payload = await self._route(method, path, body)
                duration = time.perf_counter() - started
                self.requests_served += 1
                self._observe_request(method, path, status, duration, payload)
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - client went away
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, dict, bytes] | None:
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, path, _ = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: "dict | _RawText",
        keep_alive: bool,
    ) -> None:
        reasons = {200: "OK", 206: "Partial Content", 400: "Bad Request",
                   404: "Not Found", 500: "Internal Server Error",
                   503: "Service Unavailable"}
        if isinstance(payload, _RawText):
            body = payload.text.encode("utf-8")
            content_type = payload.content_type
            retry_header = ""
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
            retry_after = payload.get("retry_after_s")
            retry_header = (
                f"Retry-After: {max(0, math.ceil(retry_after))}\r\n"
                if isinstance(retry_after, (int, float))
                else ""
            )
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{retry_header}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # Per-request observability (metrics, slow-query log, access log)
    # ------------------------------------------------------------------ #

    def _observe_request(
        self,
        method: str,
        path: str,
        status: int,
        duration: float,
        payload: "dict | _RawText",
    ) -> None:
        endpoint = path if path in _KNOWN_ENDPOINTS else "other"
        self._obs.requests_total.labels(endpoint=endpoint, status=str(status)).inc()
        self._obs.request_seconds.labels(endpoint=endpoint).observe(duration)
        if endpoint in ("/query", "/query_batch"):
            if self.slowlog.record(endpoint, duration, status=status):
                self._obs.slow_queries_total.inc()
        if self._log_format == "json":
            record: dict = {
                "ts": round(time.time(), 6),
                "method": method,
                "path": path,
                "status": status,
                "duration_ms": round(duration * 1e3, 3),
            }
            if isinstance(payload, dict):
                for field in ("epoch", "batch_size"):
                    if field in payload:
                        record[field] = payload[field]
            stream = self._log_stream if self._log_stream is not None else sys.stdout
            print(json.dumps(record), file=stream, flush=True)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> "tuple[int, dict | _RawText]":
        try:
            if method == "GET" and path == "/healthz":
                return 200, self._health_payload()
            if method == "GET" and path == "/stats":
                return 200, self._stats_payload()
            if method == "GET" and path == "/metrics":
                self._refresh_host_families()
                return 200, _RawText(EXPOSITION_CONTENT_TYPE, self.metrics.exposition())
            if method == "GET" and path == "/metrics.json":
                self._refresh_host_families()
                return 200, self.metrics.snapshot()
            if method == "GET" and path == "/slowlog":
                return 200, self.slowlog.as_dict()
            if method == "GET" and path == "/traces":
                return 200, {
                    "sample_rate": self.tracer.sample_rate,
                    "sampled_total": self.tracer.sampled_total,
                    "traces": self.tracer.payloads(),
                }
            if method != "POST" or path not in (
                "/query", "/query_batch", "/insert", "/compact"
            ):
                return 404, {"error": f"no route for {method} {path}"}
            try:
                payload = json.loads(body.decode() or "{}")
            except (json.JSONDecodeError, UnicodeDecodeError):
                return 400, {"error": "request body is not valid JSON"}
            if not isinstance(payload, dict):
                return 400, {"error": "request body must be a JSON object"}
            host = self._resolve_host(payload)
            if path == "/query":
                return await self._handle_query(host, payload)
            if path == "/query_batch":
                return await self._handle_query_batch(host, payload)
            if path == "/insert":
                return self._handle_insert(host, payload)
            return self._handle_compact(host)
        except ServerOverloadedError as error:
            retry_after = getattr(error, "retry_after_s", None)
            if retry_after is None:
                retry_after = _DEFAULT_RETRY_AFTER_S
            return 503, {"error": str(error), "retry_after_s": retry_after}
        except QueryError as error:
            if str(error).startswith("unknown index"):
                return 404, {"error": str(error)}
            return 400, {"error": str(error)}
        except ReproError as error:
            return 400, {"error": str(error)}
        except Exception as error:  # pragma: no cover - unexpected faults
            return 500, {"error": f"{type(error).__name__}: {error}"}

    def _resolve_host(self, payload: dict) -> EngineHost:
        name = payload.get("index", "default")
        host = self._hosts.get(name)
        if host is None:
            raise QueryError(f"unknown index {name!r}")
        return host

    def _health_payload(self) -> dict:
        return {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "hosts": {
                name: host.health_info() for name, host in self._hosts.items()
            },
        }

    def _stats_payload(self) -> dict:
        return {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "requests_served": self.requests_served,
            "pending": self.coalescer.pending,
            "coalescer": self.coalescer.stats.as_dict(),
            "slow_queries": self.slowlog.total,
            "hosts": {name: host.info() for name, host in self._hosts.items()},
        }

    async def _handle_query(self, host: EngineHost, payload: dict) -> tuple[int, dict]:
        guarantee = _parse_guarantee(payload)
        deadline = _deadline_s(payload)
        bounds = _scalar_bounds(payload, host.dims)
        answer = await _within_deadline(
            self.coalescer.submit(bounds, guarantee, index=host.name), deadline
        )
        return (206 if answer.partial else 200), _answer_payload(answer)

    async def _handle_query_batch(
        self, host: EngineHost, payload: dict
    ) -> tuple[int, dict]:
        guarantee = _parse_guarantee(payload)
        deadline = _deadline_s(payload)
        columns = _batch_bounds(payload, host.dims)
        view = host.pin()
        loop = asyncio.get_running_loop()
        answer = await _within_deadline(
            loop.run_in_executor(None, host.execute, view, columns, guarantee),
            deadline,
        )
        bounds_list = [
            None if np.isnan(b) else float(b) for b in answer.error_bounds
        ]
        degraded_column = getattr(answer, "degraded", None)
        degraded = (
            degraded_column.tolist()
            if degraded_column is not None
            else [False] * answer.values.size
        )
        partial = any(degraded)
        body = {
            "values": answer.values.tolist(),
            "guaranteed": answer.guaranteed.tolist(),
            "exact_fallback": answer.exact_fallback.tolist(),
            "error_bounds": bounds_list,
            "epoch": view.epoch,
            "version": view.version,
            "partial": partial,
            "degraded": degraded,
            "failed_partitions": list(getattr(answer, "failed_partitions", ())),
        }
        return (206 if partial else 200), body

    def _handle_insert(self, host: EngineHost, payload: dict) -> tuple[int, dict]:
        keys = payload.get("keys")
        if not isinstance(keys, list) or not keys:
            raise QueryError('insert needs {"keys": [..]} (optional "measures")')
        measures = payload.get("measures")
        try:
            key_array = np.asarray(keys, dtype=np.float64)
            measure_array = (
                None if measures is None else np.asarray(measures, dtype=np.float64)
            )
        except (TypeError, ValueError):
            raise QueryError("keys and measures must be lists of numbers") from None
        inserted = host.insert(key_array, measure_array)
        return 200, {
            "inserted": inserted,
            "epoch": int(getattr(host.index, "epoch", 0)),
            "version": int(getattr(host.index, "version", 0)),
            "buffer_size": int(getattr(host.index, "buffer_size", 0)),
        }

    def _handle_compact(self, host: EngineHost) -> tuple[int, dict]:
        if not host.updatable:
            raise NotSupportedError(
                f"index {host.name!r} is immutable; compact requires an updatable index"
            )
        changed = host.compact()
        return 200, {
            "compacted": changed,
            "epoch": int(getattr(host.index, "epoch", 0)),
            "version": int(getattr(host.index, "version", 0)),
        }
