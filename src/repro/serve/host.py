"""Engine hosting for the serving layer: epoch pinning and knob wiring.

:class:`EngineHost` owns one index on behalf of the server.  It is the
bridge between the asyncio front-end (single-threaded, mutation-ordering
authority) and the NumPy batch engines (executed on worker threads):

* **Epoch pinning** — :meth:`pin` captures an immutable serving view of the
  index *at one instant*: updatable indexes are pinned through their frozen
  per-epoch :meth:`snapshot` overlay, static indexes serve themselves.  A
  coalesced batch is evaluated entirely against the view pinned at flush
  time, so every answer in it is consistent with exactly one epoch — writes
  landing mid-evaluation produce a *new* overlay for the next flush and
  never mutate a pinned one.  Epoch swaps (compactions) therefore never drop
  or tear in-flight requests.
* **Knob wiring** — ``cache_size`` enables the version-keyed
  :class:`~repro.queries.cache.ResultCache` (keyed on the *live* write
  version captured at pin time, so inserts and compactions invalidate
  cached answers), ``kernel`` selects the fused batch backend, and
  ``num_shards``/``executor`` fan large batches out through
  :class:`~repro.queries.sharding.ShardedQueryEngine`.

Thread-safety contract: :meth:`pin`, :meth:`insert` and :meth:`compact` must
be called from the event-loop thread (they observe/advance the mutation
order); :meth:`execute` is safe to call from worker threads because it only
touches the frozen view and the (internally locked) result cache.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import NotSupportedError, QueryError
from ..obs.metrics import counter_family, gauge_family
from ..obs.tracing import Trace
from ..queries.cache import CacheInfo, ResultCache
from ..queries.engine import apply_kernel_knob
from ..queries.types import BatchQueryResult, Guarantee

__all__ = ["EngineHost", "HostMetrics", "PinnedView"]


class HostMetrics:
    """Per-host instrument bundle: pin traffic and epoch identity.

    The families are label-less; the server registers them with an
    ``{"index": name}`` label so multiple hosts stay distinct series.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self._fam_pins = counter_family(
            "repro_host_pins_total",
            "Serving views pinned (one per coalesced flush).",
            enabled=enabled,
        )
        self._fam_swaps = counter_family(
            "repro_host_epoch_swaps_total",
            "Epoch changes observed at pin time (compaction publications).",
            enabled=enabled,
        )
        self._fam_epoch = gauge_family(
            "repro_host_epoch",
            "Flush epoch of the most recently pinned view.",
            enabled=enabled,
        )
        self._fam_version = gauge_family(
            "repro_host_write_version",
            "Live write version captured at the most recent pin.",
            enabled=enabled,
        )
        self.pins = self._fam_pins.labels()
        self.epoch_swaps = self._fam_swaps.labels()
        self.epoch = self._fam_epoch.labels()
        self.version = self._fam_version.labels()

    def families(self) -> list:
        return [
            family
            for family in (
                self._fam_pins,
                self._fam_swaps,
                self._fam_epoch,
                self._fam_version,
            )
            if getattr(family, "enabled", False)
        ]


@dataclass(frozen=True)
class PinnedView:
    """One immutable serving view: the pinned engine plus its identity.

    ``serving`` exposes ``query_batch``; ``version`` is the owning index's
    live write counter at pin time (the cache key) and ``epoch`` its flush
    epoch (what responses report).  For static indexes both are 0.
    """

    serving: Any
    epoch: int
    version: int


class EngineHost:
    """Hosts one index for the server: pinning, caching, knob wiring.

    Parameters
    ----------
    index:
        Any index exposing ``query_batch`` (static or updatable, 1-D or
        2-D).  Updatable indexes (anything with a callable ``snapshot``)
        additionally get the epoch-pinned read path and the write
        endpoints.
    name:
        Label used in stats and error messages.
    cache_size:
        When > 0, memoize whole-batch answers in a version-keyed LRU.
    kernel:
        Batch-kernel backend knob ("auto"/"numba"/"numpy"), applied via
        :func:`~repro.queries.engine.apply_kernel_knob`.
    num_shards, executor:
        When ``num_shards > 1``, batches are fanned out through a
        :class:`~repro.queries.sharding.ShardedQueryEngine` over the pinned
        view.  For updatable indexes the sharded wrapper is rebuilt when the
        pinned view changes (construction is cheap — pools spin up lazily
        and only for workloads above the serial cutoff); the previous
        wrapper is retired one swap later so an in-flight flush can finish
        on it.
    instrument:
        When False, disables every instrument this host owns (its own
        bundle, the result cache's, the shard wrapper's) for overhead A/B
        runs.  Index-level instruments (WAL, compaction) belong to the
        index and are unaffected.
    """

    def __init__(
        self,
        index: object,
        *,
        name: str = "default",
        cache_size: int = 0,
        kernel: str = "auto",
        num_shards: int = 1,
        executor: str = "thread",
        instrument: bool = True,
    ) -> None:
        if not callable(getattr(index, "query_batch", None)):
            raise QueryError(
                f"index {name!r} has no query_batch interface; "
                "the serving layer only fronts batch-capable indexes"
            )
        apply_kernel_knob(index, kernel, name)
        if num_shards < 1:
            raise QueryError(f"num_shards must be >= 1, got {num_shards}")
        self._index = index
        self.name = name
        self._kernel = kernel
        self._num_shards = int(num_shards)
        self._executor = executor
        self._updatable = callable(getattr(index, "snapshot", None))
        self._dims = _query_dims(index)
        self._cache = (
            ResultCache(cache_size, instrument=instrument) if cache_size > 0 else None
        )
        self._obs = HostMetrics(enabled=instrument)
        # Shard timing persists across epoch swaps: the bundle outlives the
        # per-epoch ShardedQueryEngine wrappers it is handed to.
        from ..queries.sharding import ShardMetrics

        self._shard_metrics = (
            ShardMetrics() if instrument and self._num_shards > 1 else None
        )
        self._last_epoch: int | None = None
        # (pinned base object -> sharded wrapper); at most two generations
        # are kept alive so a flush evaluating on the old view can finish.
        self._sharded: list[tuple[object, Any]] = []
        if not self._updatable and self._num_shards > 1:
            self._sharded_for(index)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def index(self) -> object:
        """The hosted (live) index."""
        return self._index

    @property
    def dims(self) -> int:
        """Number of key dimensions (1 or 2); fixes the bounds arity."""
        return self._dims

    @property
    def updatable(self) -> bool:
        """Whether the hosted index accepts inserts."""
        return self._updatable

    @property
    def aggregate(self):
        """Aggregate the hosted index answers."""
        return getattr(self._index, "aggregate", None)

    def cache_info(self) -> CacheInfo | None:
        """Result-cache counters (None when caching is off)."""
        return None if self._cache is None else self._cache.info()

    def cache_clear(self) -> None:
        """Drop cached batch answers (no-op when caching is off)."""
        if self._cache is not None:
            self._cache.clear()

    def info(self) -> dict:
        """JSON-friendly description for the server's ``/stats`` endpoint."""
        index = self._index
        aggregate = self.aggregate
        payload = {
            "name": self.name,
            "aggregate": getattr(aggregate, "value", None),
            "dims": self._dims,
            "updatable": self._updatable,
            "epoch": int(getattr(index, "epoch", 0)),
            "version": int(getattr(index, "version", 0)),
            "kernel": self._kernel,
            "num_shards": self._num_shards,
            "cache": None if self._cache is None else self._cache.info().as_dict(),
        }
        if self._updatable:
            payload["buffer_size"] = int(getattr(index, "buffer_size", 0))
        num_segments = getattr(index, "num_segments", None)
        if num_segments is not None:
            payload["num_segments"] = int(num_segments)
        num_partitions = getattr(index, "num_partitions", None)
        if num_partitions is not None:
            payload["num_partitions"] = int(num_partitions)
        return payload

    def health_info(self) -> dict:
        """Liveness-relevant identity for the server's ``/healthz`` endpoint.

        Cheaper than :meth:`info`: identity integers only, no cache or
        knob introspection.  ``wal_lag`` is the number of insert records
        appended since the last checkpoint seal — what a restart would
        replay right now.
        """
        index = self._index
        payload: dict = {
            "epoch": int(getattr(index, "epoch", 0)),
            "version": int(getattr(index, "version", 0)),
        }
        if self._updatable:
            payload["buffer_size"] = int(getattr(index, "buffer_size", 0))
        wal = getattr(index, "wal", None)
        lag = getattr(wal, "records_since_seal", None)
        if lag is not None:
            payload["wal_lag"] = int(lag)
        return payload

    def metrics_families(self) -> list:
        """Every metric family this host can vouch for, for registration.

        Includes the host's own bundle, the result cache's, the shard
        wrapper's, and — when the hosted index exposes
        ``metrics_families`` (updatable indexes, fleets) — the index's.
        Entries may be ``(family, labels)`` tuples (fleet partitions).
        """
        families: list = list(self._obs.families())
        if self._shard_metrics is not None:
            families.extend(self._shard_metrics.families())
        if self._cache is not None:
            families.extend(self._cache.metrics_families())
        index_families = getattr(self._index, "metrics_families", None)
        if callable(index_families):
            families.extend(index_families())
        return families

    # ------------------------------------------------------------------ #
    # Read path (pin on the loop, execute on a worker)
    # ------------------------------------------------------------------ #

    def pin(self) -> PinnedView:
        """Capture the current epoch as an immutable serving view.

        Loop-thread only: capturing ``(snapshot, version)`` here, between
        mutations, is what makes every coalesced batch single-epoch.
        """
        self._obs.pins.inc()
        if not self._updatable:
            serving = self._sharded[-1][1] if self._sharded else self._index
            return PinnedView(serving=serving, epoch=0, version=0)
        overlay = self._index.snapshot()  # type: ignore[attr-defined]
        version = int(getattr(self._index, "version", 0))
        epoch = int(getattr(overlay, "epoch", getattr(self._index, "epoch", 0)))
        if epoch != self._last_epoch:
            if self._last_epoch is not None:
                self._obs.epoch_swaps.inc()
            self._last_epoch = epoch
        self._obs.epoch.set(epoch)
        self._obs.version.set(version)
        serving: Any = overlay
        if self._num_shards > 1:
            serving = self._sharded_for(overlay)
        return PinnedView(serving=serving, epoch=epoch, version=version)

    def execute(
        self,
        view: PinnedView,
        bounds: tuple[np.ndarray, ...],
        guarantee: Guarantee | None = None,
        trace: Trace | None = None,
    ) -> BatchQueryResult:
        """Evaluate one batch against a pinned view, through the cache.

        Worker-thread safe: the view is frozen and the cache locks
        internally.  Answers are bit-identical to calling the pinned
        engine's ``query_batch`` directly (a cache hit replays exactly such
        an answer for the same version and bounds).

        When ``trace`` is given it records a ``cache_probe`` span here and
        is forwarded into engines that advertise ``supports_trace``
        (sharded wrappers, fleet snapshots) for fan-out detail; other
        engines get a single ``engine_exec`` span.  Tracing never changes
        the computation, only observes its timeline.
        """
        if len(bounds) != 2 * self._dims:
            raise QueryError(
                f"index {self.name!r} expects {2 * self._dims} bound arrays, "
                f"got {len(bounds)}"
            )
        serving = view.serving
        if self._cache is None:
            return self._run_engine(serving, bounds, guarantee, trace)
        key = ResultCache.make_key(view.version, guarantee, bounds)
        if trace is not None:
            probe_start = trace.now()
            cached = self._cache.get(key)
            trace.add_span("cache_probe", probe_start, trace.now(), hit=cached is not None)
        else:
            cached = self._cache.get(key)
        if cached is not None:
            return cached
        answer = self._run_engine(serving, bounds, guarantee, trace)
        self._cache.put(key, answer)
        return answer

    @staticmethod
    def _run_engine(
        serving: Any,
        bounds: tuple[np.ndarray, ...],
        guarantee: Guarantee | None,
        trace: Trace | None,
    ) -> BatchQueryResult:
        if trace is None:
            return serving.query_batch(*bounds, guarantee=guarantee)
        if getattr(serving, "supports_trace", False):
            return serving.query_batch(*bounds, guarantee=guarantee, trace=trace)
        with trace.span("engine_exec"):
            return serving.query_batch(*bounds, guarantee=guarantee)

    # ------------------------------------------------------------------ #
    # Write path (loop thread)
    # ------------------------------------------------------------------ #

    def insert(self, keys: np.ndarray, measures: np.ndarray | None = None) -> int:
        """Insert records into an updatable index (loop-thread only)."""
        self._require_updatable("insert")
        return int(self._index.insert(keys, measures))  # type: ignore[attr-defined]

    def compact(self) -> bool:
        """Fold the delta buffer into the base (loop-thread only).

        The swap is publication-only from the readers' perspective: views
        pinned before the compaction keep serving their frozen overlay, the
        next :meth:`pin` picks up the new epoch.
        """
        self._require_updatable("compact")
        return bool(self._index.compact())  # type: ignore[attr-defined]

    def _require_updatable(self, op: str) -> None:
        if not self._updatable:
            raise NotSupportedError(
                f"index {self.name!r} is immutable; {op} requires an updatable index"
            )

    # ------------------------------------------------------------------ #
    # Sharded wrapper lifecycle
    # ------------------------------------------------------------------ #

    def _sharded_for(self, pinned: object):
        """Sharded wrapper for one pinned base, with keep-2 retirement."""
        for base, engine in self._sharded:
            if base is pinned:
                return engine
        from ..queries.sharding import ShardedQueryEngine

        engine = ShardedQueryEngine(
            index=pinned,
            num_shards=self._num_shards,
            executor=self._executor,
            kernel="auto",  # already applied to the live index above
            metrics=self._shard_metrics,
        )
        self._sharded.append((pinned, engine))
        while len(self._sharded) > 2:
            _, retired = self._sharded.pop(0)
            retired.close()
        return engine

    def close(self) -> None:
        """Release any sharded worker pools (idempotent)."""
        while self._sharded:
            _, engine = self._sharded.pop()
            engine.close()

    def __enter__(self) -> "EngineHost":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _query_dims(index: object) -> int:
    """Key dimensionality from the ``query_batch`` signature (2 or 4 bounds)."""
    try:
        parameters = inspect.signature(index.query_batch).parameters  # type: ignore[attr-defined]
    except (TypeError, ValueError):
        return 1
    positional = [
        p
        for p in parameters.values()
        if p.name != "guarantee"
        and p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    return 2 if len(positional) >= 4 else 1
