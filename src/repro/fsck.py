"""Offline integrity checker for every durable artifact the library writes.

``repro fsck <path>...`` inspects codec files, write-ahead logs, fleet
directories and JSON indexes *without* mutating them, and reports a typed
list of problems:

* **codec files** (``*.pfbin``) — container structure plus every per-array
  CRC (format v3; v1/v2 files predate checksums and are verified
  structurally only, which is reported as a note, not an error);
* **write-ahead logs** — magic, frame structure and per-frame CRCs.  A torn
  tail (an incomplete final frame, the expected artifact of a crash between
  ``write`` and ``fsync``) is *recoverable by design* and reported as a
  note; damage anywhere before the tail is corruption and fails the check;
* **fleet directories** — manifest well-formedness, splits/partition-count
  consistency, every referenced partition file present and checksum-clean
  with the aggregate the manifest promises, plus notes for orphan partition
  files and stale ``*.tmp`` leftovers from a crashed save;
* **JSON indexes** — loadable and structurally valid.

Each problem is an :class:`FsckIssue` with a stable ``kind`` so scripts can
dispatch on it; :class:`FsckReport` aggregates them per target.  The CLI
exits 0 when every target is clean and 1 otherwise — the check never
raises for corruption it was asked to find (only for unusable arguments,
e.g. a path that does not exist).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .errors import SerializationError
from .index.atomic import TMP_SUFFIX
from .index.codec import BINARY_MAGIC, load_index_binary, read_array_store
from .stream.wal import WAL_MAGIC, scan_wal

__all__ = ["FsckIssue", "FsckReport", "fsck_path"]


@dataclass(frozen=True)
class FsckIssue:
    """One verifiable defect found in a durable artifact.

    ``kind`` is a stable machine-readable tag: ``codec-corrupt``,
    ``wal-corrupt``, ``manifest-corrupt``, ``manifest-inconsistent``,
    ``partition-missing``, ``partition-corrupt``, ``partition-mismatch``,
    ``unreadable``.
    """

    kind: str
    path: str
    message: str

    def to_payload(self) -> dict:
        return {"kind": self.kind, "path": self.path, "message": self.message}


@dataclass
class FsckReport:
    """All findings for one fsck target (one file or fleet directory)."""

    target: str
    #: What the target was recognised as: codec / wal / fleet / json-index.
    artifact: str = "unknown"
    #: Objects verified (files, WAL frames): a progress/coverage count.
    checked: int = 0
    issues: list[FsckIssue] = field(default_factory=list)
    #: Benign observations (torn WAL tail, pre-checksum format, tmp files).
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def to_payload(self) -> dict:
        return {
            "target": self.target,
            "artifact": self.artifact,
            "ok": self.ok,
            "checked": self.checked,
            "issues": [issue.to_payload() for issue in self.issues],
            "notes": list(self.notes),
        }


def _fsck_codec(path: Path, report: FsckReport) -> None:
    """Structural + checksum verification of one binary codec file."""
    report.artifact = "codec"
    try:
        meta, _ = read_array_store(path, mmap=False, verify=True)
        load_index_binary(path, mmap=False)  # full structural decode
    except SerializationError as exc:
        report.issues.append(FsckIssue("codec-corrupt", str(path), str(exc)))
        return
    report.checked += 1
    version = int(meta.get("format_version", 0))
    # verify=True is a no-op on pre-v3 files (they carry no checksums);
    # surface that so "fsck passed" is not over-read for old files.
    if version < 3:
        report.notes.append(
            f"{path.name}: format v{version} predates per-array checksums; "
            f"verified structurally only"
        )


def _fsck_wal(path: Path, report: FsckReport) -> None:
    """Frame-by-frame WAL verification (lenient scan, then classify)."""
    report.artifact = "wal"
    try:
        scan = scan_wal(path, strict=False)
    except SerializationError as exc:  # bad magic: not a WAL at all
        report.issues.append(FsckIssue("wal-corrupt", str(path), str(exc)))
        return
    report.checked += len(scan.records)
    if scan.damage is not None:
        report.issues.append(FsckIssue("wal-corrupt", str(path), scan.damage))
        return
    if scan.truncated_bytes:
        report.notes.append(
            f"{path.name}: torn tail of {scan.truncated_bytes} bytes after "
            f"{len(scan.records)} valid records (recoverable: truncated on "
            f"next open)"
        )


def _fsck_json_index(path: Path, report: FsckReport) -> None:
    report.artifact = "json-index"
    from .index import load_index

    try:
        load_index(path)
    except SerializationError as exc:
        report.issues.append(FsckIssue("codec-corrupt", str(path), str(exc)))
        return
    report.checked += 1


def _fsck_fleet(directory: Path, report: FsckReport) -> None:
    """Manifest + every referenced partition file + directory hygiene."""
    from .fleet.map import PartitionMap
    from .fleet.persistence import MANIFEST_NAME

    report.artifact = "fleet"
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
    except OSError as exc:
        report.issues.append(FsckIssue("unreadable", str(manifest_path), str(exc)))
        return
    except json.JSONDecodeError as exc:
        report.issues.append(
            FsckIssue("manifest-corrupt", str(manifest_path), f"not valid JSON: {exc}")
        )
        return
    report.checked += 1
    try:
        aggregate = str(manifest["aggregate"])
        partition_map = PartitionMap.from_payload(manifest["splits"])
        entries = manifest["partitions"]
        if not isinstance(entries, list):
            raise TypeError("partitions must be a list")
    except (KeyError, ValueError, TypeError) as exc:
        report.issues.append(
            FsckIssue("manifest-corrupt", str(manifest_path), f"malformed: {exc}")
        )
        return
    if len(entries) != partition_map.num_partitions:
        report.issues.append(
            FsckIssue(
                "manifest-inconsistent",
                str(manifest_path),
                f"lists {len(entries)} partitions but its splits describe "
                f"{partition_map.num_partitions}",
            )
        )
    referenced: set[str] = set()
    for entry in entries:
        file_name = entry.get("file") if isinstance(entry, dict) else None
        if file_name is None:
            continue
        referenced.add(file_name)
        partition_path = directory / file_name
        if not partition_path.is_file():
            report.issues.append(
                FsckIssue(
                    "partition-missing",
                    str(partition_path),
                    f"referenced by {MANIFEST_NAME} but absent",
                )
            )
            continue
        try:
            index = load_index_binary(partition_path, mmap=False, verify=True)
        except SerializationError as exc:
            report.issues.append(
                FsckIssue("partition-corrupt", str(partition_path), str(exc))
            )
            continue
        report.checked += 1
        loaded = getattr(getattr(index, "aggregate", None), "value", None)
        if loaded is not None and loaded != aggregate:
            report.issues.append(
                FsckIssue(
                    "partition-mismatch",
                    str(partition_path),
                    f"answers {loaded}, manifest says {aggregate}",
                )
            )
    orphans = sorted(
        candidate.name
        for candidate in directory.glob("partition-*.pfbin")
        if candidate.name not in referenced
    )
    if orphans:
        report.notes.append(
            f"unreferenced partition files (stale save leftovers): "
            f"{', '.join(orphans)}"
        )
    stale_tmp = sorted(
        candidate.name for candidate in directory.glob(f"*{TMP_SUFFIX}")
    )
    if stale_tmp:
        report.notes.append(
            f"stale tmp files from an interrupted save (pruned on next "
            f"load): {', '.join(stale_tmp)}"
        )


def fsck_path(path: str | Path) -> FsckReport:
    """Verify one artifact; returns a report (never raises for corruption).

    The artifact type is sniffed: a directory containing a fleet manifest is
    checked as a fleet; files are dispatched on their magic bytes (codec vs
    WAL), falling back to JSON-index verification.
    """
    path = Path(path)
    report = FsckReport(target=str(path))
    if path.is_dir():
        from .fleet.persistence import MANIFEST_NAME

        if (path / MANIFEST_NAME).is_file():
            _fsck_fleet(path, report)
        else:
            report.issues.append(
                FsckIssue(
                    "unreadable",
                    str(path),
                    f"directory has no {MANIFEST_NAME}: not a fleet",
                )
            )
        return report
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(max(len(BINARY_MAGIC), len(WAL_MAGIC)))
    except OSError as exc:
        report.issues.append(FsckIssue("unreadable", str(path), str(exc)))
        return report
    if prefix.startswith(BINARY_MAGIC):
        _fsck_codec(path, report)
    elif prefix.startswith(WAL_MAGIC) or WAL_MAGIC.startswith(prefix):
        # Second clause: a file shorter than the magic is a torn WAL
        # creation — the WAL checker classifies it properly.
        _fsck_wal(path, report)
    else:
        _fsck_json_index(path, report)
    return report
