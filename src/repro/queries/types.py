"""Query and result value types.

The paper's Definition 1 (one key) and Definition 4 (two keys) are modelled
as small frozen dataclasses; the guarantee requested by a query (Problem 1 or
Problem 2) is carried alongside so the engine can certify or fall back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import Aggregate, GuaranteeKind
from ..errors import QueryError

__all__ = ["Guarantee", "RangeQuery", "RangeQuery2D", "QueryResult", "BatchQueryResult"]


@dataclass(frozen=True)
class Guarantee:
    """A requested approximation guarantee.

    Attributes
    ----------
    kind:
        :attr:`GuaranteeKind.ABSOLUTE` (Problem 1) or
        :attr:`GuaranteeKind.RELATIVE` (Problem 2).
    epsilon:
        The error budget: ``eps_abs`` for absolute guarantees and ``eps_rel``
        for relative guarantees.
    """

    kind: GuaranteeKind
    epsilon: float

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise QueryError(f"epsilon must be positive, got {self.epsilon}")

    @classmethod
    def absolute(cls, eps_abs: float) -> "Guarantee":
        """Problem 1 guarantee: ``|A - R| <= eps_abs``."""
        return cls(kind=GuaranteeKind.ABSOLUTE, epsilon=eps_abs)

    @classmethod
    def relative(cls, eps_rel: float) -> "Guarantee":
        """Problem 2 guarantee: ``|A - R| / R <= eps_rel``."""
        return cls(kind=GuaranteeKind.RELATIVE, epsilon=eps_rel)

    def satisfied_by(self, approx: float, exact: float) -> bool:
        """Check whether an (approx, exact) pair meets the guarantee."""
        error = abs(approx - exact)
        if self.kind is GuaranteeKind.ABSOLUTE:
            return error <= self.epsilon + 1e-9
        if exact == 0:
            return error == 0
        return error / abs(exact) <= self.epsilon + 1e-9


@dataclass(frozen=True)
class RangeQuery:
    """A one-key range aggregate query ``R_G(D, [low, high])`` (Definition 1)."""

    low: float
    high: float
    aggregate: Aggregate

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise QueryError(f"invalid query range [{self.low}, {self.high}]")

    @property
    def width(self) -> float:
        """Width of the key range."""
        return self.high - self.low


@dataclass(frozen=True)
class RangeQuery2D:
    """A two-key rectangle aggregate query (Definition 4)."""

    x_low: float
    x_high: float
    y_low: float
    y_high: float
    aggregate: Aggregate = Aggregate.COUNT

    def __post_init__(self) -> None:
        if self.x_high < self.x_low or self.y_high < self.y_low:
            raise QueryError("invalid rectangle bounds")

    @property
    def area(self) -> float:
        """Area of the query rectangle."""
        return (self.x_high - self.x_low) * (self.y_high - self.y_low)


@dataclass(frozen=True)
class QueryResult:
    """Outcome of an approximate range aggregate query.

    Attributes
    ----------
    value:
        The returned aggregate value (approximate unless ``exact_fallback``).
    guaranteed:
        Whether the requested guarantee is certified for this answer.
    exact_fallback:
        True when the engine had to fall back to the exact method because the
        relative-error certificate (Lemma 3 / 5 / 7) failed.
    error_bound:
        The certified bound on ``|value - R|`` (absolute), when available.
    """

    value: float
    guaranteed: bool = True
    exact_fallback: bool = False
    error_bound: float | None = None


# eq=False: the auto-generated __eq__ would compare ndarray fields with
# ``==`` and raise on multi-element batches; identity comparison is the only
# well-defined equality for columnar results.
@dataclass(frozen=True, eq=False)
class BatchQueryResult:
    """Vectorized outcome of a batch of range aggregate queries.

    Columnar counterpart of :class:`QueryResult`: one parallel array per
    field, so a workload of N queries is answered and inspected without
    materializing N Python objects.

    Attributes
    ----------
    values:
        ``(N,)`` answers (approximate except where ``exact_fallback``).
    guaranteed:
        ``(N,)`` bool — whether the requested guarantee is certified.
    exact_fallback:
        ``(N,)`` bool — queries answered by the exact method after the
        relative-error certificate failed.
    error_bounds:
        ``(N,)`` certified absolute error bound per answer (0 for exact
        fallbacks).
    degraded:
        ``(N,)`` bool — queries whose answer was computed without one or
        more failed fleet partitions (their bound is widened to cover the
        missing contribution; the certificate stays sound, just looser).
        All-False outside degraded fleet reads.
    failed_partitions:
        Sorted partition ids that failed during a degraded read (empty
        otherwise).
    """

    values: np.ndarray
    guaranteed: np.ndarray
    exact_fallback: np.ndarray
    error_bounds: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    degraded: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    failed_partitions: tuple = ()

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "guaranteed", np.asarray(self.guaranteed, dtype=bool))
        object.__setattr__(self, "exact_fallback", np.asarray(self.exact_fallback, dtype=bool))
        bounds = self.error_bounds
        if bounds is None:
            bounds = np.full(values.shape, np.nan)
        object.__setattr__(self, "error_bounds", np.asarray(bounds, dtype=np.float64))
        degraded = self.degraded
        if degraded is None:
            degraded = np.zeros(values.shape, dtype=bool)
        object.__setattr__(self, "degraded", np.asarray(degraded, dtype=bool))
        object.__setattr__(self, "failed_partitions", tuple(self.failed_partitions))
        if not (
            self.guaranteed.shape
            == self.exact_fallback.shape
            == self.error_bounds.shape
            == self.degraded.shape
            == values.shape
        ):
            raise QueryError("batch result arrays must have identical shapes")

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def partial(self) -> bool:
        """Whether any answer was computed without a failed partition."""
        return bool(self.degraded.any())

    @property
    def fallback_rate(self) -> float:
        """Fraction of queries answered by the exact fallback."""
        if self.values.size == 0:
            return 0.0
        return float(np.count_nonzero(self.exact_fallback)) / self.values.size

    def to_results(self) -> list[QueryResult]:
        """Materialize per-query :class:`QueryResult` objects (scalar view)."""
        return [
            QueryResult(
                value=float(self.values[i]),
                guaranteed=bool(self.guaranteed[i]),
                exact_fallback=bool(self.exact_fallback[i]),
                error_bound=None if np.isnan(self.error_bounds[i]) else float(self.error_bounds[i]),
            )
            for i in range(self.values.size)
        ]
