"""Query and result value types.

The paper's Definition 1 (one key) and Definition 4 (two keys) are modelled
as small frozen dataclasses; the guarantee requested by a query (Problem 1 or
Problem 2) is carried alongside so the engine can certify or fall back.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import Aggregate, GuaranteeKind
from ..errors import QueryError

__all__ = ["Guarantee", "RangeQuery", "RangeQuery2D", "QueryResult"]


@dataclass(frozen=True)
class Guarantee:
    """A requested approximation guarantee.

    Attributes
    ----------
    kind:
        :attr:`GuaranteeKind.ABSOLUTE` (Problem 1) or
        :attr:`GuaranteeKind.RELATIVE` (Problem 2).
    epsilon:
        The error budget: ``eps_abs`` for absolute guarantees and ``eps_rel``
        for relative guarantees.
    """

    kind: GuaranteeKind
    epsilon: float

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise QueryError(f"epsilon must be positive, got {self.epsilon}")

    @classmethod
    def absolute(cls, eps_abs: float) -> "Guarantee":
        """Problem 1 guarantee: ``|A - R| <= eps_abs``."""
        return cls(kind=GuaranteeKind.ABSOLUTE, epsilon=eps_abs)

    @classmethod
    def relative(cls, eps_rel: float) -> "Guarantee":
        """Problem 2 guarantee: ``|A - R| / R <= eps_rel``."""
        return cls(kind=GuaranteeKind.RELATIVE, epsilon=eps_rel)

    def satisfied_by(self, approx: float, exact: float) -> bool:
        """Check whether an (approx, exact) pair meets the guarantee."""
        error = abs(approx - exact)
        if self.kind is GuaranteeKind.ABSOLUTE:
            return error <= self.epsilon + 1e-9
        if exact == 0:
            return error == 0
        return error / abs(exact) <= self.epsilon + 1e-9


@dataclass(frozen=True)
class RangeQuery:
    """A one-key range aggregate query ``R_G(D, [low, high])`` (Definition 1)."""

    low: float
    high: float
    aggregate: Aggregate

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise QueryError(f"invalid query range [{self.low}, {self.high}]")

    @property
    def width(self) -> float:
        """Width of the key range."""
        return self.high - self.low


@dataclass(frozen=True)
class RangeQuery2D:
    """A two-key rectangle aggregate query (Definition 4)."""

    x_low: float
    x_high: float
    y_low: float
    y_high: float
    aggregate: Aggregate = Aggregate.COUNT

    def __post_init__(self) -> None:
        if self.x_high < self.x_low or self.y_high < self.y_low:
            raise QueryError("invalid rectangle bounds")

    @property
    def area(self) -> float:
        """Area of the query rectangle."""
        return (self.x_high - self.x_low) * (self.y_high - self.y_low)


@dataclass(frozen=True)
class QueryResult:
    """Outcome of an approximate range aggregate query.

    Attributes
    ----------
    value:
        The returned aggregate value (approximate unless ``exact_fallback``).
    guaranteed:
        Whether the requested guarantee is certified for this answer.
    exact_fallback:
        True when the engine had to fall back to the exact method because the
        relative-error certificate (Lemma 3 / 5 / 7) failed.
    error_bound:
        The certified bound on ``|value - R|`` (absolute), when available.
    """

    value: float
    guaranteed: bool = True
    exact_fallback: bool = False
    error_bound: float | None = None
