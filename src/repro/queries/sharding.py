"""Sharded parallel execution of batch range-aggregate workloads.

The batch query path answers a workload with O(1) NumPy calls over the flat
cell directory — a static, read-only structure, which makes the workload
embarrassingly parallel: split the bound arrays into contiguous chunks, fan
the chunks out across workers, and concatenate the per-chunk answers back in
input order.  :class:`ShardedQueryEngine` implements exactly that on top of
any index exposing the batch interface (``estimate_batch`` /
``exact_batch`` / ``query_batch``):

* ``executor="thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`
  sharing the in-process index.  NumPy releases the GIL inside the large
  vectorized kernels, so threads scale on multi-core machines without any
  copying at all.
* ``executor="process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  for workloads where Python-level work (e.g. the per-query exact 2-D
  fallback) would serialize on the GIL.  Workers obtain the index either by
  memory-mapping a :mod:`repro.index.codec` file (``index_path`` — every
  worker maps the *same* pages, so the directory is shared, not copied) or,
  on fork platforms, by copy-on-write inheritance of the parent's index.
* ``executor="serial"`` — no pool; identical code path to calling the index
  directly (useful as the oracle in tests and benches).

Workloads smaller than ``num_shards * min_queries_per_shard`` skip the pool
and run serially: chunking overhead would dominate, and the serial path is
always bit-identical anyway (every batch kernel is element-independent, so
evaluating a chunk equals slicing the full evaluation).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Sequence

import numpy as np

from ..errors import QueryError
from ..kernels import resolve_kernel
from ..obs.metrics import histogram_family
from .batch import validate_bounds_batch
from .types import BatchQueryResult, Guarantee

__all__ = [
    "ShardedQueryEngine",
    "ShardMetrics",
    "shard_slices",
    "DEFAULT_MIN_QUERIES_PER_SHARD",
]

_EXECUTORS = ("serial", "thread", "process")

#: Below ``num_shards * DEFAULT_MIN_QUERIES_PER_SHARD`` queries the engine
#: answers serially: pool dispatch costs more than the chunks save.
DEFAULT_MIN_QUERIES_PER_SHARD = 8192

#: Batch methods the engine knows how to shard.  ``query_batch`` returns a
#: columnar :class:`BatchQueryResult` (merged field-wise); the others return
#: plain value arrays.
_BATCH_METHODS = ("estimate_batch", "exact_batch", "query_batch")


def shard_slices(total: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``(start, stop)`` chunks covering ``range(total)``.

    At most ``num_shards`` chunks are produced; workloads smaller than the
    shard count get one single-query chunk per query.  Chunk sizes differ by
    at most one, and concatenating the chunks reproduces the input order.
    """
    if num_shards < 1:
        raise QueryError(f"num_shards must be >= 1, got {num_shards}")
    num_chunks = min(num_shards, total)
    base, extra = divmod(total, max(num_chunks, 1))
    slices: list[tuple[int, int]] = []
    start = 0
    for chunk in range(num_chunks):
        stop = start + base + (1 if chunk < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


# --------------------------------------------------------------------- #
# Process-pool worker plumbing (module level: must be picklable by spawn)
# --------------------------------------------------------------------- #

_WORKER_INDEX = None


def _apply_kernel(index: object, kernel: str) -> None:
    """Select the batch-kernel backend on an index (or its base), if any.

    ``"auto"`` is every index's construction default, so it is a no-op; any
    other choice requires the index to expose ``set_kernel``.
    """
    if kernel == "auto":
        return
    set_kernel = getattr(index, "set_kernel", None)
    if set_kernel is None:
        set_kernel = getattr(getattr(index, "base", None), "set_kernel", None)
    if set_kernel is None:
        raise QueryError(
            f"index {type(index).__name__} has no kernel knob (set_kernel); "
            "only kernel='auto' is valid here"
        )
    set_kernel(kernel)


def _worker_init_from_path(index_path: str, mmap: bool, kernel: str = "auto") -> None:
    """Load the shared index inside a worker process (mmap → shared pages)."""
    global _WORKER_INDEX
    from ..index.codec import load_index_binary

    _WORKER_INDEX = load_index_binary(index_path, mmap=mmap)
    _apply_kernel(_WORKER_INDEX, kernel)


def _worker_init_inherit(index: object) -> None:
    """Adopt the parent's index (fork start method: copy-on-write, no pickle)."""
    global _WORKER_INDEX
    _WORKER_INDEX = index


def _worker_run(
    method: str, bounds: tuple[np.ndarray, ...], guarantee: Guarantee | None
):
    """Answer one chunk in a worker; columnar results travel as plain tuples."""
    return _normalize(_dispatch(_WORKER_INDEX, method, bounds, guarantee))


def _dispatch(
    index: object,
    method: str,
    bounds: tuple[np.ndarray, ...],
    guarantee: Guarantee | None,
):
    target = getattr(index, method)
    if guarantee is None:
        return target(*bounds)
    return target(*bounds, guarantee)


def _normalize(result):
    if isinstance(result, BatchQueryResult):
        return (
            result.values,
            result.guaranteed,
            result.exact_fallback,
            result.error_bounds,
        )
    return np.asarray(result)


class ShardMetrics:
    """Per-shard execution instruments, owned by whoever outlives the engine.

    Sharded engines are rebuilt on every epoch swap (see
    ``EngineHost._sharded_for``), so the long-lived owner creates one bundle
    and passes it into each successive engine — counts accumulate across
    swaps.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.exec_seconds = histogram_family(
            "repro_shard_exec_seconds",
            "Per-shard chunk execution time in seconds",
            ("shard",),
            enabled=enabled,
        )

    def families(self) -> list:
        return [self.exec_seconds] if getattr(self.exec_seconds, "enabled", False) else []


def _merge(parts: list):
    if isinstance(parts[0], tuple):
        return BatchQueryResult(
            values=np.concatenate([part[0] for part in parts]),
            guaranteed=np.concatenate([part[1] for part in parts]),
            exact_fallback=np.concatenate([part[2] for part in parts]),
            error_bounds=np.concatenate([part[3] for part in parts]),
        )
    return np.concatenate(parts)


class ShardedQueryEngine:
    """Fan a batch workload out across threads or processes, in input order.

    Parameters
    ----------
    index:
        A built index exposing the batch interface.  Optional when
        ``index_path`` is given (it is then lazily mmap-loaded for the
        serial fallback).
    index_path:
        Path to a :mod:`repro.index.codec` binary file.  Required for the
        process executor on non-fork platforms; with it, every worker maps
        the same read-only pages instead of receiving a pickled copy.
    num_shards:
        Number of chunks / pool workers.  Defaults to the CPU count.
    executor:
        ``"thread"`` (default), ``"process"`` or ``"serial"``.
    min_queries_per_shard:
        Serial-fallback threshold: workloads with fewer than
        ``num_shards * min_queries_per_shard`` queries skip the pool.
    mmap:
        Whether path-loaded indexes are memory-mapped (kept for benchmarks
        that compare against eager loading).
    kernel:
        Batch-kernel backend ("auto"/"numba"/"numpy") applied to the local
        index and, crucially, re-applied inside every path-loaded process
        worker — a freshly mmap'd index would otherwise silently revert to
        its own default.  "auto" leaves every index untouched.

    The engine owns its pool: it is created lazily on the first parallel
    call and released by :meth:`close` (or a ``with`` block).  Results are
    bit-identical to the serial path for every executor — chunk evaluation
    is element-independent in all batch kernels.
    """

    def __init__(
        self,
        index: object | None = None,
        *,
        index_path: str | Path | None = None,
        num_shards: int | None = None,
        executor: str = "thread",
        min_queries_per_shard: int = DEFAULT_MIN_QUERIES_PER_SHARD,
        mmap: bool = True,
        kernel: str = "auto",
        metrics: ShardMetrics | None = None,
    ) -> None:
        resolve_kernel(kernel)  # validate the choice (and its availability) eagerly
        if executor not in _EXECUTORS:
            raise QueryError(
                f"unknown executor {executor!r}; choose one of {_EXECUTORS}"
            )
        if index is None and index_path is None:
            raise QueryError("provide an index, an index_path, or both")
        if num_shards is None:
            num_shards = os.cpu_count() or 1
        if num_shards < 1:
            raise QueryError(f"num_shards must be >= 1, got {num_shards}")
        if min_queries_per_shard < 1:
            raise QueryError(
                f"min_queries_per_shard must be >= 1, got {min_queries_per_shard}"
            )
        self._index = index
        self._index_path = None if index_path is None else str(index_path)
        self._num_shards = int(num_shards)
        self._executor = executor
        self._min_queries_per_shard = int(min_queries_per_shard)
        self._mmap = bool(mmap)
        self._kernel = kernel
        self._metrics = metrics
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        if index is not None:
            _apply_kernel(index, kernel)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def for_index(cls, index: object, **kwargs) -> "ShardedQueryEngine":
        """Shard an in-memory index (thread executor by default)."""
        return cls(index=index, **kwargs)

    @classmethod
    def from_path(cls, index_path: str | Path, **kwargs) -> "ShardedQueryEngine":
        """Shard a persisted binary index; workers mmap the same file."""
        return cls(index_path=index_path, **kwargs)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_shards(self) -> int:
        """Number of chunks the workload is split into."""
        return self._num_shards

    @property
    def executor(self) -> str:
        """The configured executor kind."""
        return self._executor

    @property
    def index(self) -> object:
        """The local index (lazily mmap-loaded from ``index_path`` if needed)."""
        if self._index is None:
            from ..index.codec import load_index_binary

            self._index = load_index_binary(self._index_path, mmap=self._mmap)
            _apply_kernel(self._index, self._kernel)
        return self._index

    # ------------------------------------------------------------------ #
    # Batch interface (mirrors the index's own)
    # ------------------------------------------------------------------ #

    def estimate_batch(self, *bounds: np.ndarray) -> np.ndarray:
        """Sharded counterpart of the index's ``estimate_batch``."""
        return self._run("estimate_batch", bounds, None)

    def exact_batch(self, *bounds: np.ndarray) -> np.ndarray:
        """Sharded counterpart of the index's ``exact_batch``."""
        return self._run("exact_batch", bounds, None)

    #: Callers may pass a ``trace=`` through ``query_batch`` (duck-typed
    #: capability check used by the serving host).
    supports_trace = True

    def query_batch(
        self, *bounds: np.ndarray, guarantee: Guarantee | None = None, trace=None
    ) -> BatchQueryResult:
        """Sharded counterpart of the index's ``query_batch``.

        Accepts the guarantee either as a keyword or as a trailing
        positional (the calling convention :class:`QueryEngine` uses).
        """
        if bounds and isinstance(bounds[-1], Guarantee):
            if guarantee is not None:
                raise QueryError("guarantee passed both positionally and by keyword")
            guarantee = bounds[-1]
            bounds = bounds[:-1]
        return self._run("query_batch", bounds, guarantee, trace=trace)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _run(
        self,
        method: str,
        bounds: Sequence[np.ndarray],
        guarantee: Guarantee | None,
        trace=None,
    ):
        if method not in _BATCH_METHODS:
            raise QueryError(f"unknown batch method {method!r}")
        # Both bound conventions — (lows, highs) and (x_lows, x_highs,
        # y_lows, y_highs) — are sequences of (low, high) pairs, so the
        # canonical pairwise validation applies to each.
        if not bounds or len(bounds) % 2:
            raise QueryError("bounds must be (low, high) array pairs")
        bounds = tuple(
            validated
            for pair in range(0, len(bounds), 2)
            for validated in validate_bounds_batch(bounds[pair], bounds[pair + 1])
        )
        if any(bound.shape != bounds[0].shape for bound in bounds):
            raise QueryError("bound arrays must be equal-length 1-D arrays")
        total = bounds[0].size
        slices = shard_slices(total, self._num_shards)
        hist = self._metrics.exec_seconds if self._metrics is not None else None
        clock = trace.now if trace is not None else time.perf_counter

        def observe(shard: int, t0: float, t1: float) -> None:
            if hist is not None:
                hist.labels(shard=str(shard)).observe(t1 - t0)
            if trace is not None:
                trace.add_span("shard_exec", t0, t1, shard=shard)

        if (
            self._executor == "serial"
            or len(slices) <= 1
            or total < self._num_shards * self._min_queries_per_shard
        ):
            if hist is None and trace is None:
                return _dispatch(self.index, method, bounds, guarantee)
            t0 = clock()
            out = _dispatch(self.index, method, bounds, guarantee)
            observe(0, t0, clock())
            return out

        pool = self._ensure_pool()
        chunks = [
            tuple(bound[start:stop] for bound in bounds) for start, stop in slices
        ]
        if self._executor == "process":
            # Workers run in other processes: per-shard time is measured as
            # scatter-to-completion wall time in the parent (an upper bound
            # that includes pool queueing).
            t0 = clock()
            futures = [
                pool.submit(_worker_run, method, chunk, guarantee) for chunk in chunks
            ]
            parts = []
            for i, future in enumerate(futures):
                parts.append(future.result())
                observe(i, t0, clock())
            return _merge(parts)

        index = self.index
        if hist is None and trace is None:
            futures = [
                pool.submit(
                    lambda c: _normalize(_dispatch(index, method, c, guarantee)), chunk
                )
                for chunk in chunks
            ]
        else:

            def run_chunk(shard: int, chunk):
                t0 = clock()
                out = _normalize(_dispatch(index, method, chunk, guarantee))
                observe(shard, t0, clock())
                return out

            futures = [
                pool.submit(run_chunk, i, chunk) for i, chunk in enumerate(chunks)
            ]
        return _merge([future.result() for future in futures])

    def _ensure_pool(self):
        if self._pool is not None:
            return self._pool
        if self._executor == "thread":
            self._pool = ThreadPoolExecutor(
                max_workers=self._num_shards, thread_name_prefix="repro-shard"
            )
        elif self._index_path is not None:
            # Path-backed workers: each initializer mmaps the same binary
            # file, so all shards serve from one set of physical pages.
            self._pool = ProcessPoolExecutor(
                max_workers=self._num_shards,
                initializer=_worker_init_from_path,
                initargs=(self._index_path, self._mmap, self._kernel),
            )
        else:
            # In-memory index: only fork can share it without pickling —
            # the initargs tuple is inherited copy-on-write at fork time.
            if "fork" not in multiprocessing.get_all_start_methods():
                raise QueryError(
                    "process executor needs an index_path on platforms without "
                    "fork; save the index with save_index_binary() first"
                )
            self._pool = ProcessPoolExecutor(
                max_workers=self._num_shards,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_worker_init_inherit,
                initargs=(self.index,),
            )
        return self._pool

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ShardedQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
